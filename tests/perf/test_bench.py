"""The benchmark harness itself: history file handling and the
regression gate.  (The benchmarks' *timings* are exercised by
``make bench`` / ``benchmarks/perf/``, not asserted here.)"""

import json
from pathlib import Path

import pytest

from repro.perf.bench import (BenchResult, append_entry, baseline_entry,
                              bench_event_loop, bench_timer_churn,
                              check_regression, load_history)


def _result(label: str, score: float) -> BenchResult:
    result = BenchResult(label=label, quick=True,
                         calibration_ops_per_sec=1e6)
    result.results["event_loop"] = {"seconds": 0.1, "events": 1000,
                                    "events_per_sec": score * 1e6,
                                    "score": score}
    return result


class TestRegressionGate:
    def test_equal_scores_pass(self):
        ok, message = check_regression(_result("cur", 0.04),
                                       _result("base", 0.04).to_json())
        assert ok and "+0.0%" in message

    def test_improvement_passes(self):
        ok, _ = check_regression(_result("cur", 0.08),
                                 _result("base", 0.04).to_json())
        assert ok

    def test_small_regression_within_budget_passes(self):
        ok, _ = check_regression(_result("cur", 0.033),
                                 _result("base", 0.04).to_json(),
                                 max_regression=0.25)
        assert ok

    def test_large_regression_fails(self):
        ok, message = check_regression(_result("cur", 0.02),
                                       _result("base", 0.04).to_json(),
                                       max_regression=0.25)
        assert not ok and "exceeds" in message

    def test_missing_scores_skip_rather_than_fail(self):
        bare = BenchResult(label="cur", quick=True,
                           calibration_ops_per_sec=1e6)
        ok, message = check_regression(bare, {"results": {}})
        assert ok and "skipped" in message


class TestHistoryFile:
    def test_load_missing_file_yields_empty_history(self, tmp_path):
        history = load_history(str(tmp_path / "nope.json"))
        assert history["entries"] == []

    def test_append_then_baseline_roundtrip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        append_entry(path, _result("first", 0.03))
        append_entry(path, _result("second", 0.04))
        history = load_history(path)
        assert [e["label"] for e in history["entries"]] == ["first", "second"]
        assert baseline_entry(history)["label"] == "second"
        assert baseline_entry(history, "first")["label"] == "first"
        assert baseline_entry(history, "absent") is None

    def test_append_replaces_same_label(self, tmp_path):
        path = str(tmp_path / "bench.json")
        append_entry(path, _result("ci-smoke", 0.03))
        append_entry(path, _result("ci-smoke", 0.05))
        entries = load_history(path)["entries"]
        assert len(entries) == 1
        assert entries[0]["results"]["event_loop"]["score"] == 0.05

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "entries": []}))
        with pytest.raises(ValueError):
            load_history(str(path))


class TestCommittedBaseline:
    def test_bench_core_json_has_the_gate_entries(self):
        """The committed history must keep the before/after pair the
        CI gate and docs/PERF.md refer to."""
        path = Path(__file__).resolve().parents[2] / "BENCH_core.json"
        history = load_history(str(path))
        labels = [e["label"] for e in history["entries"]]
        assert "pre-optimization" in labels
        assert "post-optimization" in labels
        post = baseline_entry(history, "post-optimization")
        pre = baseline_entry(history, "pre-optimization")
        # The locked-in win: >= 2x on the normalized event-loop score.
        assert (post["results"]["event_loop"]["score"]
                >= 2 * pre["results"]["event_loop"]["score"])


class TestMicroBenchmarks:
    def test_event_loop_executes_requested_events(self):
        run = bench_event_loop(events=2_000, tickers=8)
        assert run["events"] == 2_000
        assert run["events_per_sec"] > 0

    def test_timer_churn_fires_only_surviving_timers(self):
        run = bench_timer_churn(timers=4_000, cancel_mod=4)
        assert run["events"] == 1_000  # 1 in 4 survives cancellation
