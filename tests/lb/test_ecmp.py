"""Tests for ECMP load balancing."""

from collections import Counter

from hypothesis import given, strategies as st

from repro.lb import EcmpBalancer, flow_hash
from repro.sim.packet import FlowKey, Packet


def _pkt(sport, dport=80, src="a", dst="b"):
    return Packet(flow=FlowKey(src, dst, sport, dport))


class TestFlowHash:
    def test_deterministic(self):
        flow = FlowKey("a", "b", 1, 2)
        assert flow_hash(flow) == flow_hash(FlowKey("a", "b", 1, 2))

    def test_salt_changes_hash(self):
        flow = FlowKey("a", "b", 1, 2)
        hashes = {flow_hash(flow, salt) for salt in range(16)}
        assert len(hashes) > 8

    def test_distinct_flows_usually_differ(self):
        hashes = {flow_hash(FlowKey("a", "b", sport, 80))
                  for sport in range(200)}
        assert len(hashes) == 200


class TestEcmpBalancer:
    def test_same_flow_always_same_member(self):
        lb = EcmpBalancer()
        picks = {lb.select([3, 4], _pkt(1234), now_ns=t)
                 for t in range(0, 10**6, 1000)}
        assert len(picks) == 1

    def test_flows_spread_over_members(self):
        lb = EcmpBalancer()
        counts = Counter(lb.select([0, 1, 2, 3], _pkt(sport), 0)
                         for sport in range(400))
        assert set(counts) == {0, 1, 2, 3}
        assert all(count > 50 for count in counts.values())

    def test_single_candidate(self):
        assert EcmpBalancer().select([7], _pkt(1), 0) == 7

    def test_decision_counter(self):
        lb = EcmpBalancer()
        for sport in range(5):
            lb.select([0, 1], _pkt(sport), 0)
        assert lb.decisions == 5

    def test_different_salts_decorrelate_switches(self):
        lb_a, lb_b = EcmpBalancer(salt=1), EcmpBalancer(salt=2)
        picks_a = [lb_a.select([0, 1], _pkt(s), 0) for s in range(200)]
        picks_b = [lb_b.select([0, 1], _pkt(s), 0) for s in range(200)]
        agreement = sum(a == b for a, b in zip(picks_a, picks_b)) / 200
        assert 0.3 < agreement < 0.7  # independent coin flips

    @given(st.integers(min_value=0, max_value=65535),
           st.integers(min_value=2, max_value=16))
    def test_property_selection_in_candidates(self, sport, n):
        candidates = list(range(100, 100 + n))
        assert EcmpBalancer().select(candidates, _pkt(sport), 0) in candidates
