"""Tests for flowlet switching."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.lb import FlowletBalancer, FlowletConfig
from repro.sim.engine import US
from repro.sim.packet import FlowKey, Packet


def _pkt(sport=1000):
    return Packet(flow=FlowKey("a", "b", sport, 80))


class TestFlowletBalancer:
    def test_packets_within_timeout_stick_to_member(self):
        lb = FlowletBalancer(FlowletConfig(timeout_ns=50 * US))
        first = lb.select([0, 1], _pkt(), now_ns=0)
        for t in range(1, 50):
            assert lb.select([0, 1], _pkt(), now_ns=t * US) == first
        assert lb.flowlets_started == 1

    def test_gap_beyond_timeout_starts_new_flowlet(self):
        lb = FlowletBalancer(FlowletConfig(timeout_ns=50 * US))
        lb.select([0, 1], _pkt(), now_ns=0)
        lb.select([0, 1], _pkt(), now_ns=100 * US)
        assert lb.flowlets_started == 2

    def test_new_flowlets_rotate_members(self):
        lb = FlowletBalancer(FlowletConfig(timeout_ns=10 * US))
        picks = [lb.select([0, 1, 2], _pkt(), now_ns=i * 100 * US)
                 for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_rotation_balances_better_than_random(self):
        lb = FlowletBalancer(FlowletConfig(timeout_ns=1))
        counts = Counter(lb.select([0, 1], _pkt(sport), now_ns=sport * US)
                         for sport in range(1000, 1100))
        assert abs(counts[0] - counts[1]) <= 1

    def test_stale_member_not_in_candidates_is_replaced(self):
        lb = FlowletBalancer(FlowletConfig(timeout_ns=10**9))
        first = lb.select([5], _pkt(), now_ns=0)
        assert first == 5
        # Same flow, different candidate set (e.g. route change).
        second = lb.select([7, 8], _pkt(), now_ns=1)
        assert second in (7, 8)

    def test_distinct_flows_use_distinct_entries(self):
        lb = FlowletBalancer(FlowletConfig(timeout_ns=10**9, table_size=4096))
        a = lb.select([0, 1], _pkt(1000), now_ns=0)
        b = lb.select([0, 1], _pkt(1001), now_ns=0)
        assert lb.flowlets_started == 2
        assert lb.select([0, 1], _pkt(1000), now_ns=1) == a
        assert lb.select([0, 1], _pkt(1001), now_ns=1) == b

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FlowletBalancer(FlowletConfig(table_size=0))
        with pytest.raises(ValueError):
            FlowletBalancer(FlowletConfig(timeout_ns=-1))

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**16),
                              st.integers(min_value=0, max_value=10**9)),
                    min_size=1, max_size=100))
    def test_property_selection_always_valid(self, events):
        lb = FlowletBalancer(FlowletConfig(table_size=64))
        candidates = [3, 5, 9]
        now = 0
        for sport, gap in sorted(events, key=lambda e: e[1]):
            now += gap
            assert lb.select(candidates, _pkt(sport), now) in candidates
