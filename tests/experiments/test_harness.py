"""Tests for the experiment harness utilities."""

import pytest

from repro.analysis.stats import Cdf
from repro.experiments.harness import ascii_cdf, header


class TestAsciiCdf:
    def test_renders_all_curves_and_legend(self):
        plot = ascii_cdf({"fast": Cdf([1, 2, 3]),
                          "slow": Cdf([100, 200, 300])})
        assert "* fast" in plot
        assert "o slow" in plot
        assert "1.0 |" in plot and "0.0 |" in plot

    def test_monotone_columns_per_curve(self):
        plot = ascii_cdf({"c": Cdf(range(1, 100))}, width=40, height=8,
                         log_x=False)
        rows = [line[5:] for line in plot.splitlines() if "|" in line]
        cols = [row.index("*") for row in rows if "*" in row]
        # CDF read top (1.0) to bottom (0.0): columns must not increase.
        assert cols == sorted(cols, reverse=True)

    def test_log_scale_spreads_decades(self):
        plot_log = ascii_cdf({"c": Cdf([1, 10, 100, 1000])}, log_x=True)
        plot_lin = ascii_cdf({"c": Cdf([1, 10, 100, 1000])}, log_x=False)
        assert plot_log != plot_lin

    def test_x_scale_applied_to_labels(self):
        plot = ascii_cdf({"c": Cdf([1000.0, 2000.0])}, x_scale=1e3,
                         x_label="us")
        assert "us" in plot
        assert "2 us" in plot or "2 " in plot

    def test_single_sample_curve_renders(self):
        # Regression: a zero-spread Cdf used to collapse the x-range to
        # a point, putting every mark in one column (or dividing by a
        # denormal range under log scale).
        plot = ascii_cdf({"c": Cdf([5.0])})
        assert "* c" in plot  # legend renders
        assert "*" in plot.splitlines()[0] or \
            any("*" in line for line in plot.splitlines())

    def test_zero_spread_curve_renders(self):
        for log_x in (False, True):
            plot = ascii_cdf({"c": Cdf([7, 7, 7, 7])}, log_x=log_x)
            assert plot  # renders without ZeroDivisionError

    def test_zero_value_single_sample_linear(self):
        # lo == hi == 0: the widened range must still bracket the value.
        plot = ascii_cdf({"c": Cdf([0.0])}, log_x=False)
        assert plot

    def test_degenerate_curve_alongside_normal_one(self):
        plot = ascii_cdf({"flat": Cdf([3, 3, 3]),
                          "spread": Cdf([1, 2, 3, 4, 5])})
        assert "flat" in plot and "spread" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})


class TestHeader:
    def test_header_contains_title_and_bar(self):
        text = header("My Title", "subtitle here")
        lines = text.splitlines()
        assert lines[1] == "My Title"
        assert lines[2] == "subtitle here"
        assert set(lines[0]) == {"="}
