"""Tests for the sensitivity sweeps."""


from repro.experiments.sweeps import (PtpSweepConfig, RateSweepConfig,
                                      ServiceCostSweepConfig, run_ptp_sweep,
                                      run_rate_sweep, run_service_cost_sweep)


class TestServiceCostSweep:
    def test_knee_tracks_analytical_model(self):
        result = run_service_cost_sweep(ServiceCostSweepConfig.quick())
        for cost, measured in result.max_rate_hz.items():
            model = result.model_rate_hz(cost)
            assert 0.7 * model <= measured <= 1.4 * model, cost
        assert "knee" in result.report()

    def test_rate_falls_with_cost(self):
        result = run_service_cost_sweep(ServiceCostSweepConfig.quick())
        costs = sorted(result.max_rate_hz)
        rates = [result.max_rate_hz[c] for c in costs]
        assert rates == sorted(rates, reverse=True)


class TestPtpSweep:
    def test_sync_degrades_with_clock_quality(self):
        result = run_ptp_sweep(PtpSweepConfig.quick())
        sigmas = sorted(result.sync_median_ns)
        medians = [result.sync_median_ns[s] for s in sigmas]
        assert medians[0] < medians[-1]
        # NTP-class clocks forfeit the microsecond guarantee entirely.
        assert medians[-1] > 20 * medians[0]
        assert "clock quality" in result.report()


class TestRateSweep:
    def test_cs_sync_tightens_with_rate(self):
        result = run_rate_sweep(RateSweepConfig.quick())
        rates = sorted(result.sync_median_ns)
        assert result.sync_median_ns[rates[-1]] < \
            result.sync_median_ns[rates[0]]
        assert "traffic rate" in result.report()
