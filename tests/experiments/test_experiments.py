"""Tests of the experiment harness (reduced sizes; the benchmarks run
the full configurations)."""

import pytest

from repro.experiments import (fig9, fig10, fig11, fig12, fig13, motivation,
                               table1)
from repro.experiments.ablations import (IdealVsSpeedlightConfig,
                                         InitiationConfig,
                                         TransportConfig,
                                         run_ideal_vs_speedlight,
                                         run_initiation_strategies,
                                         run_notification_transports)
from repro.experiments.harness import TextTable


class TestHarness:
    def test_text_table_alignment(self):
        table = TextTable(["a", "bbbb"])
        table.add("x", 1.5)
        table.add("longer", 2)
        out = table.render()
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "1.50" in out and "longer" in out

    def test_text_table_cell_count_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add("only-one")


class TestTable1:
    def test_matches_paper_exactly(self):
        result = table1.run()
        for variant, expected in table1.PAPER_TABLE1.items():
            report = result.reports[variant]
            for attr, value in expected.items():
                assert getattr(report, attr) == pytest.approx(value)
        assert result.report_14port.sram_kb == pytest.approx(638, abs=1)
        assert "Table 1" in result.report()


class TestFig9:
    def test_quickened_shape(self):
        config = fig9.Fig9Config(rounds=12, rate_pps=60_000.0)
        result = fig9.run(config)
        # Snapshots synchronize orders of magnitude tighter than polling.
        assert result.sync_no_cs.median < 50_000          # < 50 us
        assert result.sync_cs.median < 1_000_000          # < 1 ms
        assert result.polling.median > 1_000_000          # > 1 ms
        assert result.sync_no_cs.median <= result.sync_cs.median
        assert "Figure 9" in result.report()


class TestFig10:
    def test_rate_scales_inversely_with_ports(self):
        config = fig10.Fig10Config(port_counts=[4, 64], burst=15,
                                   search_iterations=5)
        result = fig10.run(config)
        assert result.max_rate_hz[4] > 8 * result.max_rate_hz[64]
        assert result.max_rate_hz[64] > 40  # paper: >70 at full search depth
        assert "Figure 10" in result.report()


class TestFig11:
    def test_sync_grows_slowly_and_stays_bounded(self):
        config = fig11.Fig11Config(router_counts=[10, 1000, 10000], trials=8)
        result = fig11.run(config)
        sync = result.avg_sync_ns
        assert sync[10] < sync[1000] < sync[10000]
        assert sync[10000] < 100_000  # the paper's <100 us bound
        assert "Figure 11" in result.report()

    def test_deterministic_given_seed(self):
        config = fig11.Fig11Config(router_counts=[100], trials=5)
        assert fig11.run(config).avg_sync_ns == fig11.run(config).avg_sync_ns


class TestFig12:
    def test_memcache_shapes(self):
        config = fig12.Fig12Config(rounds=12, workloads=("memcache",))
        result = fig12.run(config)
        snap_ecmp = result.median("memcache", "ecmp", "snapshots")
        snap_flowlet = result.median("memcache", "flowlet", "snapshots")
        poll_flowlet = result.median("memcache", "flowlet", "polling")
        assert snap_flowlet < snap_ecmp           # flowlets balance better
        assert poll_flowlet > snap_flowlet        # polling overestimates
        assert "memcache" in result.report()


class TestFig13:
    def test_ground_truths(self):
        result = fig13.run(fig13.Fig13Config(rounds=40))
        assert result.significant_fraction("snapshots") > \
            result.significant_fraction("polling")
        # Master port: at most noise-level correlations under snapshots.
        assert result.master_significant("snapshots") <= 1
        assert result.ecmp_pair_status("snapshots").count("positive") >= 1
        assert "Figure 13" in result.report()


class TestMotivation:
    def test_snapshots_separate_regimes_polling_does_not(self):
        result = motivation.run(motivation.MotivationConfig.quick())
        assert result.separation("snapshots") > 5
        assert result.separation("polling") < 3
        assert "Figure 1" in result.report()


class TestScaling:
    def test_protocol_scales_with_complete_coverage(self):
        from repro.experiments import scaling
        result = scaling.run(scaling.ScalingConfig.quick())
        for point in result.points.values():
            assert point.completed == point.expected
            assert point.sync.max < 100_000
        assert "fat-trees" in result.report()


class TestScalingWithProfile:
    def test_faulted_run_reports_inconsistent_fraction(self):
        from repro.experiments import scaling
        from repro.faults import IndependentFaults
        profile = IndependentFaults(
            intensity=0.5,
            kinds=("link_down", "link_loss", "cp_crash")).to_jsonable()
        config = scaling.ScalingConfig(arities=[4], snapshots=6,
                                       profile=profile)
        result = scaling.run(config)
        point = result.points[4]
        assert point.inconsistent_fraction is not None
        assert 0.0 <= point.inconsistent_fraction <= 1.0
        assert point.faults_applied > 0
        report = result.report()
        assert "Inconsistent" in report and "Faults" in report

    def test_clean_run_keeps_the_protocol_only_report(self):
        from repro.experiments import scaling
        result = scaling.run(scaling.ScalingConfig(arities=[4], snapshots=6))
        assert result.points[4].inconsistent_fraction is None
        assert "Inconsistent" not in result.report()


class TestFaultsExperiment:
    def test_correlated_scenario_degrades_epochs_with_attribution(self):
        from repro.experiments import faults
        result = faults.run(faults.FaultsConfig.correlated())
        assert set(result.rows) == {"profile-compose"}
        row = result.rows["profile-compose"]
        assert result.all_audits_ok
        assert row["epochs_faulted"] > 0
        assert row["epochs_degraded"] > 0
        report = result.report()
        assert "per-epoch attribution" in report
        assert "link_down" in report or "cp_crash" in report


class TestPartialDeploymentInvariance:
    def test_spine_faults_leave_flagged_epoch_counts_unchanged(self):
        # §10: Speedlight on the leaves only, chaos at the spines.  The
        # neighbor-exclusion rule keeps non-participants out of every
        # gating set, so spine failures must not flag a single epoch.
        from repro.experiments import faults
        inv = faults.partial_invariance()
        assert inv.ok, inv.report()
        faulted = inv.result.rows["iid-1"]
        assert faulted["faults_applied"] > 0  # the chaos really ran
        assert faulted["flagged"] == inv.baseline_flagged
        assert "unchanged" in inv.report()

    def test_partial_deployment_rides_in_the_fingerprint(self):
        from repro.experiments import faults
        partial = faults.FaultsConfig.partial_spine()
        full = faults.FaultsConfig(intensities=partial.intensities,
                                   rounds=partial.rounds,
                                   kinds=partial.kinds)
        partial_specs = faults.specs(partial)
        assert all(s.params["deploy"] == ["leaf0", "leaf1"]
                   for s in partial_specs)
        full_fps = {s.fingerprint() for s in faults.specs(full)}
        assert not full_fps & {s.fingerprint() for s in partial_specs}

    def test_baseline_intensity_is_required(self):
        from repro.experiments import faults
        config = faults.FaultsConfig.partial_spine()
        config.intensities = [0.5]
        with pytest.raises(ValueError, match="baseline"):
            faults.partial_invariance(config)


class TestRecoveryExperiment:
    def test_quick_frontier_spans_policies_and_profiles(self):
        from repro.experiments import recovery
        config = recovery.RecoveryConfig.quick()
        result = recovery.run(config)
        policies = {p for (p, _prof) in result.rows}
        profiles = {prof for (_p, prof) in result.rows}
        assert len(policies) >= 3 and len(profiles) >= 3
        assert len(result.rows) == len(policies) * len(profiles)
        for profile in profiles:
            frontier = result.frontier(profile)
            assert frontier, f"every profile has a Pareto frontier: {profile}"
            assert frontier <= policies
        for row in result.rows.values():
            assert 0.0 <= row["usable_rate"] <= row["completion_rate"] <= 1.0
            assert row["overhead_per_epoch"] >= 0.0
        report = result.report()
        assert "Frontier" in report and "*" in report

    def test_clean_profile_is_cheap_and_complete(self):
        from repro.experiments import recovery
        config = recovery.RecoveryConfig.quick()
        result = recovery.run(config)
        for (policy, profile), row in result.rows.items():
            if profile == "clean":
                assert row["completion_rate"] == 1.0
                assert row["faults_applied"] == 0


class TestAblations:
    def test_ideal_absorbs_skips_speedlight_marks(self):
        result = run_ideal_vs_speedlight(IdealVsSpeedlightConfig.quick())
        speed = result.outcomes["speedlight"]
        ideal = result.outcomes["ideal"]
        assert ideal["complete"] > 0
        assert ideal["consistent"] == ideal["complete"]
        assert speed["consistent"] < speed["complete"]
        assert "Ablation" in result.report()

    def test_multi_initiator_beats_single(self):
        result = run_initiation_strategies(InitiationConfig(snapshots=8))
        assert result.sync_multi.median * 50 < result.sync_single.median
        assert "initiation" in result.report()

    def test_transport_tradeoff(self):
        result = run_notification_transports(TransportConfig.quick())
        assert result.max_rate_hz["digest"] >= result.max_rate_hz["socket"]
        assert result.completion_ns["digest"] > result.completion_ns["socket"]
        assert "transport" in result.report()
