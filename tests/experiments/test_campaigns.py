"""Tests for the shared measurement-campaign machinery."""

import pytest

from repro.experiments.campaigns import (CampaignSpec, all_egress_targets,
                                         build_network,
                                         make_balancer_factory,
                                         make_workload, polling_campaign,
                                         rounds_to_balance_input,
                                         snapshot_campaign,
                                         uplink_egress_targets)
from repro.lb import EcmpBalancer, FlowletBalancer
from repro.sim.engine import MS
from repro.sim.switch import Direction
from repro.workloads import (GraphXPageRankWorkload, HadoopTerasortWorkload,
                             MemcacheWorkload)


class TestFactories:
    def test_balancer_factory_kinds(self):
        assert isinstance(make_balancer_factory("ecmp")(0), EcmpBalancer)
        assert isinstance(make_balancer_factory("flowlet")(1),
                          FlowletBalancer)
        with pytest.raises(ValueError):
            make_balancer_factory("random-spray")

    def test_flowlet_timeout_propagated(self):
        lb = make_balancer_factory("flowlet", flowlet_timeout_ns=123)(0)
        assert lb.config.timeout_ns == 123

    def test_workload_factory(self):
        spec = CampaignSpec(workload="hadoop")
        net = build_network(spec)
        assert isinstance(make_workload("hadoop", net, seed=1,
                                        stop_ns=1 * MS),
                          HadoopTerasortWorkload)
        assert isinstance(make_workload("graphx", net, seed=1,
                                        stop_ns=1 * MS),
                          GraphXPageRankWorkload)
        assert isinstance(make_workload("memcache", net, seed=1,
                                        stop_ns=1 * MS), MemcacheWorkload)
        with pytest.raises(ValueError):
            make_workload("bitcoin", net, seed=1, stop_ns=1 * MS)


class TestTargets:
    def test_uplink_targets_are_leaf_uplinks_only(self):
        net = build_network(CampaignSpec(workload="memcache"))
        targets = uplink_egress_targets(net)
        assert len(targets) == 4  # 2 leaves x 2 spines
        assert all(sw.startswith("leaf") for sw, _p, _d in targets)
        assert all(d is Direction.EGRESS for _sw, _p, d in targets)

    def test_all_egress_targets_cover_leaf_ports(self):
        net = build_network(CampaignSpec(workload="memcache"))
        targets = all_egress_targets(net)
        assert len(targets) == 10  # 2 leaves x 5 connected ports


class TestRoundShaping:
    def test_rounds_to_balance_input_groups_by_switch(self):
        rounds = [{("leaf0", 3, Direction.EGRESS): 10,
                   ("leaf0", 4, Direction.EGRESS): 20,
                   ("leaf1", 3, Direction.EGRESS): 5}]
        shaped = rounds_to_balance_input(rounds)
        assert shaped == [{"leaf0": {3: 10.0, 4: 20.0}, "leaf1": {3: 5.0}}]


class TestCampaignsEndToEnd:
    def test_snapshot_and_polling_produce_matching_round_shapes(self):
        spec = CampaignSpec(workload="memcache", rounds=5,
                            interval_ns=4 * MS, seed=3)
        snap_rounds = snapshot_campaign(spec, uplink_egress_targets)
        poll_rounds = polling_campaign(spec, uplink_egress_targets)
        assert len(snap_rounds) == 5
        assert len(poll_rounds) == 5
        assert set(snap_rounds[0]) == set(poll_rounds[0])
