"""Tests for trace-driven replay."""

import pytest

from repro.sim.engine import MS, S, US
from repro.sim.network import Network, NetworkConfig
from repro.topology import single_switch
from repro.workloads import (PoissonWorkload, ReplayWorkload, TraceEntry,
                             load_trace, record_trace, save_trace)
from repro.workloads.base import WorkloadConfig
from repro.workloads.synthetic import PoissonConfig


def _net(seed=1):
    return Network(single_switch(num_hosts=3), NetworkConfig(seed=seed))


def _trace():
    return [
        TraceEntry(10 * US, "server0", "server1", size_bytes=500),
        TraceEntry(20 * US, "server1", "server2", size_bytes=700),
        TraceEntry(30 * US, "server0", "server2", size_bytes=900),
    ]


class TestReplay:
    def test_entries_emitted_at_trace_times(self):
        net = _net()
        wl = ReplayWorkload(net, _trace(), WorkloadConfig(stop_ns=1 * S))
        wl.start()
        net.run(until=10 * MS)
        assert wl.packets_emitted == 3
        assert wl.skipped == 0
        assert net.host("server2").packets_received == 2
        assert net.host("server2").bytes_received == 700 + 900

    def test_unsorted_input_is_sorted(self):
        net = _net()
        entries = list(reversed(_trace()))
        wl = ReplayWorkload(net, entries, WorkloadConfig(stop_ns=1 * S))
        assert [e.time_ns for e in wl.entries] == [10 * US, 20 * US, 30 * US]

    def test_entries_past_stop_skipped(self):
        net = _net()
        entries = [*_trace(), TraceEntry(2 * S, "server0", "server1")]
        wl = ReplayWorkload(net, entries, WorkloadConfig(stop_ns=1 * S))
        wl.start()
        net.run(until=3 * S)
        assert wl.packets_emitted == 3
        assert wl.skipped == 1

    def test_unknown_host_rejected(self):
        net = _net()
        with pytest.raises(ValueError, match="unknown hosts"):
            ReplayWorkload(net, [TraceEntry(0, "ghost", "server0")])

    def test_replay_is_deterministic(self):
        arrivals = []
        for _run in range(2):
            net = _net()
            net.host("server2").on_receive = (
                lambda p, a=arrivals, n=net: a.append((n.sim.now, p.uid)))
            wl = ReplayWorkload(net, _trace(), WorkloadConfig(stop_ns=1 * S))
            wl.start()
            net.run(until=10 * MS)
        times = [t for t, _uid in arrivals]
        assert times[:2] == times[2:]


class TestCsvRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "trace.csv"
        assert save_trace(_trace(), path) == 3
        loaded = load_trace(path)
        assert loaded == _trace()

    def test_load_sorts_unsorted_files(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace(list(reversed(_trace())), path)
        loaded = load_trace(path)
        assert [e.time_ns for e in loaded] == [10 * US, 20 * US, 30 * US]

    def test_bad_record_reports_line(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("10,server0,server1,1500,1,2,0\nnot,a,record\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)


class TestRecordTrace:
    def test_freeze_stochastic_workload_into_trace(self):
        net = _net()
        workload = PoissonWorkload(net, PoissonConfig(
            rate_pps=5_000, stop_ns=20 * MS,
            pairs=[("server0", "server1")]))
        trace = record_trace(workload, net, until_ns=25 * MS)
        assert len(trace) == workload.packets_emitted
        assert all(e.src == "server0" for e in trace)

        # Replaying the frozen trace reproduces the same packet count.
        net2 = _net(seed=2)
        replay = ReplayWorkload(net2, trace, WorkloadConfig(stop_ns=1 * S))
        replay.start()
        net2.run(until=1 * S)
        assert replay.packets_emitted == len(trace)
        assert net2.host("server1").packets_received == len(trace)
