"""Tests for the traffic generators."""

import pytest

from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine
from repro.workloads import (GraphXPageRankWorkload, HadoopTerasortWorkload,
                             MemcacheWorkload, OnOffWorkload, PoissonWorkload)
from repro.workloads.graphx import GraphXConfig
from repro.workloads.hadoop import HadoopConfig
from repro.workloads.memcache import MemcacheConfig
from repro.workloads.synthetic import OnOffConfig, PoissonConfig


def _net():
    return Network(leaf_spine(), NetworkConfig(seed=11))


class TestPoisson:
    def test_generates_roughly_configured_rate(self):
        net = _net()
        wl = PoissonWorkload(net, PoissonConfig(
            rate_pps=10_000, stop_ns=100 * MS,
            pairs=[("server0", "server3")]))
        wl.start()
        net.run(until=120 * MS)
        # ~1000 packets expected over 100 ms at 10 kpps.
        assert 700 <= wl.packets_emitted <= 1300

    def test_stops_at_stop_ns(self):
        net = _net()
        wl = PoissonWorkload(net, PoissonConfig(
            rate_pps=50_000, stop_ns=10 * MS,
            pairs=[("server0", "server1")]))
        wl.start()
        net.run(until=50 * MS)
        emitted = wl.packets_emitted
        net.run(until=100 * MS)
        assert wl.packets_emitted == emitted

    def test_all_to_all_by_default(self):
        net = _net()
        wl = PoissonWorkload(net, PoissonConfig(rate_pps=2_000,
                                                stop_ns=50 * MS))
        wl.start()
        net.run(until=80 * MS)
        # Every host should have received something.
        assert all(h.packets_received > 0 for h in net.hosts.values())

    def test_sport_churn_creates_many_flows(self):
        net = _net()
        wl = PoissonWorkload(net, PoissonConfig(
            rate_pps=20_000, stop_ns=20 * MS, sport_churn=True,
            pairs=[("server0", "server3")]))
        wl.start()
        net.run(until=40 * MS)
        assert len(net.host("server3").received) > 50

    def test_start_is_idempotent(self):
        net = _net()
        wl = PoissonWorkload(net, PoissonConfig(rate_pps=1000, stop_ns=5 * MS,
                                                pairs=[("server0", "server1")]))
        wl.start()
        wl.start()
        net.run(until=10 * MS)
        # One generator per pair, not two: rate stays ~5 packets.
        assert wl.packets_emitted < 20


class TestOnOff:
    def test_bursty_structure(self):
        net = _net()
        wl = OnOffWorkload(net, OnOffConfig(
            stop_ns=100 * MS, pairs=[("server0", "server3")],
            mean_on_ns=1 * MS, mean_off_ns=4 * MS, on_gap_ns=20 * US))
        wl.start()
        net.run(until=150 * MS)
        assert wl.packets_emitted > 100
        # Receiver sees distinct bursts: long gaps exist between packets.
        record = net.host("server3").received
        assert record  # at least one flow arrived


class TestHadoop:
    def test_transfers_avoid_self_loops(self):
        net = _net()
        wl = HadoopTerasortWorkload(net, HadoopConfig(stop_ns=50 * MS))
        wl.start()
        assert wl.transfers == []  # assigned lazily at start time
        net.run(until=10 * MS)
        assert wl.transfers
        assert all(src != dst for src, dst, _sport in wl.transfers)

    def test_mapper_reducer_counts(self):
        net = _net()
        wl = HadoopTerasortWorkload(net, HadoopConfig(
            stop_ns=50 * MS, num_mappers=10, num_reducers=8))
        wl.start()
        net.run(until=10 * MS)
        # 10x8 pairs minus same-host collisions.
        assert 60 <= len(wl.transfers) <= 80

    def test_generates_shuffle_traffic(self):
        net = _net()
        wl = HadoopTerasortWorkload(net, HadoopConfig(stop_ns=80 * MS))
        wl.start()
        net.run(until=120 * MS)
        assert wl.packets_emitted > 200


class TestGraphX:
    def test_master_moves_no_bulk_data(self):
        net = _net()
        wl = GraphXPageRankWorkload(net, GraphXConfig(stop_ns=60 * MS))
        wl.start()
        net.run(until=100 * MS)
        bulk_from_master = [
            flow for host in net.hosts.values()
            for flow in host.received
            if flow.src == "server0" and flow.dport == 7337]
        assert bulk_from_master == []
        # But the master does send small control messages.
        control = [flow for host in net.hosts.values()
                   for flow in host.received
                   if flow.src == "server0" and flow.dport == 7077]
        assert control

    def test_iterations_advance(self):
        net = _net()
        wl = GraphXPageRankWorkload(net, GraphXConfig(
            stop_ns=55 * MS, iteration_ns=10 * MS))
        wl.start()
        net.run(until=100 * MS)
        assert 4 <= wl.iterations_run <= 7

    def test_unknown_master_rejected(self):
        net = _net()
        wl = GraphXPageRankWorkload(net, GraphXConfig(master="ghost",
                                                      stop_ns=10 * MS))
        with pytest.raises(ValueError):
            wl.start()
            net.run(until=1 * MS)

    def test_workers_exchange_all_to_all(self):
        net = _net()
        wl = GraphXPageRankWorkload(net, GraphXConfig(stop_ns=30 * MS,
                                                      chatter_pps=0))
        wl.start()
        net.run(until=60 * MS)
        workers = set(wl.workers)
        for dst in workers:
            senders = {flow.src for flow in net.host(dst).received.keys()
                       if flow.dport == 7337}
            assert senders == workers - {dst}


class TestMemcache:
    def test_request_response_pattern(self):
        net = _net()
        wl = MemcacheWorkload(net, MemcacheConfig(stop_ns=20 * MS))
        wl.start()
        net.run(until=40 * MS)
        assert wl.requests_sent > 50
        client = net.host("server0")
        # Responses from every server reached the client.
        responders = {flow.src for flow in client.received}
        assert responders == set(wl.servers)

    def test_servers_receive_requests(self):
        net = _net()
        wl = MemcacheWorkload(net, MemcacheConfig(stop_ns=20 * MS))
        wl.start()
        net.run(until=40 * MS)
        for server in wl.servers:
            requests = [f for f in net.host(server).received
                        if f.dport == 11211]
            assert requests

    def test_needs_a_server(self):
        net = _net()
        wl = MemcacheWorkload(net, MemcacheConfig(
            stop_ns=10 * MS, hosts=["server0"], clients=["server0"]))
        with pytest.raises(ValueError):
            wl.start()
            net.run(until=1 * MS)

    def test_custom_client_set(self):
        net = _net()
        wl = MemcacheWorkload(net, MemcacheConfig(
            stop_ns=20 * MS, clients=["server0", "server1"]))
        wl.start()
        net.run(until=40 * MS)
        assert set(wl.clients) == {"server0", "server1"}
        assert "server0" not in wl.servers
