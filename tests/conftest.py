"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine, single_switch


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def leaf_spine_net() -> Network:
    """The paper's testbed: 2 leaves x 2 spines x 6 servers."""
    return Network(leaf_spine(), NetworkConfig(seed=1))


@pytest.fixture
def small_net() -> Network:
    """A compact leaf-spine (one host per leaf) for fast protocol tests."""
    return Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=1))


@pytest.fixture
def single_switch_net() -> Network:
    return Network(single_switch(num_hosts=4), NetworkConfig(seed=1))


@pytest.fixture
def traced_net() -> Network:
    """Leaf-spine with trace logging for consistency checking."""
    return Network(leaf_spine(hosts_per_leaf=1),
                   NetworkConfig(seed=1, enable_tracing=True))
