"""Golden event-trace determinism: the exact event stream is pinned.

The hot-path optimization of the discrete-event core (docs/PERF.md) is
required to be *event-for-event* identical to the reference
implementation: same events, same (time, seq) order, same callbacks.
This test hashes the full ``(time, seq, fn_qualname)`` stream of a
seeded two-switch scenario — 38k+ events through hosts, switches,
links, clocks, the snapshot protocol and the management plane — and
compares it against the recorded reference digest.

The digest was captured on the pre-optimization engine (plus the
``Clock.true_time`` floor-asymmetry fix, which legitimately shifts
initiation times by 1 ns for some negative-drift clocks).  If this
test fails, a change reordered or perturbed the simulation itself —
that is a correctness regression, not a formality.  Re-record only for
a change that *intentionally* alters simulation behaviour, and say so
in the commit message.
"""

import hashlib

from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.faults import FaultInjector, FaultSchedule
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import linear
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

GOLDEN_SHA256 = ("1a3cc758348164a251befa5ae043864d"
                 "06cb64d9ff2940ce2dced81cc4e3eb13")
GOLDEN_EVENTS = 38735
#: Re-recorded when liveness probes became ``PacketType.PROBE`` and
#: stopped updating unit counters (they are protocol-internal, not
#: measured traffic; counting them broke per-link count conservation).
#: The event stream — hash and count above — was bit-identical across
#: that change; only the snapshot totals shed the probe contributions.
GOLDEN_TOTALS = [2006, 6008, 10000]


def _run_golden_scenario(arm_empty_fault_schedule=False, fault_schedule=None):
    """The pinned two-switch scenario; returns (network, deployment,
    hexdigest)."""
    network = Network(linear(num_switches=2, hosts_per_switch=2),
                      NetworkConfig(seed=7))
    PoissonWorkload(network, PoissonConfig(rate_pps=10_000,
                                           stop_ns=40 * MS,
                                           sport_churn=True)).start()
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", channel_state=True))
    if arm_empty_fault_schedule:
        fault_schedule = FaultSchedule()
    if fault_schedule is not None:
        injector = FaultInjector(network, fault_schedule,
                                 deployment=deployment)
        assert injector.arm() == 0
    deployment.schedule_campaign(count=3, interval_ns=10 * MS)

    digest = hashlib.sha256()

    def trace(time: int, seq: int, fn) -> None:
        name = getattr(fn, "__qualname__", None) or repr(fn)
        digest.update(f"{time}:{seq}:{name}\n".encode())

    network.sim.trace = trace
    network.run(until=60 * MS)
    return network, deployment, digest.hexdigest()


def test_golden_event_trace_hash():
    network, deployment, digest = _run_golden_scenario()
    assert network.sim.events_run == GOLDEN_EVENTS
    assert digest == GOLDEN_SHA256
    snaps = [deployment.observer.snapshot(epoch) for epoch in (1, 2, 3)]
    assert [s.total_value() for s in snaps] == GOLDEN_TOTALS


def test_empty_fault_schedule_preserves_golden_trace():
    """The chaos layer must be pay-for-what-you-use: arming an *empty*
    FaultSchedule schedules nothing, draws no RNG, and reproduces the
    reference event stream byte-for-byte (docs/FAULTS.md)."""
    network, _, digest = _run_golden_scenario(arm_empty_fault_schedule=True)
    assert network.sim.events_run == GOLDEN_EVENTS
    assert digest == GOLDEN_SHA256


def test_all_zero_composite_profile_preserves_golden_trace():
    """The profile-algebra analogue: a composite whose every part is
    inert compiles to an *empty* schedule, and arming it is
    byte-identical to no injector at all (docs/FAULTS.md)."""
    from repro.faults import (Compose, IndependentFaults, MaintenanceWindow,
                              ProfileContext)
    from repro.topology import linear as linear_topo

    topo = linear_topo(num_switches=2, hosts_per_switch=2)
    context = ProfileContext.for_topology(topo, horizon_ns=30 * MS,
                                          start_ns=10 * MS, seed=7)
    composite = (IndependentFaults(intensity=0.0)
                 | MaintenanceWindow(targets=())
                 | Compose(parts=(IndependentFaults(intensity=0.0,
                                                    stream="other"),)))
    schedule = composite.compile(context)
    assert not schedule
    network, _, digest = _run_golden_scenario(fault_schedule=schedule)
    assert network.sim.events_run == GOLDEN_EVENTS
    assert digest == GOLDEN_SHA256
