"""End-to-end integration tests: full campaigns validated against the
ground-truth consistency checker."""

import pytest

from repro.analysis import ConsistencyChecker
from repro.core import (ControlPlaneConfig, DeploymentConfig,
                        SpeedlightDeployment)
from repro.sim.channel import BernoulliLoss
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import fat_tree, leaf_spine, ring
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


def _run_campaign(net, deployment, count=8, interval_ns=10 * MS,
                  settle_ns=300 * MS):
    epochs = deployment.schedule_campaign(count, interval_ns)
    last = deployment.observer.snapshot(epochs[-1]).requested_wall_ns
    net.run(until=last + settle_ns)
    return epochs


def _traffic(net, duration, rate=20_000, seed=2):
    wl = PoissonWorkload(net, PoissonConfig(seed=seed, rate_pps=rate,
                                            stop_ns=duration,
                                            sport_churn=True))
    wl.start()
    return wl


class TestNoChannelState:
    def test_campaign_completes_and_conserves(self, traced_net):
        net = traced_net
        _traffic(net, 1 * S)
        deployment = SpeedlightDeployment(net, metric="packet_count")
        epochs = _run_campaign(net, deployment)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == len(epochs)
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        assert checker.check_all(snaps, channel_state=False) > 0

    def test_byte_count_metric(self, traced_net):
        net = traced_net
        _traffic(net, 1 * S)
        deployment = SpeedlightDeployment(net, metric="byte_count")
        _run_campaign(net, deployment, count=5)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == 5
        checker = ConsistencyChecker(deployment.ids, metric="byte_count")
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=False)

    def test_monotone_totals_across_epochs(self, small_net):
        net = small_net
        _traffic(net, 1 * S)
        deployment = SpeedlightDeployment(net, metric="packet_count")
        _run_campaign(net, deployment, count=6)
        totals = [s.total_value()
                  for s in deployment.observer.completed_snapshots()]
        assert totals == sorted(totals)
        assert totals[-1] > totals[0] > 0


class TestChannelState:
    def test_campaign_consistent_and_conserves(self, traced_net):
        net = traced_net
        _traffic(net, 1 * S)
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True,
            control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS)))
        epochs = _run_campaign(net, deployment)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == len(epochs)
        consistent = deployment.observer.completed_snapshots(
            require_consistent=True)
        assert len(consistent) >= len(epochs) - 1  # startup epoch may mark
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        assert checker.check_all(snaps, channel_state=True) > 0

    def test_byte_count_channel_state(self):
        net = Network(leaf_spine(hosts_per_leaf=1),
                      NetworkConfig(seed=3, enable_tracing=True))
        _traffic(net, 1 * S)
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="byte_count", channel_state=True))
        _run_campaign(net, deployment, count=5)
        snaps = deployment.observer.completed_snapshots()
        checker = ConsistencyChecker(deployment.ids, metric="byte_count")
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)

    def test_inconsistency_marking_is_sound(self):
        """Force ID skips (a switch misses initiations) and verify that
        every record still marked consistent satisfies the conservation
        law — the marking may over-approximate, never under-approximate."""
        net = Network(leaf_spine(hosts_per_leaf=1),
                      NetworkConfig(seed=5, enable_tracing=True))
        _traffic(net, 2 * S, rate=10_000)
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True,
            control_plane=ControlPlaneConfig(probe_delay_ns=0,
                                             reinitiation_timeout_ns=0)))
        devices = sorted(deployment.control_planes)
        epochs = []
        for i in range(10):
            initiators = devices if i % 3 == 0 else \
                [d for d in devices if d != "leaf1"]
            epochs.append(deployment.observer.take_snapshot(
                at_wall_ns=net.sim.now + 10 * MS + i * 8 * MS,
                initiators=initiators))
        net.run(until=2 * S)
        snaps = [deployment.observer.snapshot(e) for e in epochs
                 if deployment.observer.snapshot(e).complete]
        assert snaps
        assert any(not s.consistent for s in snaps)  # skips really occurred
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)  # consistent ones hold


class TestFaultTolerance:
    def test_snapshots_survive_data_plane_packet_loss(self):
        net = Network(
            leaf_spine(hosts_per_leaf=1),
            NetworkConfig(seed=7, enable_tracing=True,
                          loss_factory=lambda spec, rng:
                          BernoulliLoss(0.005, rng)))
        _traffic(net, 2 * S)
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True,
            control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS)))
        epochs = _run_campaign(net, deployment, count=6, settle_ns=800 * MS)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) >= 5
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)

    def test_notification_buffer_overflow_recovered_by_polling(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=9))
        _traffic(net, 1 * S)
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count",
            control_plane=ControlPlaneConfig(buffer_capacity=2)))
        epochs = _run_campaign(net, deployment, count=10, interval_ns=2 * MS)
        if deployment.notification_stats()["dropped"] == 0:
            pytest.skip("buffer never overflowed at this seed")
        for cp in deployment.control_planes.values():
            cp.poll_registers()
        # After register polling, every unit's view reaches the last epoch.
        for cp in deployment.control_planes.values():
            assert cp.min_finalized_epoch() >= len(epochs) - 1


class TestOtherTopologies:
    def test_fat_tree_snapshot(self):
        net = Network(fat_tree(k=4), NetworkConfig(seed=4))
        _traffic(net, 500 * MS, rate=300)
        deployment = SpeedlightDeployment(net, metric="packet_count")
        epoch = deployment.take_snapshot()
        net.run(until=500 * MS)
        snap = deployment.observer.snapshot(epoch)
        assert snap.complete
        # 20 switches, each port contributes two units.
        assert len(snap.records) == sum(
            2 * len(net.switch(s).connected_ports()) for s in net.switches)

    def test_ring_topology_with_channel_state(self):
        net = Network(ring(num_switches=4, hosts_per_switch=1),
                      NetworkConfig(seed=6, enable_tracing=True))
        _traffic(net, 1 * S, rate=10_000)
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True,
            control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS)))
        _run_campaign(net, deployment, count=4, settle_ns=500 * MS)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == 4
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)
