"""Long-running and fault-injection integration scenarios."""


from repro.analysis import CampaignSeries, ConsistencyChecker
from repro.core import (ControlPlaneConfig, DeploymentConfig, ObserverConfig,
                        SnapshotStatus, SpeedlightDeployment)
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction, SwitchConfig
from repro.topology import leaf_spine, single_switch
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


class TestWraparoundCampaign:
    def test_small_id_space_survives_many_epochs(self):
        """A long campaign on a tiny (max_sid=15) register space: every
        epoch must round-trip through wraparound repeatedly."""
        net = Network(single_switch(num_hosts=2),
                      NetworkConfig(seed=4, enable_tracing=True))
        wl = PoissonWorkload(net, PoissonConfig(
            seed=5, rate_pps=10_000, stop_ns=2 * S, sport_churn=True,
            pairs=[("server0", "server1"), ("server1", "server0")]))
        wl.start()
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", max_sid=15))
        epochs = deployment.schedule_campaign(count=40, interval_ns=8 * MS)
        net.run(until=2 * S)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == 40  # 40 epochs over a 16-slot register file
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=False)
        totals = [s.total_value() for s in snaps]
        assert totals == sorted(totals)

    def test_wraparound_with_channel_state(self):
        net = Network(leaf_spine(hosts_per_leaf=1),
                      NetworkConfig(seed=6, enable_tracing=True))
        wl = PoissonWorkload(net, PoissonConfig(
            seed=7, rate_pps=20_000, stop_ns=2 * S, sport_churn=True))
        wl.start()
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True, max_sid=31,
            control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS)))
        epochs = deployment.schedule_campaign(count=25, interval_ns=10 * MS)
        net.run(until=2 * S)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == 25
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)


class TestDeviceFailureMidCampaign:
    def test_failed_device_excluded_then_campaign_continues(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=8))
        wl = PoissonWorkload(net, PoissonConfig(
            seed=9, rate_pps=10_000, stop_ns=2 * S, sport_churn=True))
        wl.start()
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count",
            observer=ObserverConfig(retry_timeout_ns=30 * MS,
                                    max_retries=1)))
        # spine1's control-plane CPU dies 100 ms in.
        def kill_spine1():
            net.switch("spine1").notification_sink = lambda n: None

        net.sim.schedule(100 * MS, kill_spine1)
        epochs = deployment.schedule_campaign(count=20, interval_ns=15 * MS)
        net.run(until=2 * S)
        snaps = [deployment.observer.snapshot(e) for e in epochs]
        early = [s for s in snaps if s.requested_wall_ns < 100 * MS]
        late = [s for s in snaps if s.requested_wall_ns > 200 * MS]
        assert early and late
        assert all(s.status is SnapshotStatus.COMPLETE for s in early)
        # Post-failure snapshots complete by excluding the dead device.
        for snap in late:
            assert snap.status is SnapshotStatus.COMPLETE
            assert "spine1" in snap.excluded_devices
            assert all(u.device != "spine1" for u in snap.records)


class TestCosPartialDeployment:
    def test_two_classes_on_leaves_only(self):
        cfg = NetworkConfig(seed=10, switch_config=SwitchConfig(num_cos=2),
                            enable_tracing=True)
        net = Network(leaf_spine(hosts_per_leaf=1), cfg)
        wl = PoissonWorkload(net, PoissonConfig(
            seed=11, rate_pps=15_000, stop_ns=1 * S, sport_churn=True))
        wl.start()
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True,
            switches=["leaf0", "leaf1"],
            control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS)))
        epochs = deployment.schedule_campaign(count=5, interval_ns=15 * MS)
        net.run(until=1 * S)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == 5
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)


class TestCampaignSeriesOverLiveData:
    def test_series_deltas_reflect_traffic(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=12))
        wl = PoissonWorkload(net, PoissonConfig(
            seed=13, rate_pps=20_000, stop_ns=1 * S,
            pairs=[("server0", "server1")]))
        wl.start()
        deployment = SpeedlightDeployment(net, metric="packet_count")
        epochs = deployment.schedule_campaign(count=10, interval_ns=10 * MS)
        net.run(until=1 * S)
        snaps = deployment.observer.completed_snapshots()
        series = CampaignSeries.from_snapshots(snaps)
        deltas = series.deltas()
        from repro.sim.switch import UnitId
        in_port = net.port_toward("sw0", "server0")
        unit = UnitId("sw0", in_port, Direction.INGRESS)
        per_interval = deltas.series[unit]
        # ~200 packets expected per 10 ms interval at 20 kpps.
        assert all(100 < d < 320 for d in per_interval)
