"""The long-running service driver (repro.runtime.streaming)."""

from __future__ import annotations

import pytest

from repro.runtime.streaming import ServiceReport, ServiceRun, ServiceSpec
from repro.service.pipeline import PipelineConfig
from repro.sim.engine import MS, US


def _spec(**overrides):
    defaults = dict(seed=11, interval_ns=1 * MS,
                    mean_request_gap_ns=2000 * US,
                    pipeline=PipelineConfig(retention=64,
                                            keyframe_interval=8),
                    chunk_ns=20 * MS)
    defaults.update(overrides)
    return ServiceSpec(**defaults)


class TestServiceRun:
    def test_runs_until_epochs_stored(self):
        run = ServiceRun(_spec())
        report = run.run(epochs=40)
        assert report.epochs_stored >= 40
        assert report.ticks >= report.epochs_stored
        assert report.events > 0
        assert report.sim_time_ns > 0
        assert report.wall_seconds > 0
        assert report.epochs_per_sec > 0
        assert report.events_per_sec > 0
        # The drain loop leaves nothing resolved-but-unstored.
        assert report.stats["backlog"] == 0
        assert report.stats["store_entries"] == min(64, report.epochs_stored)

    def test_bounded_store_while_driving(self):
        run = ServiceRun(_spec())
        run.run(epochs=100)
        assert len(run.pipeline.store) == 64  # ring held its bound

    def test_query_engine_answers_over_the_run(self):
        run = ServiceRun(_spec())
        run.run(epochs=20)
        engine = run.query_engine()
        assert engine.epochs()
        assert engine.conservation()["violations"] == {}
        summary = engine.summary()
        assert summary["epochs_stored"] == len(run.pipeline.store)

    def test_heavy_hitter_spec_wires_a_resolver(self):
        run = ServiceRun(_spec(metric="heavy_hitter"))
        run.run(epochs=15)
        answer = run.query_engine().heavy_hitters(top=3)
        assert answer["units"]
        assert answer["flows"], "heavy_hitter serve must drill to flows"

    def test_spec_kwargs_shorthand(self):
        run = ServiceRun(seed=3, interval_ns=2 * MS)
        assert run.spec.seed == 3
        with pytest.raises(ValueError):
            ServiceRun(ServiceSpec(), seed=3)

    def test_epochs_validated(self):
        with pytest.raises(ValueError):
            ServiceRun(_spec()).run(epochs=0)

    def test_max_wall_seconds_is_a_valve(self):
        run = ServiceRun(_spec())
        report = run.run(epochs=10 ** 9, max_wall_seconds=0.2)
        assert report.epochs_stored < 10 ** 9  # stopped by the valve

    def test_report_rates_handle_zero_wall(self):
        report = ServiceReport(epochs_stored=1, ticks=1, sim_time_ns=1,
                               wall_seconds=0.0, events=1, stats={})
        assert report.epochs_per_sec == 0.0
        assert report.events_per_sec == 0.0
