"""TrialRunner: serial/parallel determinism and cache interaction.

The determinism tests use the real ``fig11`` trial kind (cheap
Monte-Carlo) so worker processes resolve it through the standard
registry exactly as the CLI does.
"""


import pytest

from repro.experiments import fig11
from repro.runtime import (TrialCache, TrialRunner, TrialSpec, make_result,
                           registered_kinds, resolve, trial)


def _fig11_specs(counts: list[int]) -> list[TrialSpec]:
    return fig11.specs(fig11.Fig11Config(router_counts=counts, trials=5))


class TestDeterminism:
    def test_parallel_results_byte_identical_to_serial(self):
        specs = _fig11_specs([5, 10, 20, 40])
        serial = TrialRunner(jobs=1).run_batch(specs)
        parallel = TrialRunner(jobs=4).run_batch(specs)
        assert [r.to_json() for r in serial] == \
            [r.to_json() for r in parallel]

    def test_results_come_back_in_spec_order(self):
        specs = _fig11_specs([20, 5, 10])
        results = TrialRunner(jobs=2).run_batch(specs)
        assert [r.params["routers"] for r in results] == [20, 5, 10]

    def test_cache_fingerprints_stable_across_jobs(self, tmp_path):
        """The on-disk cache produced at ``--jobs 4`` is interchangeable
        with the one produced at ``--jobs 1``: same fingerprints (file
        identities) and byte-identical stored results."""
        specs = _fig11_specs([5, 10, 20, 40])
        serial_cache = TrialCache(tmp_path / "serial", version="v1")
        parallel_cache = TrialCache(tmp_path / "parallel", version="v1")
        TrialRunner(jobs=1, cache=serial_cache).run_batch(specs)
        TrialRunner(jobs=4, cache=parallel_cache).run_batch(specs)

        for spec in specs:
            fp = spec.fingerprint()
            serial_hit = serial_cache.get(fp)
            parallel_hit = parallel_cache.get(fp)
            assert serial_hit is not None and parallel_hit is not None
            assert serial_hit.to_json() == parallel_hit.to_json()

        # And a serial run replays cleanly from the parallel cache.
        replay = TrialRunner(jobs=1, cache=parallel_cache)
        replay.run_batch(specs)
        assert replay.last_stats.cached == len(specs)
        assert replay.last_stats.executed == 0

    def test_trial_seconds_recorded_per_executed_trial(self):
        specs = _fig11_specs([5, 10])
        runner = TrialRunner(jobs=1)
        runner.run_batch(specs)
        stats = runner.last_stats
        assert set(stats.trial_seconds) == {s.describe() for s in specs}
        assert all(seconds >= 0 for seconds in stats.trial_seconds.values())

    def test_profile_dir_dumps_one_prof_per_trial(self, tmp_path):
        specs = _fig11_specs([5, 10])
        profile_dir = tmp_path / "profs"
        cache = TrialCache(tmp_path / "cache", version="v1")
        TrialRunner(cache=cache).run_batch(specs)  # warm the cache
        runner = TrialRunner(cache=cache, profile_dir=str(profile_dir))
        results = runner.run_batch(specs)
        # Profiling bypasses the cache (a cache hit profiles nothing).
        assert runner.last_stats.executed == len(specs)
        assert len(results) == len(specs)
        assert len(list(profile_dir.glob("*.prof"))) == len(specs)


class TestCacheInteraction:
    def test_cache_hit_skips_execution(self, tmp_path):
        calls = []

        @trial("_runner_test_counting")
        def counting_trial(spec):
            calls.append(spec.params["n"])
            return make_result(spec, {"n": spec.params["n"]})

        cache = TrialCache(tmp_path / "c", version="v1")
        specs = [TrialSpec(kind="_runner_test_counting", params={"n": n})
                 for n in (1, 2)]
        runner = TrialRunner(cache=cache)
        runner.run_batch(specs)
        assert runner.last_stats.executed == 2
        assert calls == [1, 2]

        rerun = TrialRunner(cache=TrialCache(tmp_path / "c", version="v1"))
        results = rerun.run_batch(specs)
        assert calls == [1, 2]  # nothing re-executed
        assert rerun.last_stats.cached == 2
        assert rerun.last_stats.executed == 0
        assert [r.data["n"] for r in results] == [1, 2]

    def test_spec_change_invalidates(self, tmp_path):
        calls = []

        @trial("_runner_test_invalidate")
        def invalidating_trial(spec):
            calls.append(spec.params["n"])
            return make_result(spec, {"n": spec.params["n"]})

        cache_dir = tmp_path / "c"
        TrialRunner(cache=TrialCache(cache_dir, version="v1")).run_batch(
            [TrialSpec(kind="_runner_test_invalidate", params={"n": 1})])
        TrialRunner(cache=TrialCache(cache_dir, version="v1")).run_batch(
            [TrialSpec(kind="_runner_test_invalidate", params={"n": 2})])
        assert calls == [1, 2]  # the changed spec executed, fresh

    def test_code_version_change_invalidates(self, tmp_path):
        calls = []

        @trial("_runner_test_version")
        def versioned_trial(spec):
            calls.append(1)
            return make_result(spec, {})

        spec = TrialSpec(kind="_runner_test_version", params={})
        cache_dir = tmp_path / "c"
        TrialRunner(cache=TrialCache(cache_dir, version="v1")).run_batch([spec])
        TrialRunner(cache=TrialCache(cache_dir, version="v2")).run_batch([spec])
        assert calls == [1, 1]


class TestRegistry:
    def test_unknown_kind_raises_with_known_kinds(self):
        with pytest.raises(KeyError, match="no trial function"):
            resolve("_no_such_kind")

    def test_standard_kinds_resolve(self):
        for kind in ("fig9", "fig10", "fig11", "fig12", "fig13", "table1",
                     "motivation", "scaling", "sweep_ptp", "sweep_rate",
                     "sweep_service_cost", "ablation_ideal",
                     "ablation_initiation", "ablation_transport"):
            assert resolve(kind) is not None
            assert kind in registered_kinds()

    def test_duplicate_registration_rejected(self):
        @trial("_runner_test_dup")
        def first(spec):
            return make_result(spec, {})

        with pytest.raises(ValueError, match="already registered"):
            @trial("_runner_test_dup")
            def second(spec):
                return make_result(spec, {})

    def test_mismatched_result_fingerprint_rejected(self):
        from repro.runtime import execute_spec

        @trial("_runner_test_mismatch")
        def mismatched(spec):
            other = TrialSpec(kind="_runner_test_mismatch",
                              params={"different": True})
            return make_result(other, {})

        with pytest.raises(RuntimeError, match="different spec"):
            execute_spec(TrialSpec(kind="_runner_test_mismatch", params={}))


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            TrialRunner(jobs=0)
