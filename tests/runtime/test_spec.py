"""TrialSpec canonicalization, fingerprints, and seed derivation."""

import numpy as np
import pytest

from repro.runtime import (TrialSpec, canonical, canonical_json, derive_seed,
                           make_result, spec_batch)


class TestCanonical:
    def test_tuples_become_lists(self):
        assert canonical((1, 2, (3, 4))) == [1, 2, [3, 4]]

    def test_numpy_scalars_coerce_to_python(self):
        doc = canonical({"a": np.int64(3), "b": np.float64(0.5)})
        assert doc == {"a": 3, "b": 0.5}
        assert type(doc["a"]) is int
        assert type(doc["b"]) is float

    def test_non_json_values_rejected(self):
        with pytest.raises(TypeError):
            canonical({"obj": object()})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            canonical({1: "a"})

    def test_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == \
            canonical_json({"a": 2, "b": 1})


class TestFingerprint:
    def test_label_does_not_affect_fingerprint(self):
        a = TrialSpec(kind="k", params={"x": 1}, seed=7, label="one")
        b = TrialSpec(kind="k", params={"x": 1}, seed=7, label="two")
        assert a.fingerprint() == b.fingerprint()

    def test_params_order_does_not_affect_fingerprint(self):
        a = TrialSpec(kind="k", params={"x": 1, "y": 2}, seed=7)
        b = TrialSpec(kind="k", params={"y": 2, "x": 1}, seed=7)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("other", [
        TrialSpec(kind="k2", params={"x": 1}, seed=7),
        TrialSpec(kind="k", params={"x": 2}, seed=7),
        TrialSpec(kind="k", params={"x": 1}, seed=8),
    ])
    def test_kind_params_seed_all_fingerprinted(self, other):
        base = TrialSpec(kind="k", params={"x": 1}, seed=7)
        assert base.fingerprint() != other.fingerprint()

    def test_default_shards_leaves_fingerprint_unchanged(self):
        # Back-compat: every pre-sharding fingerprint (and cached
        # result) must survive the new field at its default.
        base = TrialSpec(kind="k", params={"x": 1}, seed=7)
        explicit = TrialSpec(kind="k", params={"x": 1}, seed=7, shards=1)
        assert base.fingerprint() == explicit.fingerprint()

    def test_shard_count_is_fingerprinted(self):
        base = TrialSpec(kind="k", params={"x": 1}, seed=7)
        sharded = TrialSpec(kind="k", params={"x": 1}, seed=7, shards=2)
        assert base.fingerprint() != sharded.fingerprint()

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            TrialSpec(kind="k", params={}, seed=7, shards=0)

    def test_default_agg_degree_leaves_fingerprint_unchanged(self):
        # Back-compat: every pre-aggregation fingerprint (and cached
        # result) must survive the new field at its default.
        base = TrialSpec(kind="k", params={"x": 1}, seed=7)
        explicit = TrialSpec(kind="k", params={"x": 1}, seed=7,
                             agg_degree=None)
        assert base.fingerprint() == explicit.fingerprint()

    def test_agg_degree_is_fingerprinted(self):
        base = TrialSpec(kind="k", params={"x": 1}, seed=7)
        flat = TrialSpec(kind="k", params={"x": 1}, seed=7, agg_degree=0)
        tree = TrialSpec(kind="k", params={"x": 1}, seed=7, agg_degree=4)
        assert len({base.fingerprint(), flat.fingerprint(),
                    tree.fingerprint()}) == 3

    def test_agg_degree_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="agg_degree"):
            TrialSpec(kind="k", params={}, seed=7, agg_degree=-1)

    def test_fingerprint_is_stable_across_processes(self):
        # A hard-coded value: sha256 must not drift with interpreter
        # hash randomization (unlike hash()).
        spec = TrialSpec(kind="k", params={"x": 1}, seed=7)
        assert spec.fingerprint() == spec.fingerprint()
        assert len(spec.fingerprint()) == 64
        assert int(spec.fingerprint(), 16) >= 0


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "fig11", 100) == derive_seed(42, "fig11", 100)

    def test_parts_change_seed(self):
        seeds = {derive_seed(42, "fig11", 100), derive_seed(42, "fig11", 101),
                 derive_seed(43, "fig11", 100), derive_seed(42, "fig12", 100)}
        assert len(seeds) == 4

    def test_non_negative_63_bit(self):
        s = derive_seed(0)
        assert 0 <= s < 2 ** 63


class TestMakeResult:
    def test_result_carries_spec_identity(self):
        spec = TrialSpec(kind="k", params={"x": 1}, seed=7, label="lbl")
        result = make_result(spec, {"v": (1, 2)})
        assert result.fingerprint == spec.fingerprint()
        assert result.kind == "k"
        assert result.label == "lbl"
        assert result.data == {"v": [1, 2]}  # canonicalized

    def test_json_roundtrip_is_byte_stable(self):
        from repro.runtime import TrialResult

        spec = TrialSpec(kind="k", params={"x": 1}, seed=7)
        result = make_result(spec, {"v": 3.5})
        text = result.to_json()
        assert TrialResult.from_json(text).to_json() == text


class TestSpecBatch:
    def test_batch_builds_labels_and_params(self):
        specs = spec_batch("k", [{"n": 1}, {"n": 2}], seed=9, label_key="n")
        assert [s.params["n"] for s in specs] == [1, 2]
        assert all(s.seed == 9 for s in specs)
        assert specs[0].label == "k/1"
