"""On-disk result cache: hits, version invalidation, atomicity."""

from repro.runtime import TrialCache, TrialSpec, code_version, make_result


def _result(x=1):
    spec = TrialSpec(kind="k", params={"x": x}, seed=5, label=f"k/{x}")
    return spec, make_result(spec, {"value": x * 10})


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = TrialCache(tmp_path / "c", version="v1")
        spec, result = _result()
        assert cache.get(spec.fingerprint()) is None
        cache.put(result)
        hit = cache.get(spec.fingerprint())
        assert hit is not None
        assert hit.to_json() == result.to_json()
        assert len(cache) == 1

    def test_spec_change_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path / "c", version="v1")
        _, result = _result(x=1)
        cache.put(result)
        changed_spec, _ = _result(x=2)
        assert cache.get(changed_spec.fingerprint()) is None

    def test_code_version_mismatch_is_a_miss(self, tmp_path):
        spec, result = _result()
        TrialCache(tmp_path / "c", version="v1").put(result)
        assert TrialCache(tmp_path / "c",
                          version="v2").get(spec.fingerprint()) is None
        # Same version still hits.
        assert TrialCache(tmp_path / "c",
                          version="v1").get(spec.fingerprint()) is not None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path / "c", version="v1")
        spec, result = _result()
        cache.put(result)
        cache._path(spec.fingerprint()).write_text("{not json")
        assert cache.get(spec.fingerprint()) is None

    def test_overwrite_replaces_entry(self, tmp_path):
        cache = TrialCache(tmp_path / "c", version="v1")
        spec, result = _result()
        cache.put(result)
        cache.put(result)
        assert len(cache) == 1

    def test_default_version_is_code_hash(self, tmp_path):
        cache = TrialCache(tmp_path / "c")
        assert cache.version == code_version()
        assert len(code_version()) == 64
