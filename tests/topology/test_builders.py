"""Tests for the topology builders."""

import pytest

from repro.topology import fat_tree, leaf_spine, linear, ring, single_switch


class TestLeafSpine:
    def test_testbed_defaults_match_paper(self):
        topo = leaf_spine()
        assert len(topo.switches) == 4
        assert len(topo.hosts) == 6
        # Full bipartite leaf-spine plus one link per host.
        assert len(topo.links) == 2 * 2 + 6

    def test_link_speeds(self):
        topo = leaf_spine()
        fabric = topo.link_between("leaf0", "spine0")
        host = topo.link_between("leaf0", "server0")
        assert fabric.bandwidth_bps == 100 * 10**9
        assert host.bandwidth_bps == 25 * 10**9

    def test_every_leaf_connects_every_spine(self):
        topo = leaf_spine(num_leaves=3, num_spines=4, hosts_per_leaf=2)
        for i in range(3):
            for j in range(4):
                assert topo.link_between(f"leaf{i}", f"spine{j}") is not None
        assert len(topo.hosts) == 6

    def test_hosts_numbered_across_leaves(self):
        topo = leaf_spine(num_leaves=2, hosts_per_leaf=3)
        assert topo.link_between("leaf0", "server0") is not None
        assert topo.link_between("leaf1", "server3") is not None

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            leaf_spine(num_leaves=0)


class TestSingleSwitch:
    def test_structure(self):
        topo = single_switch(num_hosts=8)
        assert topo.switches == ["sw0"]
        assert len(topo.hosts) == 8
        assert topo.degree("sw0") == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            single_switch(num_hosts=0)


class TestLinearAndRing:
    def test_linear_chain(self):
        topo = linear(num_switches=4, hosts_per_switch=2)
        assert len(topo.switches) == 4
        assert len(topo.hosts) == 8
        assert topo.link_between("sw0", "sw1") is not None
        assert topo.link_between("sw0", "sw3") is None

    def test_ring_wraps(self):
        topo = ring(num_switches=4)
        assert topo.link_between("sw3", "sw0") is not None

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring(num_switches=2)


class TestFatTree:
    def test_k4_sizes(self):
        topo = fat_tree(k=4)
        # (k/2)^2 cores + k pods x (k/2 agg + k/2 edge) = 4 + 16 switches.
        assert len(topo.switches) == 20
        assert len(topo.hosts) == 16
        assert topo.is_connected()

    def test_k_must_be_even(self):
        with pytest.raises(ValueError):
            fat_tree(k=3)

    def test_equal_cost_core_paths(self):
        topo = fat_tree(k=4)
        # Cross-pod traffic from an edge switch has 2 equal-cost aggs.
        hops = topo.ecmp_next_hops("edge0_0", "server15")
        assert len(hops) == 2
