"""Tests for the declarative topology description."""

import pytest

from repro.topology.graph import LinkSpec, NodeKind, Topology


def _two_switch():
    topo = Topology("t")
    topo.add_switch("s0")
    topo.add_switch("s1")
    topo.add_host("h0")
    topo.add_host("h1")
    topo.add_link("s0", "s1")
    topo.add_link("s0", "h0")
    topo.add_link("s1", "h1")
    return topo


class TestConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_switch("x")
        with pytest.raises(ValueError):
            topo.add_host("x")

    def test_link_to_unknown_node_rejected(self):
        topo = Topology()
        topo.add_switch("s0")
        with pytest.raises(ValueError):
            topo.add_link("s0", "ghost")

    def test_host_to_host_link_rejected(self):
        topo = Topology()
        topo.add_host("h0")
        topo.add_host("h1")
        with pytest.raises(ValueError):
            topo.add_link("h0", "h1")

    def test_duplicate_link_rejected(self):
        topo = _two_switch()
        with pytest.raises(ValueError):
            topo.add_link("s0", "s1")

    def test_linkspec_other(self):
        spec = LinkSpec("a", "b")
        assert spec.other("a") == "b"
        assert spec.other("b") == "a"
        with pytest.raises(ValueError):
            spec.other("c")


class TestQueries:
    def test_kinds_and_listings(self):
        topo = _two_switch()
        assert topo.switches == ["s0", "s1"]
        assert topo.hosts == ["h0", "h1"]
        assert topo.kind("s0") is NodeKind.SWITCH
        assert topo.kind("h0") is NodeKind.HOST

    def test_neighbors_and_degree(self):
        topo = _two_switch()
        assert topo.neighbors("s0") == ["h0", "s1"]
        assert topo.degree("s0") == 2

    def test_link_between(self):
        topo = _two_switch()
        assert topo.link_between("s0", "s1") is not None
        assert topo.link_between("s0", "h1") is None

    def test_connectivity(self):
        topo = _two_switch()
        assert topo.is_connected()
        topo.add_switch("island")
        assert not topo.is_connected()


class TestEcmpNextHops:
    def test_single_path(self):
        topo = _two_switch()
        assert topo.ecmp_next_hops("s0", "h1") == ["s1"]
        assert topo.ecmp_next_hops("s0", "h0") == ["h0"]

    def test_multipath(self):
        topo = Topology()
        for name in ("l0", "l1", "sp0", "sp1"):
            topo.add_switch(name)
        topo.add_host("h0")
        topo.add_host("h1")
        for leaf in ("l0", "l1"):
            for spine in ("sp0", "sp1"):
                topo.add_link(leaf, spine)
        topo.add_link("l0", "h0")
        topo.add_link("l1", "h1")
        assert topo.ecmp_next_hops("l0", "h1") == ["sp0", "sp1"]

    def test_hosts_never_transit(self):
        # h0 attached to both switches would be a shorter "path"; hosts
        # must not be considered as next hops toward other hosts.
        topo = Topology()
        topo.add_switch("s0")
        topo.add_switch("s1")
        topo.add_host("h0")
        topo.add_host("h1")
        topo.add_link("s0", "s1")
        topo.add_link("s0", "h0")
        topo.add_link("s1", "h0")  # dual-homed host
        topo.add_link("s1", "h1")
        assert topo.ecmp_next_hops("s0", "h1") == ["s1"]

    def test_unreachable_destination(self):
        topo = _two_switch()
        topo.add_switch("island")
        topo.add_host("island_h")
        topo.add_link("island", "island_h")
        assert topo.ecmp_next_hops("s0", "island_h") == []

    def test_argument_validation(self):
        topo = _two_switch()
        with pytest.raises(ValueError):
            topo.ecmp_next_hops("h0", "h1")  # source must be a switch
        with pytest.raises(ValueError):
            topo.ecmp_next_hops("s0", "s1")  # dst must be a host
