"""Tests for the counter-polling baseline."""

import pytest

from repro.counters import PacketCounter
from repro.polling import (PollRound, PollSample, PollTarget, PollingConfig,
                           PollingObserver)
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction
from repro.topology import leaf_spine, single_switch


def _net_with_counters(topo=None):
    net = Network(topo or single_switch(num_hosts=3), NetworkConfig(seed=7))
    for sw in net.switches.values():
        for port in sw.ports:
            port.ingress.counters.add("packet_count", PacketCounter())
            port.egress.counters.add("packet_count", PacketCounter())
    return net


def _targets(net, direction=Direction.INGRESS):
    return [PollTarget(name, port, direction, "packet_count")
            for name in sorted(net.switches)
            for port in net.switch(name).connected_ports()]


class TestValidation:
    def test_requires_targets(self):
        net = _net_with_counters()
        with pytest.raises(ValueError):
            PollingObserver(net, [])

    def test_rejects_unknown_counter(self):
        net = _net_with_counters()
        bad = [PollTarget("sw0", 0, Direction.INGRESS, "nope")]
        with pytest.raises(ValueError):
            PollingObserver(net, bad)


class TestSingleRound:
    def test_round_collects_every_target(self):
        net = _net_with_counters()
        targets = _targets(net)
        poller = PollingObserver(net, targets)
        done = []
        poller.poll_round(done.append)
        net.run(until=100 * MS)
        assert len(done) == 1
        assert len(done[0].samples) == len(targets)

    def test_reads_are_sequential_per_switch(self):
        net = _net_with_counters()
        poller = PollingObserver(net, _targets(net), PollingConfig(
            per_read_ns=400 * US, read_jitter_ns=0))
        round_ = poller.poll_round()
        net.run(until=100 * MS)
        times = sorted(s.read_ns for s in round_.samples)
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= 400 * US

    def test_round_spread_reflects_chain_length(self):
        net = _net_with_counters()
        poller = PollingObserver(net, _targets(net), PollingConfig(
            per_read_ns=300 * US, read_jitter_ns=0))
        round_ = poller.poll_round()
        net.run(until=100 * MS)
        # 3 targets on one switch -> spread = 2 gaps of 300 us.
        assert round_.spread_ns == 2 * 300 * US

    def test_values_sampled_at_read_time_not_request_time(self):
        net = _net_with_counters()
        counter = net.switch("sw0").ports[0].ingress.counters.get("packet_count")
        poller = PollingObserver(
            net, [PollTarget("sw0", 0, Direction.INGRESS, "packet_count")],
            PollingConfig(per_read_ns=1 * MS, read_jitter_ns=0))
        round_ = poller.poll_round()
        # Counter increments after the request is issued but before the
        # driver read completes: polling must observe the new value.
        from repro.sim.packet import FlowKey, Packet
        net.sim.schedule(500 * US, counter.update,
                         Packet(flow=FlowKey("a", "b", 1, 2)), 0)
        net.run(until=100 * MS)
        assert round_.samples[0].value == 1

    def test_parallel_switches_poll_concurrently(self):
        net = _net_with_counters(leaf_spine(hosts_per_leaf=1))
        serial = PollingObserver(net, _targets(net), PollingConfig(
            per_read_ns=500 * US, read_jitter_ns=0,
            parallel_across_switches=False))
        round_ = serial.poll_round()
        net.run(until=100 * MS)
        serial_spread = round_.spread_ns

        net2 = _net_with_counters(leaf_spine(hosts_per_leaf=1))
        parallel = PollingObserver(net2, _targets(net2), PollingConfig(
            per_read_ns=500 * US, read_jitter_ns=0,
            parallel_across_switches=True))
        round2 = parallel.poll_round()
        net2.run(until=100 * MS)
        assert round2.spread_ns < serial_spread


class TestRoundHelpers:
    def test_value_of_and_missing(self):
        target = PollTarget("sw0", 0, Direction.INGRESS, "packet_count")
        round_ = PollRound(index=0,
                           samples=[PollSample(target, 5, read_ns=10)])
        assert round_.value_of(target) == 5
        with pytest.raises(KeyError):
            round_.value_of(PollTarget("sw0", 1, Direction.INGRESS,
                                       "packet_count"))

    def test_empty_round_spread(self):
        assert PollRound(index=0).spread_ns == 0


class TestCampaign:
    def test_campaign_produces_all_rounds(self):
        net = _net_with_counters()
        poller = PollingObserver(net, _targets(net))
        poller.run_campaign(num_rounds=5, interval_ns=5 * MS)
        net.run(until=200 * MS)
        assert len(poller.complete_rounds) == 5

    def test_invalid_round_count(self):
        net = _net_with_counters()
        poller = PollingObserver(net, _targets(net))
        with pytest.raises(ValueError):
            poller.run_campaign(num_rounds=0, interval_ns=1 * MS)
