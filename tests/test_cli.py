"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "Speedlight" in capsys.readouterr().out

    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig9", "fig10", "fig11", "fig12", "fig13",
                     "ablation-ideal", "ablation-initiation"):
            assert name in out

    def test_metrics_lists_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "packet_count" in out
        assert "queue_depth" in out
        assert "gauge" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "770" in out  # the channel-state SRAM figure

    def test_run_fig11_quick(self, capsys):
        assert main(["run", "fig11", "--quick"]) == 0
        assert "Figure 11" in capsys.readouterr().out


class TestDemo:
    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "total packets" in out
        assert "consistent" in out
