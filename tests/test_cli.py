"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "Speedlight" in capsys.readouterr().out

    def test_experiments_list_names_all(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig9", "fig10", "fig11", "fig12", "fig13",
                     "ablation-ideal", "ablation-initiation",
                     "ablation-transport", "sweep-service-cost", "sweep-ptp",
                     "sweep-rate", "scaling", "motivation"):
            assert name in out

    def test_metrics_lists_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "packet_count" in out
        assert "queue_depth" in out
        assert "gauge" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_only_subset_fails_cleanly(self, capsys):
        assert main(["experiments", "--only", "fig99", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "770" in out  # the channel-state SRAM figure

    def test_run_fig11_quick(self, capsys):
        assert main(["run", "fig11", "--quick", "--no-cache"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_run_caches_results(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "table1", "--cache-dir", cache_dir]) == 0
        assert "1 executed, 0 from cache" in capsys.readouterr().err
        assert main(["run", "table1", "--cache-dir", cache_dir]) == 0
        assert "0 executed, 1 from cache" in capsys.readouterr().err

    def test_experiments_subset_combined_batch(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["experiments", "--only", "table1,fig11", "--quick",
                     "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "Figure 11" in captured.out
        # One combined batch: 1 table1 trial + 4 quick fig11 trials.
        assert "5 trials: 5 executed" in captured.err
        # Second run: everything cached, nothing re-executed.
        assert main(["experiments", "--only", "table1,fig11", "--quick",
                     "--cache-dir", cache_dir]) == 0
        assert "0 executed, 5 from cache" in capsys.readouterr().err


class TestFaultProfileFlag:
    PROFILE = ('{"type": "compose", "parts": ['
               '{"type": "correlated", "at_ns": 25000000}, '
               '{"type": "independent", "intensity": 0.25, '
               '"kinds": ["link_delay"]}]}')

    def test_inline_json_profile_reaches_the_experiment(self, capsys):
        assert main(["run", "faults", "--quick", "--no-cache",
                     "--fault-profile", self.PROFILE]) == 0
        captured = capsys.readouterr()
        assert "[fault profile applied to: faults]" in captured.err
        # The single-profile scenario replaces the intensity sweep.
        assert "profile-compose" in captured.out

    def test_profile_file_accepted(self, capsys, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(self.PROFILE)
        assert main(["run", "faults", "--quick", "--no-cache",
                     "--fault-profile", str(path)]) == 0
        assert "profile-compose" in capsys.readouterr().out

    def test_bad_json_fails_cleanly(self, capsys):
        assert main(["run", "faults", "--quick", "--no-cache",
                     "--fault-profile", "{not json"]) == 2
        assert "valid JSON" in capsys.readouterr().err

    def test_invalid_profile_fails_cleanly(self, capsys):
        assert main(["run", "faults", "--quick", "--no-cache",
                     "--fault-profile", '{"type": "gremlins"}']) == 2
        assert "unknown fault profile type" in capsys.readouterr().err

    def test_experiment_without_profile_support_fails_cleanly(self, capsys):
        assert main(["run", "table1", "--no-cache",
                     "--fault-profile", self.PROFILE]) == 2
        assert "does not accept a fault profile" in capsys.readouterr().err


class TestShardsFlag:
    def test_run_scaling_quick_with_shards(self, capsys):
        # The CI quick suite's sharded exercise: a real space-parallel
        # scaling run, two worker processes per trial.
        assert main(["run", "scaling", "--quick", "--no-cache",
                     "--shards", "2"]) == 0
        captured = capsys.readouterr()
        assert "[2 shards applied to: scaling]" in captured.err
        assert "fat-trees" in captured.out

    def test_experiment_without_shard_support_fails_cleanly(self, capsys):
        assert main(["run", "table1", "--no-cache", "--shards", "2"]) == 2
        assert "does not support sharded" in capsys.readouterr().err

    def test_shards_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "scaling", "--quick", "--no-cache",
                  "--shards", "0"])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err


class TestDemo:
    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "total packets" in out
        assert "consistent" in out


class TestServe:
    def test_serve_reports_throughput_and_summary(self, capsys):
        assert main(["serve", "--epochs", "10", "--interval-us", "1000",
                     "--seed", "3", "--json"]) == 0
        import json
        doc = json.loads(capsys.readouterr().out)
        assert doc["epochs_stored"] >= 10
        assert doc["epochs_per_sec"] > 0
        assert doc["pipeline"]["backlog"] == 0
        assert doc["summary"]["epochs_stored"] == doc["pipeline"]["ingested"]

    def test_serve_queries_inline(self, capsys):
        assert main(["serve", "--epochs", "12", "--interval-us", "1000",
                     "--seed", "3", "--retention", "8",
                     "--query-range", "5", "8", "--conservation",
                     "--heavy-hitters", "3", "--json"]) == 0
        import json
        doc = json.loads(capsys.readouterr().out)
        epochs = [d["epoch"] for d in doc["range"]]
        assert epochs == sorted(epochs)
        assert all(5 <= e <= 8 for e in epochs)
        assert doc["conservation"]["violations"] == {}
        assert doc["summary"]["epochs_stored"] == 8  # retention ring held
        assert "units" in doc["heavy_hitters"]

    def test_serve_human_readable(self, capsys):
        assert main(["serve", "--epochs", "5", "--interval-us", "1000",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "served" in out
        assert "epochs/s wall" in out
