"""Randomized end-to-end property test: conservation on random networks.

Hypothesis drives whole simulations: random small topologies, random
traffic matrices and rates, random loss, random snapshot cadence — and
for every complete snapshot the system produces, the ground-truth
conservation law must hold exactly for every record marked consistent.
This is the strongest single statement the test suite makes: the
protocol's headline guarantee survives arbitrary (bounded) composition
of everything else the repository implements.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import ConsistencyChecker
from repro.core import (ControlPlaneConfig, DeploymentConfig,
                        SpeedlightDeployment)
from repro.sim.channel import BernoulliLoss
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine, linear, ring, single_switch
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


def _build_topology(kind: str):
    if kind == "single":
        return single_switch(num_hosts=3)
    if kind == "linear":
        return linear(num_switches=3, hosts_per_switch=1)
    if kind == "ring":
        return ring(num_switches=4, hosts_per_switch=1)
    return leaf_spine(hosts_per_leaf=1)


scenario = st.fixed_dictionaries({
    "topology": st.sampled_from(["single", "linear", "ring", "leafspine"]),
    "seed": st.integers(min_value=0, max_value=10_000),
    "rate_pps": st.sampled_from([2_000.0, 10_000.0, 25_000.0]),
    "loss_pct": st.sampled_from([0.0, 0.0, 0.005]),  # mostly lossless
    "channel_state": st.booleans(),
    "snapshots": st.integers(min_value=2, max_value=4),
    "interval_ms": st.integers(min_value=3, max_value=10),
})


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario)
def test_conservation_on_random_scenarios(params):
    loss_factory = None
    if params["loss_pct"]:
        loss_factory = (lambda spec, rng:
                        BernoulliLoss(params["loss_pct"], rng))
    network = Network(_build_topology(params["topology"]),
                      NetworkConfig(seed=params["seed"],
                                    enable_tracing=True,
                                    loss_factory=loss_factory))
    duration = 60 * MS + params["snapshots"] * params["interval_ms"] * MS \
        + 300 * MS
    workload = PoissonWorkload(network, PoissonConfig(
        seed=params["seed"] + 1, rate_pps=params["rate_pps"],
        stop_ns=duration, sport_churn=True))
    workload.start()
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", channel_state=params["channel_state"],
        control_plane=ControlPlaneConfig(
            probe_delay_ns=2 * MS if params["channel_state"] else 0)))
    deployment.schedule_campaign(params["snapshots"],
                                 params["interval_ms"] * MS)
    network.run(until=duration)

    snaps = deployment.observer.completed_snapshots()
    # Liveness: with retries and probes, every epoch completes.
    assert len(snaps) == params["snapshots"], (
        f"only {len(snaps)}/{params['snapshots']} snapshots completed")
    # Safety: every consistent record satisfies the conservation law.
    checker = ConsistencyChecker(deployment.ids)
    checker.ingest(network.trace_log)
    checked = checker.check_all(snaps, channel_state=params["channel_state"])
    assert checked > 0
