"""Randomized fault-robustness properties.

Hypothesis drives snapshot campaigns over networks with arbitrary loss
patterns (independent, bursty, and adversarially scripted) plus random
fault schedules, and asserts the chaos-layer contract from
docs/FAULTS.md: faults may stall snapshots or get epochs flagged
inconsistent, but every *completed* snapshot still satisfies the
physical link invariant — a receiver never counts more pre-epoch
packets than its sender put on the wire (LinkAudit discrepancies are
non-negative) — and every record still *claiming* consistency passes
the ground-truth conservation law.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import ConsistencyChecker, LinkAudit
from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.faults import FaultInjector, IndependentFaults, ProfileContext
from repro.sim.channel import BernoulliLoss, GilbertElliottLoss, ScriptedLoss
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine, linear
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

ROUNDS = 3
INTERVAL_NS = 5 * MS


def _loss_factory(kind, param):
    if kind == "bernoulli":
        return lambda spec, rng: BernoulliLoss(param, rng)
    if kind == "gilbert":
        return lambda spec, rng: GilbertElliottLoss(
            rng, p_good_to_bad=0.02, p_bad_to_good=0.08, p_loss_bad=param)
    # Adversarially periodic: drop every k-th packet regardless of RNG.
    k = max(2, int(param * 20))
    return lambda spec, rng: ScriptedLoss(predicate=lambda p: p.uid % k == 0)


scenario = st.fixed_dictionaries({
    "topology": st.sampled_from(["linear", "leafspine"]),
    "seed": st.integers(min_value=0, max_value=10_000),
    "loss_kind": st.sampled_from(["bernoulli", "gilbert", "scripted"]),
    "loss_param": st.sampled_from([0.02, 0.1, 0.3]),
    "fault_intensity": st.sampled_from([0.0, 0.5, 1.5]),
    "rate_pps": st.sampled_from([5_000.0, 15_000.0]),
})


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario)
def test_link_audit_non_negative_under_arbitrary_loss(params):
    topo = (linear(num_switches=2, hosts_per_switch=1)
            if params["topology"] == "linear" else leaf_spine(hosts_per_leaf=1))
    network = Network(topo, NetworkConfig(
        seed=params["seed"], enable_tracing=True,
        loss_factory=_loss_factory(params["loss_kind"],
                                   params["loss_param"])))
    stop_ns = (ROUNDS + 2) * INTERVAL_NS + 20 * MS
    PoissonWorkload(network, PoissonConfig(seed=params["seed"] + 1,
                                           rate_pps=params["rate_pps"],
                                           stop_ns=stop_ns)).start()
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", channel_state=True))

    if params["fault_intensity"]:
        context = ProfileContext.for_topology(
            topo, horizon_ns=ROUNDS * INTERVAL_NS, start_ns=5 * MS,
            seed=params["seed"])
        schedule = IndependentFaults(
            intensity=params["fault_intensity"]).compile(context)
        FaultInjector(network, schedule, deployment=deployment).arm()

    epochs = deployment.schedule_campaign(ROUNDS, INTERVAL_NS)
    network.run(until=stop_ns)
    snapshots = [deployment.observer.snapshot(e) for e in epochs]

    summary = LinkAudit(network).audit_completed(snapshots)
    assert summary.ok, str(summary) + "".join(
        f"\n  epoch {epoch}: {report}"
        for epoch, report in summary.negative_discrepancies)

    checker = ConsistencyChecker(deployment.ids, metric="packet_count")
    checker.ingest(network.trace_log)
    audit = checker.audit(snapshots, channel_state=True)
    assert audit.ok, str(audit) + "".join(f"\n  {v}" for v in audit.violations)
