"""Property-based tests of the snapshot protocol's core invariants.

Rather than fuzzing the full simulator (slow under hypothesis), these
tests drive the protocol objects directly with randomized but valid
event sequences and check the invariants the paper's proof sketch rests
on (§4.2).
"""

from hypothesis import given, settings, strategies as st

from repro.core.dataplane import SpeedlightUnit
from repro.core.ideal import IdealUnit
from repro.core.ids import IdSpace
from repro.sim.packet import FlowKey, Packet, SnapshotHeader
from repro.sim.switch import Direction, UnitId

UNIT = UnitId("sw0", 0, Direction.INGRESS)


def _pkt(sid):
    pkt = Packet(flow=FlowKey("a", "b", 1, 2))
    pkt.snapshot = SnapshotHeader(sid=sid)
    return pkt


# A channel script: per-channel, a nondecreasing sequence of carried
# epochs with bounded skips — exactly what FIFO channels from correct
# upstream neighbors can emit.
def _channel_scripts(num_channels=3, max_events=60):
    return st.lists(
        st.tuples(st.integers(min_value=0, max_value=num_channels - 1),
                  st.integers(min_value=0, max_value=2)),
        min_size=1, max_size=max_events)


@settings(max_examples=80, deadline=None)
@given(_channel_scripts())
def test_sid_never_decreases(script):
    """The local snapshot ID is monotone regardless of arrival order."""
    unit = SpeedlightUnit(UNIT, IdSpace(None), lambda: 0, channel_state=True)
    per_channel = {}
    observed = [0]
    for channel, advance in script:
        epoch = per_channel.get(channel, 0) + advance
        per_channel[channel] = epoch
        unit.process_packet(_pkt(epoch), channel, now_ns=len(observed))
        assert unit.sid >= observed[-1]
        observed.append(unit.sid)


@settings(max_examples=80, deadline=None)
@given(_channel_scripts())
def test_last_seen_monotone_and_bounded_by_sid(script):
    """Last Seen entries are monotone per channel and never exceed the
    local ID (a channel cannot have shown us a future epoch without the
    local ID having adopted it)."""
    unit = SpeedlightUnit(UNIT, IdSpace(None), lambda: 0, channel_state=True)
    per_channel = {}
    last_seen_view = {}
    now = 0
    for channel, advance in script:
        epoch = per_channel.get(channel, 0) + advance
        per_channel[channel] = epoch
        now += 1
        unit.process_packet(_pkt(epoch), channel, now)
        seen = unit.read_last_seen(channel)
        assert seen >= last_seen_view.get(channel, 0)
        assert seen <= unit.sid
        last_seen_view[channel] = seen


@settings(max_examples=80, deadline=None)
@given(_channel_scripts())
def test_cut_closure_no_channel_state(script):
    """The fundamental cut property (the paper's proof): the value
    captured for epoch i must count exactly the packets processed while
    the unit's epoch was below i — i.e. no receive of a post-snapshot
    send can land inside the snapshot."""
    counter = {"v": 0}
    unit = SpeedlightUnit(UNIT, IdSpace(None), lambda: counter["v"])
    per_channel = {}
    arrivals = []  # unit epoch after processing each data packet
    now = 0
    for channel, advance in script:
        epoch = per_channel.get(channel, 0) + advance
        per_channel[channel] = epoch
        now += 1
        unit.process_packet(_pkt(epoch), channel, now)
        counter["v"] += 1
        arrivals.append(unit.sid)
    for epoch in range(1, unit.sid + 1):
        slot = unit.read_slot(epoch)
        if not slot.valid:
            continue  # skipped epoch: the CP infers it from above
        expected = sum(1 for a in arrivals[:_first_reach(arrivals, epoch)])
        assert slot.value == expected


def _first_reach(arrivals, epoch):
    """Index of the packet that first brought the unit to >= epoch."""
    for i, a in enumerate(arrivals):
        if a >= epoch:
            return i
    return len(arrivals)


@settings(max_examples=60, deadline=None)
@given(_channel_scripts(num_channels=2))
def test_conservation_with_channel_state_matches_ideal_oracle(script):
    """Differential conservation: for every epoch both protocols hold,
    Speedlight's value+channel total may differ from the ideal oracle's
    only on epochs the marking rule would flag (skips) — on single-step
    sequences they agree exactly (covered elsewhere); here we check the
    weaker global invariant that Speedlight never *over*-counts."""
    counter = {"v": 0}
    speed = SpeedlightUnit(UNIT, IdSpace(None), lambda: counter["v"],
                           channel_state=True)
    ideal = IdealUnit(UNIT, lambda: counter["v"], channel_state=True)
    per_channel = {}
    now = 0
    for channel, advance in script:
        epoch = per_channel.get(channel, 0) + advance
        per_channel[channel] = epoch
        now += 1
        speed.process_packet(_pkt(epoch), channel, now)
        ideal.process_packet(_pkt(epoch), channel, now)
        counter["v"] += 1
    for epoch in range(1, speed.sid + 1):
        sslot = speed.read_slot(epoch)
        islot = ideal.snaps.get(epoch)
        if not sslot.valid or islot is None:
            continue
        speed_total = sslot.value + sslot.channel_state
        ideal_total = islot.value + islot.channel_state
        assert speed_total <= ideal_total


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                max_size=120))
def test_wrapped_unit_tracks_unbounded_twin(advances):
    """A unit on a small wrapped ID space behaves identically to one on
    an unbounded space, as long as the no-lapping window is respected."""
    wrapped = SpeedlightUnit(UNIT, IdSpace(7), lambda: 1)
    unbounded = SpeedlightUnit(UNIT, IdSpace(None), lambda: 1)
    ids = IdSpace(7)
    epoch = 0
    for advance in advances:
        epoch += advance
        wrapped.process_packet(_pkt(ids.wrap(epoch)), 0, epoch)
        unbounded.process_packet(_pkt(epoch), 0, epoch)
        assert wrapped.sid == ids.wrap(unbounded.sid)
        # Simulate the control plane consuming (and clearing) finalized
        # slots promptly, which is what keeps lapping impossible.
        if advance:
            wrapped.clear_slot(ids.wrap(epoch - 1)) if epoch >= 1 else None
