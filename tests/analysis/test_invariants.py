"""Tests for network-wide invariants over consistent snapshots."""

import pytest

from repro.analysis import LinkAudit, LoopDetector
from repro.core import ControlPlaneConfig, DeploymentConfig, SpeedlightDeployment
from repro.core.control_plane import UnitSnapshotRecord
from repro.core.snapshot import GlobalSnapshot
from repro.sim.channel import BernoulliLoss
from repro.sim.engine import MS, S, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction, UnitId
from repro.topology import leaf_spine, ring
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


def _campaign(net, count=4, interval=5 * MS, channel_state=True,
              until=1 * S):
    deployment = SpeedlightDeployment(net, DeploymentConfig(
        metric="packet_count", channel_state=channel_state,
        control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS)))
    deployment.schedule_campaign(count=count, interval_ns=interval)
    net.run(until=until)
    return deployment


class TestLinkAudit:
    def test_lossless_network_all_nonnegative(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=1))
        wl = PoissonWorkload(net, PoissonConfig(
            seed=2, rate_pps=20_000, stop_ns=1 * S, sport_churn=True))
        wl.start()
        deployment = _campaign(net)
        snaps = deployment.observer.completed_snapshots(
            require_consistent=True)
        assert snaps
        audit = LinkAudit(net)
        for snap in snaps:
            reports = audit.audit(snap)
            assert len(reports) == 8  # 4 fabric links x 2 directions
            assert audit.violations(snap) == []

    def test_lossy_network_discrepancy_still_nonnegative(self):
        net = Network(
            leaf_spine(hosts_per_leaf=1),
            NetworkConfig(seed=3,
                          loss_factory=lambda spec, rng:
                          BernoulliLoss(0.01, rng)))
        wl = PoissonWorkload(net, PoissonConfig(
            seed=4, rate_pps=20_000, stop_ns=2 * S, sport_churn=True))
        wl.start()
        deployment = _campaign(net, until=2 * S)
        snaps = deployment.observer.completed_snapshots(
            require_consistent=True)
        assert snaps
        audit = LinkAudit(net)
        for snap in snaps:
            assert audit.violations(snap) == []
            # Losses make some discrepancies strictly positive.
        assert any(r.discrepancy > 0 for r in audit.audit(snaps[-1]))

    def test_inconsistent_snapshot_rejected(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=5))
        audit = LinkAudit(net)
        snap = GlobalSnapshot(epoch=1, requested_wall_ns=0,
                              expected_units={UnitId("leaf0", 1,
                                                     Direction.INGRESS)})
        snap.add_record(UnitSnapshotRecord(
            unit=UnitId("leaf0", 1, Direction.INGRESS), epoch=1, value=1,
            channel_state=0, consistent=False, captured_ns=0, read_ns=0))
        with pytest.raises(ValueError, match="consistent"):
            audit.violations(snap)

    def test_forged_impossible_state_detected(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=6))
        audit = LinkAudit(net)
        sender, receiver = audit._links[0]
        snap = GlobalSnapshot(epoch=1, requested_wall_ns=0,
                              expected_units={sender, receiver})
        snap.add_record(UnitSnapshotRecord(
            unit=sender, epoch=1, value=5, channel_state=0,
            consistent=True, captured_ns=0, read_ns=0))
        snap.add_record(UnitSnapshotRecord(
            unit=receiver, epoch=1, value=9, channel_state=0,
            consistent=True, captured_ns=0, read_ns=0))
        violations = audit.violations(snap)
        assert len(violations) == 1
        assert violations[0].discrepancy == -4


class TestLoopDetector:
    def _looped_ring(self):
        net = Network(ring(num_switches=4, hosts_per_switch=1),
                      NetworkConfig(seed=7))
        for link in net.links:
            if "server" not in link.name:
                link.propagation_ns = 100 * US
        switches = [f"sw{i}" for i in range(4)]
        for i, name in enumerate(switches):
            port = net.port_toward(name, switches[(i + 1) % 4])
            net.switch(name).install_route("phantom", [port])
        return net

    def test_loop_flagged(self):
        net = self._looped_ring()
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count"))
        net.host("server0").send_flow("phantom", 20, sport=1, dport=2,
                                      gap_ns=10 * US)
        epochs = deployment.schedule_campaign(count=4, interval_ns=5 * MS)
        net.run(until=300 * MS)
        snaps = deployment.observer.completed_snapshots(
            require_consistent=True)
        verdicts = LoopDetector(net).scan(snaps)
        assert any(v.loop_suspected for v in verdicts)

    def test_healthy_traffic_not_flagged(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=8))
        wl = PoissonWorkload(net, PoissonConfig(
            seed=9, rate_pps=20_000, stop_ns=1 * S, sport_churn=True))
        wl.start()
        deployment = _campaign(net, channel_state=False)
        snaps = deployment.observer.completed_snapshots(
            require_consistent=True)
        verdicts = LoopDetector(net).scan(snaps)
        assert verdicts
        assert not any(v.loop_suspected for v in verdicts)

    def test_idle_network_not_flagged(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=10))
        deployment = _campaign(net, channel_state=False)
        snaps = deployment.observer.completed_snapshots(
            require_consistent=True)
        verdicts = LoopDetector(net).scan(snaps)
        assert not any(v.loop_suspected for v in verdicts)

    def test_epoch_order_enforced(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=11))
        detector = LoopDetector(net)
        a = GlobalSnapshot(epoch=2, requested_wall_ns=0, expected_units=set())
        b = GlobalSnapshot(epoch=1, requested_wall_ns=0, expected_units=set())
        with pytest.raises(ValueError):
            detector.compare(a, b)
