"""Tests for the causal-consistency checker."""

import pytest

from repro.analysis.consistency import ConsistencyChecker, ConsistencyViolation
from repro.core.control_plane import UnitSnapshotRecord
from repro.core.ids import IdSpace
from repro.core.snapshot import GlobalSnapshot
from repro.sim.switch import Direction, TraceEvent, UnitId

UNIT = UnitId("sw0", 0, Direction.INGRESS)


def _event(carried, after, t=0, is_data=True, size=100):
    return TraceEvent(packet_uid=t, unit=UNIT, time_ns=t,
                      carried_sid=carried, unit_sid_after=after, channel=0,
                      is_data=is_data, size_bytes=size)


def _snapshot(record):
    snap = GlobalSnapshot(epoch=record.epoch, requested_wall_ns=0,
                          expected_units={record.unit})
    snap.add_record(record)
    return snap


def _record(epoch, value, channel=None, consistent=True):
    return UnitSnapshotRecord(unit=UNIT, epoch=epoch, value=value,
                              channel_state=channel, consistent=consistent,
                              captured_ns=0, read_ns=0)


class TestExpectedValues:
    def test_with_channel_state_counts_pre_epoch_sends(self):
        checker = ConsistencyChecker(IdSpace(None))
        checker.ingest([_event(0, 0, 1), _event(0, 0, 2),  # two pre-1 sends
                        _event(1, 1, 3),                   # the marker
                        _event(0, 1, 4)])                  # in-flight pre-1
        assert checker.expected_with_channel_state(UNIT, 1) == 3
        assert checker.expected_with_channel_state(UNIT, 2) == 4

    def test_without_channel_state_counts_pre_capture_arrivals(self):
        checker = ConsistencyChecker(IdSpace(None))
        checker.ingest([_event(0, 0, 1), _event(1, 1, 2), _event(0, 1, 3)])
        # Only the first arrival happened while the unit's epoch was < 1.
        assert checker.expected_without_channel_state(UNIT, 1) == 1

    def test_non_data_events_ignored(self):
        checker = ConsistencyChecker(IdSpace(None))
        checker.ingest([_event(0, 0, 1, is_data=False), _event(1, 1, 2)])
        assert checker.expected_with_channel_state(UNIT, 1) == 0

    def test_byte_count_metric_uses_sizes(self):
        checker = ConsistencyChecker(IdSpace(None), metric="byte_count")
        checker.ingest([_event(0, 0, 1, size=700), _event(1, 1, 2)])
        assert checker.expected_with_channel_state(UNIT, 1) == 700

    def test_gauge_metric_rejected(self):
        with pytest.raises(ValueError):
            ConsistencyChecker(IdSpace(None), metric="queue_depth")

    def test_unknown_unit_expects_zero(self):
        checker = ConsistencyChecker(IdSpace(None))
        assert checker.expected_with_channel_state(UNIT, 5) == 0


class TestChecks:
    def _checker_with_history(self):
        checker = ConsistencyChecker(IdSpace(None))
        checker.ingest([_event(0, 0, 1), _event(0, 0, 2), _event(1, 1, 3)])
        return checker

    def test_correct_snapshot_passes(self):
        checker = self._checker_with_history()
        checker.check_snapshot(_snapshot(_record(1, value=2, channel=0)),
                               channel_state=True)

    def test_wrong_value_raises(self):
        checker = self._checker_with_history()
        with pytest.raises(ConsistencyViolation):
            checker.check_snapshot(_snapshot(_record(1, value=5, channel=0)),
                                   channel_state=True)

    def test_inconsistent_records_exempt(self):
        checker = self._checker_with_history()
        checker.check_snapshot(
            _snapshot(_record(1, value=99, channel=0, consistent=False)),
            channel_state=True)

    def test_no_channel_state_law(self):
        checker = self._checker_with_history()
        checker.check_snapshot(_snapshot(_record(1, value=2)),
                               channel_state=False)
        with pytest.raises(ConsistencyViolation):
            checker.check_snapshot(_snapshot(_record(1, value=3)),
                                   channel_state=False)

    def test_check_all_counts_records(self):
        checker = self._checker_with_history()
        snaps = [_snapshot(_record(1, value=2, channel=0))]
        assert checker.check_all(snaps, channel_state=True) == 1

    def test_marking_precision(self):
        checker = self._checker_with_history()
        snaps = [_snapshot(_record(1, value=2, channel=0, consistent=False)),
                 _snapshot(_record(1, value=9, channel=0, consistent=False))]
        stats = checker.marking_precision(snaps)
        assert stats == {"marked": 2, "actually_wrong": 1}


class TestWrappedIngestion:
    def test_unwraps_monotonically(self):
        ids = IdSpace(7)
        checker = ConsistencyChecker(ids)
        # The unit advances through 10 epochs, wrapping at 8.
        events = []
        for epoch in range(1, 11):
            events.append(_event(ids.wrap(epoch), ids.wrap(epoch), t=epoch))
        checker.ingest(events)
        # All 10 arrivals carried epochs below 11.
        assert checker.expected_with_channel_state(UNIT, 11) == 10
        assert checker.expected_with_channel_state(UNIT, 5) == 4
