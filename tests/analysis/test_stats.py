"""Tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (Cdf, balance_stddevs, significant_fraction,
                                  spearman_matrix)


class TestCdf:
    def test_percentiles(self):
        cdf = Cdf(range(1, 101))
        assert cdf.median == pytest.approx(50.5)
        assert cdf.min == 1
        assert cdf.max == 100
        assert cdf.percentile(90) == pytest.approx(90.1)

    def test_at_fraction(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf.at(2) == 0.5
        assert cdf.at(0) == 0.0
        assert cdf.at(10) == 1.0

    def test_points_end_at_one(self):
        cdf = Cdf(range(1000))
        pts = cdf.points(max_points=50)
        assert pts[-1][1] == 1.0
        assert len(pts) <= 52
        xs = [x for x, _y in pts]
        assert xs == sorted(xs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_summary_row_contains_label(self):
        row = Cdf([1.0, 2.0]).summary_row("my-series", scale=1.0, unit="x")
        assert "my-series" in row and "p50" in row


class TestBalanceStddevs:
    def test_per_switch_per_round(self):
        rounds = [
            {"leaf0": {3: 10.0, 4: 14.0}, "leaf1": {3: 5.0, 4: 5.0}},
            {"leaf0": {3: 8.0, 4: 8.0}},
        ]
        out = balance_stddevs(rounds)
        assert len(out) == 3
        assert out[0] == pytest.approx(2.0)   # std of (10, 14)
        assert out[1] == pytest.approx(0.0)
        assert out[2] == pytest.approx(0.0)

    def test_single_uplink_switch_skipped(self):
        rounds = [{"leaf0": {3: 10.0}}]
        assert balance_stddevs(rounds) == []


class TestSpearman:
    def test_perfect_monotonic_correlation(self):
        series = {"a": [1, 2, 3, 4, 5], "b": [10, 20, 30, 40, 50]}
        result = spearman_matrix(series)
        assert result.coefficient("a", "b") == pytest.approx(1.0)
        assert result.p_of("a", "b") < 0.05

    def test_anticorrelation(self):
        series = {"a": [1, 2, 3, 4, 5], "b": [5, 4, 3, 2, 1]}
        result = spearman_matrix(series)
        assert result.coefficient("a", "b") == pytest.approx(-1.0)

    def test_independent_noise_insignificant(self):
        rng = np.random.default_rng(1)
        series = {"a": rng.normal(size=60), "b": rng.normal(size=60)}
        result = spearman_matrix(series)
        assert result.p_of("a", "b") > 0.01  # almost surely

    def test_constant_series_excluded(self):
        series = {"a": [1, 2, 3, 4], "flat": [7, 7, 7, 7]}
        result = spearman_matrix(series)
        assert np.isnan(result.coefficient("a", "flat"))
        assert result.significant(0.99) == {}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spearman_matrix({"a": [1, 2], "b": [1, 2, 3]})

    def test_needs_two_series(self):
        with pytest.raises(ValueError):
            spearman_matrix({"a": [1, 2, 3]})

    def test_significant_filter(self):
        series = {"a": list(range(30)), "b": list(range(30)),
                  "noise": list(np.random.default_rng(2).normal(size=30))}
        result = spearman_matrix(series)
        sig = result.significant(alpha=0.01)
        assert ("a", "b") in sig

    def test_significant_fraction(self):
        series = {"a": list(range(30)), "b": list(range(30)),
                  "c": list(range(30))}
        result = spearman_matrix(series)
        assert significant_fraction(result, alpha=0.05) == 1.0
