"""Tests for snapshot export and campaign series."""

import json

import pytest

from repro.analysis.report import (CampaignSeries, epoch_from_record,
                                   epoch_record, snapshot_rows,
                                   snapshot_to_json)
from repro.core.control_plane import UnitSnapshotRecord
from repro.core.snapshot import GlobalSnapshot, SnapshotStatus
from repro.sim.switch import Direction, UnitId


def _unit(device="sw0", port=0, direction=Direction.INGRESS):
    return UnitId(device, port, direction)


def _snap(epoch, values, channel=None):
    """values: {unit: value}"""
    snap = GlobalSnapshot(epoch=epoch, requested_wall_ns=0,
                          expected_units=set(values))
    for unit, value in values.items():
        snap.add_record(UnitSnapshotRecord(
            unit=unit, epoch=epoch, value=value, channel_state=channel,
            consistent=True, captured_ns=epoch * 100, read_ns=epoch * 100))
    return snap


class TestRows:
    def test_rows_sorted_and_flat(self):
        units = {_unit(port=1): 10, _unit(port=0): 5,
                 _unit("sw1", 0): 7}
        rows = snapshot_rows(_snap(3, units))
        assert [(r["device"], r["port"]) for r in rows] == [
            ("sw0", 0), ("sw0", 1), ("sw1", 0)]
        assert rows[0]["value"] == 5
        assert rows[0]["epoch"] == 3

    def test_json_round_trips(self):
        snap = _snap(2, {_unit(): 9}, channel=4)
        doc = json.loads(snapshot_to_json(snap))
        assert doc["epoch"] == 2
        assert doc["records"][0]["total"] == 13
        assert doc["consistent"] is True


class TestCampaignSeries:
    def test_series_aligned_across_snapshots(self):
        a, b = _unit(port=0), _unit(port=1)
        snaps = [_snap(1, {a: 1, b: 10}), _snap(2, {a: 2, b: 20}),
                 _snap(3, {a: 3, b: 30})]
        series = CampaignSeries.from_snapshots(snaps)
        assert len(series) == 3
        assert series.series[a] == [1, 2, 3]
        assert series.series[b] == [10, 20, 30]

    def test_units_missing_somewhere_dropped(self):
        a, b = _unit(port=0), _unit(port=1)
        snaps = [_snap(1, {a: 1, b: 10}), _snap(2, {a: 2})]
        series = CampaignSeries.from_snapshots(snaps)
        assert list(series.series) == [a]

    def test_total_values_option(self):
        a = _unit()
        snaps = [_snap(1, {a: 1}, channel=5)]
        assert CampaignSeries.from_snapshots(snaps, use_total=True).series[a] \
            == [6]

    def test_named_filters_direction(self):
        ingress, egress = _unit(port=0), _unit(port=0, direction=Direction.EGRESS)
        snaps = [_snap(1, {ingress: 1, egress: 2})]
        named = CampaignSeries.from_snapshots(snaps).named(Direction.EGRESS)
        assert list(named) == ["sw0:0"]
        assert named["sw0:0"] == [2.0]

    def test_deltas(self):
        a = _unit()
        snaps = [_snap(1, {a: 10}), _snap(2, {a: 25}), _snap(3, {a: 45})]
        deltas = CampaignSeries.from_snapshots(snaps).deltas()
        assert deltas.series[a] == [15, 20]
        assert deltas.epochs == [2, 3]

    def test_deltas_need_two_snapshots(self):
        with pytest.raises(ValueError):
            CampaignSeries.from_snapshots([_snap(1, {_unit(): 1})]).deltas()

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            CampaignSeries.from_snapshots([])
        with pytest.raises(ValueError):
            CampaignSeries.from_snapshots(
                [_snap(1, {_unit(port=0): 1}), _snap(2, {_unit(port=1): 1})])


class TestEpochRecordRoundTrip:
    """The one canonical epoch-record serializer (service satellite).

    ``epoch_record(epoch_from_record(doc)) == doc`` bit-for-bit — the
    delta store, the query API, and batch JSON export all ride on it.
    """

    def _rich_snapshot(self):
        """Exclusions, reasons, missing units, retries, PARTIAL status."""
        present = {_unit(port=0): 5, _unit(port=1): 9,
                   _unit("sw1", 0, Direction.EGRESS): 7}
        missing = {_unit("sw2", 2), _unit("sw2", 2, Direction.EGRESS)}
        snap = GlobalSnapshot(epoch=6, requested_wall_ns=1234,
                              expected_units=set(present) | missing)
        for unit, value in present.items():
            snap.add_record(UnitSnapshotRecord(
                unit=unit, epoch=6, value=value, channel_state=2,
                consistent=(value != 9), captured_ns=600 + value,
                read_ns=700 + value))
        snap.excluded_devices = {"sw2"}
        snap.exclusion_reasons = {"sw2": "silent"}
        snap.status = SnapshotStatus.PARTIAL
        snap.retries = 2
        return snap

    def _canon(self, doc):
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    def test_record_then_rebuild_then_record_is_identity(self):
        doc = epoch_record(self._rich_snapshot())
        assert self._canon(epoch_record(epoch_from_record(doc))) \
            == self._canon(doc)

    def test_rebuild_preserves_semantics(self):
        snap = self._rich_snapshot()
        rebuilt = epoch_from_record(epoch_record(snap))
        assert rebuilt.records == snap.records
        assert rebuilt.expected_units == snap.expected_units
        assert rebuilt.missing_units == snap.missing_units
        assert rebuilt.excluded_devices == snap.excluded_devices
        assert rebuilt.exclusion_reasons == snap.exclusion_reasons
        assert rebuilt.status is snap.status
        assert rebuilt.retries == snap.retries
        assert rebuilt.consistent == snap.consistent
        assert rebuilt.capture_spread_ns == snap.capture_spread_ns

    def test_snapshot_to_json_is_the_same_document(self):
        snap = self._rich_snapshot()
        assert json.loads(snapshot_to_json(snap)) == epoch_record(snap)

    def test_exclusion_reasons_and_rows_deterministically_ordered(self):
        doc = epoch_record(self._rich_snapshot())
        assert list(doc["exclusion_reasons"]) == sorted(
            doc["exclusion_reasons"])
        assert doc["missing_units"] == sorted(doc["missing_units"])
        rows = doc["records"]
        keys = [(r["device"], r["port"], r["direction"]) for r in rows]
        assert keys == sorted(keys)
        assert all("read_ns" in r for r in rows)
