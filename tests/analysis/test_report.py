"""Tests for snapshot export and campaign series."""

import json

import pytest

from repro.analysis.report import CampaignSeries, snapshot_rows, snapshot_to_json
from repro.core.control_plane import UnitSnapshotRecord
from repro.core.snapshot import GlobalSnapshot
from repro.sim.switch import Direction, UnitId


def _unit(device="sw0", port=0, direction=Direction.INGRESS):
    return UnitId(device, port, direction)


def _snap(epoch, values, channel=None):
    """values: {unit: value}"""
    snap = GlobalSnapshot(epoch=epoch, requested_wall_ns=0,
                          expected_units=set(values))
    for unit, value in values.items():
        snap.add_record(UnitSnapshotRecord(
            unit=unit, epoch=epoch, value=value, channel_state=channel,
            consistent=True, captured_ns=epoch * 100, read_ns=epoch * 100))
    return snap


class TestRows:
    def test_rows_sorted_and_flat(self):
        units = {_unit(port=1): 10, _unit(port=0): 5,
                 _unit("sw1", 0): 7}
        rows = snapshot_rows(_snap(3, units))
        assert [(r["device"], r["port"]) for r in rows] == [
            ("sw0", 0), ("sw0", 1), ("sw1", 0)]
        assert rows[0]["value"] == 5
        assert rows[0]["epoch"] == 3

    def test_json_round_trips(self):
        snap = _snap(2, {_unit(): 9}, channel=4)
        doc = json.loads(snapshot_to_json(snap))
        assert doc["epoch"] == 2
        assert doc["records"][0]["total"] == 13
        assert doc["consistent"] is True


class TestCampaignSeries:
    def test_series_aligned_across_snapshots(self):
        a, b = _unit(port=0), _unit(port=1)
        snaps = [_snap(1, {a: 1, b: 10}), _snap(2, {a: 2, b: 20}),
                 _snap(3, {a: 3, b: 30})]
        series = CampaignSeries.from_snapshots(snaps)
        assert len(series) == 3
        assert series.series[a] == [1, 2, 3]
        assert series.series[b] == [10, 20, 30]

    def test_units_missing_somewhere_dropped(self):
        a, b = _unit(port=0), _unit(port=1)
        snaps = [_snap(1, {a: 1, b: 10}), _snap(2, {a: 2})]
        series = CampaignSeries.from_snapshots(snaps)
        assert list(series.series) == [a]

    def test_total_values_option(self):
        a = _unit()
        snaps = [_snap(1, {a: 1}, channel=5)]
        assert CampaignSeries.from_snapshots(snaps, use_total=True).series[a] \
            == [6]

    def test_named_filters_direction(self):
        ingress, egress = _unit(port=0), _unit(port=0, direction=Direction.EGRESS)
        snaps = [_snap(1, {ingress: 1, egress: 2})]
        named = CampaignSeries.from_snapshots(snaps).named(Direction.EGRESS)
        assert list(named) == ["sw0:0"]
        assert named["sw0:0"] == [2.0]

    def test_deltas(self):
        a = _unit()
        snaps = [_snap(1, {a: 10}), _snap(2, {a: 25}), _snap(3, {a: 45})]
        deltas = CampaignSeries.from_snapshots(snaps).deltas()
        assert deltas.series[a] == [15, 20]
        assert deltas.epochs == [2, 3]

    def test_deltas_need_two_snapshots(self):
        with pytest.raises(ValueError):
            CampaignSeries.from_snapshots([_snap(1, {_unit(): 1})]).deltas()

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            CampaignSeries.from_snapshots([])
        with pytest.raises(ValueError):
            CampaignSeries.from_snapshots(
                [_snap(1, {_unit(port=0): 1}), _snap(2, {_unit(port=1): 1})])
