"""The continuous pipeline: intake, backpressure, the ticker
(repro.service.pipeline and repro.service.stream).

Backpressure is the tentpole's explicit policy: the ingest queue is a
hard bound, overflow coalesces (newest-in wins, loss counted) rather
than queueing, and every stored document carries its merge count.
"""

from __future__ import annotations

import pytest

from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.core.snapshot import SnapshotStatus
from repro.service.pipeline import (ContinuousCampaign, PipelineConfig,
                                    SnapshotPipeline)
from repro.service.stream import SnapshotStream
from repro.sim.engine import MS, S, US
from repro.sim.network import Network, NetworkConfig
from repro.topology import single_switch


def _deploy(seed=3):
    network = Network(single_switch(num_hosts=2), NetworkConfig(seed=seed))
    deployment = SpeedlightDeployment(
        network, DeploymentConfig(metric="packet_count"))
    return network, deployment


class TestStreamIntake:
    def test_drains_epochs_incrementally(self):
        network, deployment = _deploy()
        stream = SnapshotStream(deployment.observer)
        seen: list[int] = []
        stream.subscribe(lambda: seen.extend(
            s.epoch for s in stream.drain()))
        first = deployment.take_snapshot()
        network.run(until=50 * MS)
        # Heard mid-run, not collected at the end.
        assert seen == [first]
        second = deployment.take_snapshot()
        network.run(until=100 * MS)
        assert seen == [first, second]
        assert stream.resolved == 2
        assert stream.pending == 0

    def test_statuses_filterable(self):
        network, deployment = _deploy()
        stream = SnapshotStream(deployment.observer,
                                statuses=(SnapshotStatus.COMPLETE,))
        deployment.take_snapshot()
        network.run(until=50 * MS)
        assert [s.status for s in stream.drain()] == [SnapshotStatus.COMPLETE]


class TestBackpressure:
    def _congested_run(self, ticks=30, capacity=2):
        """Ingest server far slower than the snapshot cadence."""
        network, deployment = _deploy()
        pipeline = SnapshotPipeline(
            network.sim, deployment.observer,
            config=PipelineConfig(
                retention=256, keyframe_interval=8,
                queue_capacity=capacity,
                ingest_service_ns=5 * MS,  # cadence is 1 ms: must coalesce
                ingest_per_record_ns=2 * US))
        campaign = ContinuousCampaign(network.sim, deployment.observer,
                                      interval_ns=1 * MS)
        campaign.start(max_ticks=ticks)
        network.run(until=1 * S)
        return network, pipeline, campaign

    def test_overflow_coalesces_and_counts(self):
        network, pipeline, campaign = self._congested_run()
        assert pipeline.coalesced_epochs > 0
        assert pipeline.ingested + pipeline.coalesced_epochs == campaign.ticks
        # Every coalesce is visible on exactly the stored documents.
        merged = [int(d["merged_epochs"]) for d in pipeline.store.scan()]
        assert sum(merged) == pipeline.coalesced_epochs
        assert any(m > 0 for m in merged)

    def test_queue_never_exceeds_capacity(self):
        capacity = 2
        network, deployment = _deploy()
        pipeline = SnapshotPipeline(
            network.sim, deployment.observer,
            config=PipelineConfig(queue_capacity=capacity,
                                  ingest_service_ns=5 * MS))
        campaign = ContinuousCampaign(network.sim, deployment.observer,
                                      interval_ns=1 * MS)
        campaign.start(max_ticks=40)
        highwater = 0

        def probe():
            nonlocal highwater
            highwater = max(highwater, len(pipeline._queue))
            network.sim.schedule(100 * US, probe)

        network.sim.schedule(0, probe)
        network.run(until=200 * MS)
        assert 0 < highwater <= capacity
        assert pipeline.backlog == 0  # drained once the ticker stopped

    def test_newest_epoch_wins_a_coalesce(self):
        network, pipeline, campaign = self._congested_run()
        # Coalescing folds the *older* queued epoch away: stored epochs
        # are strictly increasing and the newest tick always survives.
        epochs = [int(d["epoch"]) for d in pipeline.store.scan()]
        assert epochs == sorted(set(epochs))
        assert epochs[-1] == campaign.ticks

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(queue_capacity=0)


class TestContinuousCampaign:
    def test_ticks_until_stopped(self):
        network, deployment = _deploy()
        pipeline = SnapshotPipeline(network.sim, deployment.observer)
        campaign = ContinuousCampaign(network.sim, deployment.observer,
                                      interval_ns=2 * MS)
        campaign.start()
        network.run(until=21 * MS)
        campaign.stop()
        ticks_at_stop = campaign.ticks
        network.run(until=100 * MS)
        assert campaign.ticks == ticks_at_stop == 11  # t=0 inclusive
        assert pipeline.ingested == ticks_at_stop

    def test_max_ticks_bounds_the_run(self):
        network, deployment = _deploy()
        pipeline = SnapshotPipeline(network.sim, deployment.observer)
        campaign = ContinuousCampaign(network.sim, deployment.observer,
                                      interval_ns=2 * MS)
        campaign.start(max_ticks=5)
        network.run(until=1 * S)
        assert campaign.ticks == 5
        assert pipeline.ingested == 5
        assert pipeline.store.epochs() == [1, 2, 3, 4, 5]

    def test_interval_validated(self):
        network, deployment = _deploy()
        with pytest.raises(ValueError):
            ContinuousCampaign(network.sim, deployment.observer, 0)

    def test_stats_shape(self):
        network, deployment = _deploy()
        pipeline = SnapshotPipeline(network.sim, deployment.observer)
        ContinuousCampaign(network.sim, deployment.observer,
                           interval_ns=2 * MS).start(max_ticks=3)
        network.run(until=1 * S)
        stats = pipeline.stats()
        assert stats["ingested"] == 3
        assert stats["coalesced_epochs"] == 0
        assert stats["backlog"] == 0
        assert stats["store_entries"] == 3
        assert stats["store_encoded_bytes"] > 0
