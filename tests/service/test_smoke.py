"""The service-under-faults smoke scenario (repro.service.smoke).

``make chaos-smoke`` runs the full 120-epoch scenario; here a reduced
run proves the liveness invariants it gates on actually hold, and that
the verdict document is machine-checkable.
"""

from __future__ import annotations

from repro.service.smoke import run_fault_smoke
from repro.sim.engine import MS


class TestFaultSmoke:
    def test_reduced_scenario_passes(self):
        verdict = run_fault_smoke(epochs=60, interval_ns=2 * MS,
                                  crash_after_ticks=30,
                                  crash_duration_ns=60 * MS)
        assert verdict["ok"], verdict["problems"]
        assert verdict["ingested"] >= 30
        assert verdict["crash_touched_epochs"] > 0
        assert verdict["conservation"]["checked"] > 0
        assert "merged_epochs" in verdict["summary"]
