"""The service query API against batch-mode ground truth
(repro.service.query).

Same seed, same simulation: every answer the query engine computes from
the delta store must equal what batch analysis computes directly from
the observer's in-memory snapshots — the store and the one canonical
serializer may not change a single bit of the records.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import ConsistencyChecker, epoch_record
from repro.analysis.invariants import LinkAudit
from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.service.pipeline import ContinuousCampaign, PipelineConfig, \
    SnapshotPipeline
from repro.service.query import QueryEngine
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


def _canon(doc):
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _service_run(metric="packet_count", seed=5, ticks=8, tracing=True):
    network = Network(leaf_spine(hosts_per_leaf=1),
                      NetworkConfig(seed=seed, enable_tracing=tracing))
    deployment = SpeedlightDeployment(network,
                                      DeploymentConfig(metric=metric))
    PoissonWorkload(network, PoissonConfig(
        seed=seed, rate_pps=20_000.0, stop_ns=ticks * 5 * MS,
        sport_churn=True)).start()
    pipeline = SnapshotPipeline(
        network.sim, deployment.observer,
        config=PipelineConfig(retention=64, keyframe_interval=4))
    ContinuousCampaign(network.sim, deployment.observer,
                       interval_ns=5 * MS).start(max_ticks=ticks)
    network.run(until=1 * S)
    return network, deployment, pipeline


class TestStoredDocsMatchBatch:
    def test_every_stored_doc_equals_batch_serialization(self):
        network, deployment, pipeline = _service_run()
        engine = QueryEngine(pipeline.store)
        docs = engine.range()
        assert docs, "service stored nothing"
        for doc in docs:
            batch = epoch_record(deployment.observer.snapshot(doc["epoch"]))
            batch["merged_epochs"] = 0  # uncongested run: nothing merged
            assert _canon(doc) == _canon(batch)

    def test_range_bounds_are_inclusive(self):
        network, deployment, pipeline = _service_run()
        engine = QueryEngine(pipeline.store)
        all_epochs = engine.epochs()
        lo, hi = all_epochs[1], all_epochs[-2]
        window = [d["epoch"] for d in engine.range(lo, hi)]
        assert window == [e for e in all_epochs if lo <= e <= hi]

    def test_snapshot_rebuild_round_trips(self):
        network, deployment, pipeline = _service_run()
        engine = QueryEngine(pipeline.store)
        epoch = engine.epochs()[0]
        rebuilt = engine.snapshot(epoch)
        original = deployment.observer.snapshot(epoch)
        assert rebuilt.records == original.records
        assert rebuilt.status is original.status
        assert engine.snapshot(10_000) is None


class TestConservation:
    def test_matches_batch_checker_on_same_seed(self):
        network, deployment, pipeline = _service_run()
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(network.trace_log)
        engine = QueryEngine(pipeline.store, checker=checker,
                             link_audit=LinkAudit(network))
        result = engine.conservation()
        assert result["checked"] > 0
        assert result["violations"] == {}
        assert result["violating_epochs"] == []
        # Ground truth: the batch path over the very same snapshots.
        for epoch in engine.epochs():
            snapshot = deployment.observer.snapshot(epoch)
            if snapshot.records and snapshot.consistent:
                assert checker.violations_of(snapshot, False) == []

    def test_requires_a_law_to_check(self):
        network, deployment, pipeline = _service_run(tracing=False)
        with pytest.raises(ValueError):
            QueryEngine(pipeline.store).conservation()


class TestHeavyHitters:
    def test_drilldown_matches_batch_ordering(self):
        network, deployment, pipeline = _service_run(metric="heavy_hitter",
                                                     tracing=False)
        engine = QueryEngine(pipeline.store)
        answer = engine.heavy_hitters(top=4)
        assert answer["epoch"] == pipeline.store.max_epoch
        assert answer["units"], "incast produced no heavy units"
        # Batch ground truth: the same epoch's records, value-sorted.
        batch = epoch_record(
            deployment.observer.snapshot(answer["epoch"]))["records"]
        expected = sorted(batch, key=lambda r: (-int(r["value"]),
                                                r["device"], int(r["port"]),
                                                r["direction"]))[:4]
        got = [(u["device"], u["port"], u["direction"], u["value"])
               for u in answer["units"]]
        want = [(r["device"], r["port"], r["direction"], r["value"])
                for r in expected if int(r["value"]) > 0]
        assert got == want

    def test_live_flow_resolver_pins_flows(self):
        network, deployment, pipeline = _service_run(metric="heavy_hitter",
                                                     tracing=False)

        def resolver(device):
            switch = network.switches[device]
            out = []
            for unit in switch.snapshot_units():
                flow, estimate = unit.counters.get("heavy_hitter").top()
                if flow is not None and estimate > 0:
                    out.append((str(unit.unit_id),
                                f"{flow.src}->{flow.dst}:{flow.dport}",
                                estimate))
            return out

        engine = QueryEngine(pipeline.store, flow_resolver=resolver)
        answer = engine.heavy_hitters(top=4)
        assert answer["flows"], "resolver found no live flows"
        estimates = [int(f["estimate"]) for f in answer["flows"]]
        assert estimates == sorted(estimates, reverse=True)
        assert all("->" in str(f["flow"]) for f in answer["flows"])

    def test_empty_store_answers_empty(self):
        network, deployment, pipeline = _service_run(ticks=1)
        engine = QueryEngine(pipeline.store)
        missing = engine.heavy_hitters(epoch=999)
        assert missing == {"epoch": 999, "units": [], "flows": []}


class TestSummary:
    def test_counts_match_the_run(self):
        network, deployment, pipeline = _service_run()
        summary = QueryEngine(pipeline.store).summary()
        assert summary["epochs_stored"] == pipeline.ingested
        assert summary["min_epoch"] == pipeline.store.min_epoch
        assert summary["max_epoch"] == pipeline.store.max_epoch
        assert summary["merged_epochs"] == 0
        assert 0 < summary["usable_epochs"] <= summary["epochs_stored"]
        assert summary["entries"] == pipeline.ingested
