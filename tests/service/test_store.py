"""The delta-encoded bounded epoch store (repro.service.store).

The codec property is the satellite's headline: for *any* epoch-record
sequence — skipped epochs, inconsistent rows, partial statuses, units
appearing and vanishing, service annotations — decoding the stored
chain reproduces every document bit-identically (canonical JSON).
The ring property is the tentpole's: memory never grows with run
length, and the byte accounting is exact, not estimated.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.service.store import (EpochStore, StoreConfig, apply_delta,
                                 canonical_bytes, encode_delta)

#: A small fixed unit universe; presence masks make units come and go.
UNITS = [("sw0", 0, "ingress"), ("sw0", 0, "egress"),
         ("sw0", 1, "ingress"), ("sw1", 0, "ingress"),
         ("sw1", 2, "egress")]


def _canon(doc):
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _doc(epoch, present, values, consistent_flags, status="complete",
         retries=0, merged=None):
    rows = []
    missing = []
    for (device, port, direction), here, value, ok in sorted(
            zip(UNITS, present, values, consistent_flags)):
        if here:
            rows.append({"epoch": epoch, "device": device, "port": port,
                         "direction": direction, "value": value,
                         "channel_state": None, "total": value,
                         "consistent": ok, "captured_ns": epoch * 1000,
                         "read_ns": epoch * 1000 + 7})
        else:
            missing.append(f"{device}:{port}:{direction}")
    silent = sorted({n.split(":")[0] for n in missing})
    doc = {"epoch": epoch, "status": status, "retries": retries,
           "consistent": all(consistent_flags) and not missing,
           "requested_wall_ns": epoch * 1000 - 50,
           "capture_spread_ns": 13,
           "excluded_devices": silent,
           "exclusion_reasons": {d: "silent" for d in silent},
           "missing_units": sorted(missing),
           "records": rows}
    if merged is not None:
        doc["merged_epochs"] = merged
    return doc


_step = st.fixed_dictionaries({
    "gap": st.integers(min_value=1, max_value=4),  # skipped epochs
    "present": st.lists(st.booleans(), min_size=len(UNITS),
                        max_size=len(UNITS)),
    "values": st.lists(st.integers(min_value=0, max_value=2 ** 40),
                       min_size=len(UNITS), max_size=len(UNITS)),
    "consistent": st.lists(st.booleans(), min_size=len(UNITS),
                           max_size=len(UNITS)),
    "status": st.sampled_from(["complete", "partial", "abandoned"]),
    "retries": st.integers(min_value=0, max_value=3),
    "merged": st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
})


def _docs(steps):
    docs = []
    epoch = 0
    for step in steps:
        epoch += step["gap"]
        docs.append(_doc(epoch, step["present"], step["values"],
                         step["consistent"], status=step["status"],
                         retries=step["retries"], merged=step["merged"]))
    return docs


class TestDeltaCodecProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_step, min_size=2, max_size=12))
    def test_encode_apply_round_trips_bit_identically(self, steps):
        docs = _docs(steps)
        for prev, doc in zip(docs, docs[1:]):
            delta = encode_delta(prev, doc)
            assert _canon(apply_delta(prev, delta)) == _canon(doc)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_step, min_size=1, max_size=20),
           st.integers(min_value=1, max_value=7))
    def test_store_scan_reproduces_every_document(self, steps, interval):
        docs = _docs(steps)
        store = EpochStore(retention=len(docs) + 1,
                           keyframe_interval=interval)
        for doc in docs:
            store.append(doc)
        decoded = list(store.scan())
        assert [_canon(d) for d in decoded] == [_canon(d) for d in docs]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_step, min_size=8, max_size=30),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=2, max_value=8))
    def test_eviction_preserves_the_surviving_tail(self, steps, retention,
                                                   interval):
        docs = _docs(steps)
        store = EpochStore(retention=retention, keyframe_interval=interval)
        for doc in docs:
            store.append(doc)
        survivors = docs[-min(retention, len(docs)):]
        assert ([_canon(d) for d in store.scan()]
                == [_canon(d) for d in survivors])


class TestBoundedMemory:
    def test_ring_is_flat_after_retention(self):
        """The bounded-memory satellite: identical per-epoch content at
        ever-higher epochs keeps the exact byte accounting constant."""
        store = EpochStore(retention=16, keyframe_interval=4)
        sizes = []
        for epoch in range(1, 200):
            values = [100 + (epoch % 3)] * len(UNITS)
            store.append(_doc(epoch, [True] * len(UNITS), values,
                              [True] * len(UNITS)))
            if epoch > 32:  # ring full, promotion cadence settled
                sizes.append(store.encoded_bytes)
        assert len(store) == 16
        assert max(sizes) <= min(sizes) * 1.2
        assert store.evicted == store.appended - 16

    def test_byte_accounting_is_exact(self):
        store = EpochStore(retention=8, keyframe_interval=3)
        for epoch in range(1, 40):
            store.append(_doc(epoch, [True] * len(UNITS),
                              [epoch * 10] * len(UNITS),
                              [True] * len(UNITS)))
            assert store.encoded_bytes == sum(
                canonical_bytes(e.payload) for e in store._entries)

    def test_eviction_promotes_orphaned_delta_to_keyframe(self):
        store = EpochStore(retention=4, keyframe_interval=10)
        for epoch in range(1, 8):
            store.append(_doc(epoch, [True] * len(UNITS),
                              [epoch] * len(UNITS), [True] * len(UNITS)))
        # Far from a keyframe boundary, yet the chain must still decode
        # from its first entry: eviction re-keyframed the survivor.
        assert store._entries[0].kind == "key"
        assert store.promoted > 0
        assert [d["epoch"] for d in store.scan()] == [4, 5, 6, 7]


class TestStoreBasics:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            StoreConfig(retention=0)
        with pytest.raises(ValueError):
            StoreConfig(keyframe_interval=0)
        with pytest.raises(ValueError):
            EpochStore(StoreConfig(), retention=4)

    def test_get_and_bounds(self):
        store = EpochStore(retention=8, keyframe_interval=2)
        assert store.min_epoch is None and store.max_epoch is None
        for epoch in (2, 5, 9):
            store.append(_doc(epoch, [True] * len(UNITS),
                              [epoch] * len(UNITS), [True] * len(UNITS)))
        assert (store.min_epoch, store.max_epoch) == (2, 9)
        assert store.epochs() == [2, 5, 9]
        assert store.get(5)["epoch"] == 5
        assert store.get(4) is None

    def test_scan_yields_copies(self):
        store = EpochStore(retention=8, keyframe_interval=2)
        for epoch in (1, 2, 3):
            store.append(_doc(epoch, [True] * len(UNITS),
                              [epoch] * len(UNITS), [True] * len(UNITS)))
        for doc in store.scan():
            doc["records"].clear()  # caller vandalism...
            doc["status"] = "mutated"
        # ...must not corrupt the stored chain.
        assert [d["epoch"] for d in store.scan()] == [1, 2, 3]
        assert all(d["records"] for d in store.scan())
