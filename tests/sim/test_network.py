"""Tests for network assembly from topologies."""

import pytest

from repro.lb import FlowletBalancer
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import fat_tree, leaf_spine
from repro.topology.graph import NodeKind


class TestAssembly:
    def test_device_counts(self, leaf_spine_net):
        assert len(leaf_spine_net.switches) == 4
        assert len(leaf_spine_net.hosts) == 6
        assert len(leaf_spine_net.links) == 2 * 2 + 6

    def test_port_numbering_is_sorted_neighbor_order(self, leaf_spine_net):
        # leaf0 neighbors: server0, server1, server2, spine0, spine1.
        assert leaf_spine_net.port_map["leaf0"] == {
            "server0": 0, "server1": 1, "server2": 2,
            "spine0": 3, "spine1": 4}

    def test_switch_port_count_matches_degree(self, leaf_spine_net):
        assert len(leaf_spine_net.switch("leaf0").ports) == 5
        assert len(leaf_spine_net.switch("spine0").ports) == 2

    def test_uplink_ports(self, leaf_spine_net):
        assert leaf_spine_net.uplink_ports("leaf0") == [3, 4]
        assert leaf_spine_net.uplink_ports("spine0") == [0, 1]

    def test_peer_of_port(self, leaf_spine_net):
        name, kind = leaf_spine_net.peer_of_port("leaf0", 0)
        assert name == "server0"
        assert kind is NodeKind.HOST
        name, kind = leaf_spine_net.peer_of_port("leaf0", 3)
        assert name == "spine0"
        assert kind is NodeKind.SWITCH
        with pytest.raises(KeyError):
            leaf_spine_net.peer_of_port("leaf0", 99)

    def test_custom_lb_factory(self):
        net = Network(leaf_spine(),
                      NetworkConfig(seed=1, lb_factory=lambda s: FlowletBalancer()))
        assert isinstance(net.switch("leaf0").lb, FlowletBalancer)

    def test_deterministic_given_seed(self):
        a = Network(leaf_spine(), NetworkConfig(seed=9))
        b = Network(leaf_spine(), NetworkConfig(seed=9))
        assert {n: c.drift_ppb for n, c in a.ptp.clocks.items()} == \
               {n: c.drift_ppb for n, c in b.ptp.clocks.items()}


class TestRouting:
    def test_ecmp_group_installed_for_remote_hosts(self, leaf_spine_net):
        leaf0 = leaf_spine_net.switch("leaf0")
        # server3 is on leaf1: both spines are candidates.
        assert sorted(leaf0.routes["server3"]) == [3, 4]
        # server0 is local: single port.
        assert leaf0.routes["server0"] == [0]

    def test_cross_leaf_traffic_uses_both_spines(self, leaf_spine_net):
        net = leaf_spine_net
        for sport in range(40):
            net.host("server0").send_flow("server3", 1, sport=sport,
                                          dport=80)
        net.run(until=2 * MS)
        spine_pkts = [net.switch(s).ports[0].ingress.packets_processed +
                      net.switch(s).ports[1].ingress.packets_processed
                      for s in ("spine0", "spine1")]
        assert all(p > 0 for p in spine_pkts)
        assert sum(spine_pkts) == 40

    def test_all_pairs_reachable(self, leaf_spine_net):
        net = leaf_spine_net
        hosts = sorted(net.hosts)
        flows = []
        for i, src in enumerate(hosts):
            for dst in hosts:
                if src != dst:
                    flows.append((dst, net.host(src).send_flow(
                        dst, 1, sport=5000 + i, dport=80)))
        net.run(until=5 * MS)
        for dst, flow in flows:
            assert net.host(dst).received[flow].packets == 1

    def test_fat_tree_reachability(self):
        net = Network(fat_tree(k=4), NetworkConfig(seed=2))
        flow = net.host("server0").send_flow("server15", 2, sport=1, dport=2)
        net.run(until=5 * MS)
        assert net.host("server15").received[flow].packets == 2


class TestFeasibleChannels:
    def test_leaf_valley_channels_excluded(self, leaf_spine_net):
        feasible = leaf_spine_net.feasible_channels("leaf0")
        # spine-to-spine (valley) forwarding never happens.
        assert (3, 4) not in feasible
        assert (4, 3) not in feasible
        # host -> spine and spine -> host do.
        assert (0, 3) in feasible
        assert (3, 0) in feasible

    def test_hairpin_excluded(self, leaf_spine_net):
        for (p_in, p_out) in leaf_spine_net.feasible_channels("leaf0"):
            assert p_in != p_out

    def test_spine_channels(self, leaf_spine_net):
        feasible = leaf_spine_net.feasible_channels("spine0")
        assert feasible == {(0, 1), (1, 0)}


class TestHeaderStripping:
    def test_all_strip_when_nothing_enabled(self, leaf_spine_net):
        leaf_spine_net.refresh_header_stripping()
        for sw in leaf_spine_net.switches.values():
            for port in sw.ports:
                assert port.egress.strip_header_for_peer

    def test_strip_only_at_boundary_when_enabled(self, leaf_spine_net):
        class Dummy:
            sid = 0

            def process_packet(self, packet, channel_id, now_ns):
                return 0

        for name in ("leaf0", "spine0"):
            for port in leaf_spine_net.switch(name).ports:
                port.ingress.snapshot_agent = Dummy()
                port.egress.snapshot_agent = Dummy()
        leaf_spine_net.refresh_header_stripping()
        leaf0 = leaf_spine_net.switch("leaf0")
        to_spine0 = leaf_spine_net.port_toward("leaf0", "spine0")
        to_spine1 = leaf_spine_net.port_toward("leaf0", "spine1")
        host_port = leaf_spine_net.port_toward("leaf0", "server0")
        assert not leaf0.ports[to_spine0].egress.strip_header_for_peer
        assert leaf0.ports[to_spine1].egress.strip_header_for_peer  # disabled peer
        assert leaf0.ports[host_port].egress.strip_header_for_peer  # host
