"""Tests for bounded egress buffers (tail drop)."""

import pytest

from repro.analysis import ConsistencyChecker
from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.sim.engine import MS, Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import FlowKey, Packet
from repro.sim.switch import SwitchConfig, _EgressQueue
from repro.topology import single_switch


def _pkt(seq=0):
    return Packet(flow=FlowKey("a", "b", 1, 2), size_bytes=1000, seq=seq)


class TestQueueCapacity:
    def test_tail_drop_beyond_capacity(self):
        sim = Simulator()
        sent = []
        queue = _EgressQueue(sim, transmit=sent.append,
                             ser_fn=lambda p: 1000, capacity_packets=3)
        results = [queue.push(_pkt(i)) for i in range(6)]
        # One in service + two queued fit; the rest tail-drop.
        assert results == [True, True, True, False, False, False]
        assert queue.packets_dropped == 3
        sim.run()
        assert len(sent) == 3

    def test_capacity_frees_as_queue_drains(self):
        sim = Simulator()
        sent = []
        queue = _EgressQueue(sim, transmit=sent.append,
                             ser_fn=lambda p: 1000, capacity_packets=2)
        queue.push(_pkt(0))
        queue.push(_pkt(1))
        assert not queue.push(_pkt(2))
        sim.run()
        assert queue.push(_pkt(3))
        sim.run()
        assert [p.seq for p in sent] == [0, 1, 3]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            _EgressQueue(Simulator(), capacity_packets=0)

    def test_unbounded_by_default(self):
        sim = Simulator()
        queue = _EgressQueue(sim, transmit=lambda p: None,
                             ser_fn=lambda p: 10**9)
        for i in range(10_000):
            assert queue.push(_pkt(i))
        assert queue.packets_dropped == 0


class TestNetworkWithBoundedBuffers:
    def test_oversubscription_drops_and_bounds_depth(self):
        cfg = NetworkConfig(seed=1, switch_config=SwitchConfig(
            queue_capacity_packets=64))
        net = Network(single_switch(num_hosts=3), cfg)
        # 2:1 fan-in at line rate: the victim buffer must cap at 64.
        net.host("server0").send_flow("server2", 2000, sport=1, dport=2)
        net.host("server1").send_flow("server2", 2000, sport=3, dport=4)
        net.run(until=10 * MS)
        out_port = net.port_toward("sw0", "server2")
        egress = net.switch("sw0").ports[out_port].egress
        assert egress.queue.max_depth_packets <= 64
        assert egress.queue.packets_dropped > 0
        received = net.host("server2").packets_received
        assert received == 4000 - egress.queue.packets_dropped

    def test_snapshots_consistent_under_tail_drops(self):
        """Tail drops are just another form of packet loss; the
        conservation law is receiver-side and must hold exactly."""
        cfg = NetworkConfig(seed=2, enable_tracing=True,
                            switch_config=SwitchConfig(
                                queue_capacity_packets=32))
        net = Network(single_switch(num_hosts=3), cfg)
        net.host("server0").send_flow("server2", 3000, sport=1, dport=2)
        net.host("server1").send_flow("server2", 3000, sport=3, dport=4)
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True))
        epochs = deployment.schedule_campaign(count=4, interval_ns=2 * MS)
        net.run(until=500 * MS)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == 4
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)
