"""Tests for end hosts."""

import pytest

from repro.sim.engine import MS, Simulator, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import FlowKey, Packet, SnapshotHeader
from repro.topology import single_switch


def _net():
    return Network(single_switch(num_hosts=2), NetworkConfig(seed=5))


class TestSending:
    def test_send_flow_delivers_all_packets(self):
        net = _net()
        flow = net.host("server0").send_flow("server1", 20, sport=1, dport=2)
        net.run(until=2 * MS)
        record = net.host("server1").received[flow]
        assert record.packets == 20
        assert record.bytes == 20 * 1500

    def test_send_flow_respects_gap(self):
        net = _net()
        flow = net.host("server0").send_flow("server1", 5, sport=1, dport=2,
                                             gap_ns=100 * US)
        net.run(until=2 * MS)
        record = net.host("server1").received[flow]
        span = record.last_arrival_ns - record.first_arrival_ns
        assert span >= 4 * 100 * US

    def test_send_flow_start_delay(self):
        net = _net()
        net.host("server0").send_flow("server1", 1, sport=1, dport=2,
                                      start_delay_ns=1 * MS)
        net.run(until=500 * US)
        assert net.host("server1").packets_received == 0
        net.run(until=3 * MS)
        assert net.host("server1").packets_received == 1

    def test_unconnected_host_cannot_send(self):
        sim = Simulator()
        from repro.sim.host import Host
        host = Host(sim, "lonely")
        with pytest.raises(RuntimeError):
            host.send_packet(Packet(flow=FlowKey("lonely", "x", 1, 2)))

    def test_nic_paces_at_line_rate(self):
        net = _net()
        # 100 x 1500B at 25 Gbps = 48 us of serialization minimum.
        net.host("server0").send_flow("server1", 100, sport=1, dport=2)
        net.run(until=10 * US)
        assert net.host("server1").packets_received < 100
        net.run(until=5 * MS)
        assert net.host("server1").packets_received == 100


class TestReceiving:
    def test_on_receive_callback(self):
        net = _net()
        got = []
        net.host("server1").on_receive = got.append
        net.host("server0").send_flow("server1", 3, sport=1, dport=2)
        net.run(until=1 * MS)
        assert len(got) == 3

    def test_stray_snapshot_header_stripped_defensively(self):
        net = _net()
        host = net.host("server1")
        pkt = Packet(flow=FlowKey("server0", "server1", 1, 2))
        pkt.snapshot = SnapshotHeader(sid=3)
        host.receive_from_link(pkt, host.link)
        assert pkt.snapshot is None
        assert host.packets_received == 1

    def test_flow_throughput(self):
        net = _net()
        flow = net.host("server0").send_flow("server1", 50, sport=1, dport=2,
                                             gap_ns=1 * US)
        net.run(until=5 * MS)
        bps = net.host("server1").flow_throughput_bps(flow)
        assert bps > 0
        # 1500B per ~1us is ~12 Gbps; allow broad bounds.
        assert 1e9 < bps < 25e9

    def test_throughput_of_unknown_flow_is_zero(self):
        net = _net()
        ghost = FlowKey("server0", "server1", 9, 9)
        assert net.host("server1").flow_throughput_bps(ghost) == 0.0
