"""The sharded space-parallel core: partitioning, conservative rounds,
deterministic merges (docs/SHARDING.md).

The two load-bearing guarantees:

* **Worker-order independence** — the composed execution is a pure
  function of (topology, config, shard count); the hypothesis test
  permutes the order workers are stepped in and asserts the per-shard
  event streams do not move by a single event.
* **Single-shard identity** — ``shards=1`` runs the plain
  single-process path, reproducing the integration suite's golden
  event trace bit for bit through the sharded entry point.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (DeploymentConfig, ShardedSpeedlightDeployment,
                        SpeedlightDeployment)
from repro.sim.engine import MS
from repro.sim.network import NetworkConfig, cut_links, partition_topology
from repro.sim.shard import (InProcessShardRunner, ProcessShardRunner,
                             ShardPlan, run_sharded)
from repro.topology import fat_tree, leaf_spine, linear
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload
from tests.integration.test_golden_trace import (GOLDEN_EVENTS,
                                                 GOLDEN_SHA256,
                                                 GOLDEN_TOTALS)

TOPO_KW = dict(num_leaves=3, num_spines=2, hosts_per_leaf=1)
SETUP_ARGS = (20_000.0, 4 * MS, 2, 2 * MS)
UNTIL = 12 * MS


def _traffic_setup(worker, rate_pps, stop_ns, snapshots, interval_ns):
    """Cross-shard traffic plus a short campaign; module-level so the
    process runner can pickle it.  Finish value: per-shard event count,
    plus snapshot health on the observer shard."""
    topo = worker.network.topology
    local = [h for h in topo.hosts
             if worker.plan.assignment[h] == worker.shard_id]
    pairs = [(src, dst) for src in local
             for dst in topo.hosts if dst != src]
    PoissonWorkload(worker.network, PoissonConfig(
        seed=worker.shard_id + 1, rate_pps=rate_pps, stop_ns=stop_ns,
        pairs=pairs, sport_churn=True)).start()
    deployment = ShardedSpeedlightDeployment(worker, DeploymentConfig(
        metric="packet_count"))
    epochs = (deployment.schedule_campaign(snapshots, interval_ns)
              if deployment.is_observer_shard else [])

    def finish():
        out = {"events": worker.sim.events_run}
        if deployment.is_observer_shard:
            snaps = [deployment.observer.snapshot(e) for e in epochs]
            out["complete"] = sum(1 for s in snaps if s.complete)
            out["totals"] = [s.total_value() for s in snaps]
        return out

    return finish


def _attach_traces(runner):
    """One (time, seq, qualname) digest per shard."""
    digests = []
    for worker in runner.workers:
        digest = hashlib.sha256()

        def trace(time, seq, fn, _d=digest):
            name = getattr(fn, "__qualname__", None) or repr(fn)
            _d.update(f"{time}:{seq}:{name}\n".encode())

        worker.sim.trace = trace
        digests.append(digest)
    return digests


def _run_ordered(order):
    runner = InProcessShardRunner(
        leaf_spine(**TOPO_KW), NetworkConfig(seed=11), shards=len(order),
        setup=_traffic_setup, setup_args=SETUP_ARGS, order=list(order))
    digests = _attach_traces(runner)
    results = runner.run(until=UNTIL)
    return ([d.hexdigest() for d in digests], results, runner.rounds)


#: Baseline (identity order) execution, computed once per session.
_BASELINE = {}


def _baseline(shards):
    if shards not in _BASELINE:
        _BASELINE[shards] = _run_ordered(list(range(shards)))
    return _BASELINE[shards]


class TestPartitioner:
    def test_deterministic_and_covering(self):
        topo = fat_tree(k=4)
        first = partition_topology(topo, 4)
        second = partition_topology(topo, 4)
        assert first == second
        assert set(first) == set(topo.switches) | set(topo.hosts)

    def test_hosts_follow_their_switch_so_only_fabric_links_cut(self):
        topo = leaf_spine(**TOPO_KW)
        assignment = partition_topology(topo, 3)
        for spec in cut_links(topo, assignment):
            assert spec.a in topo.switches and spec.b in topo.switches

    def test_switch_counts_are_balanced(self):
        topo = fat_tree(k=4)  # 20 switches
        assignment = partition_topology(topo, 4)
        sizes = [sum(1 for s in topo.switches if assignment[s] == shard)
                 for shard in range(4)]
        assert sizes == [5, 5, 5, 5]

    def test_more_shards_than_switches_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            partition_topology(linear(num_switches=2), 3)

    def test_plan_lookahead_is_min_cut_propagation(self):
        topo = leaf_spine(fabric_prop_ns=700, **TOPO_KW)
        plan = ShardPlan.for_topology(topo, 2)
        assert plan.cut
        assert plan.lookahead_ns == 700
        assert plan.lookahead_ns == min(s.propagation_ns for s in plan.cut)

    def test_single_shard_plan_has_no_cut(self):
        plan = ShardPlan.for_topology(leaf_spine(**TOPO_KW), 1)
        assert plan.cut == ()
        assert plan.lookahead_ns == 0


class TestMergeDeterminism:
    def test_baseline_is_nonvacuous(self):
        digests, results, rounds = _baseline(3)
        assert rounds > 0  # the coordinator actually ran windowed rounds
        assert sum(r["events"] for r in results) > 0
        # Cross-shard record shipping worked: the observer shard
        # assembled every epoch from remote shards' records.
        assert results[0]["complete"] == 2

    @settings(max_examples=5, deadline=None)
    @given(st.permutations(list(range(3))))
    def test_worker_order_does_not_change_the_execution(self, order):
        digests, results, rounds = _run_ordered(order)
        base_digests, base_results, base_rounds = _baseline(3)
        assert digests == base_digests
        assert results == base_results
        assert rounds == base_rounds


class TestProcessRunner:
    def test_process_runner_matches_in_process(self):
        topo = leaf_spine(**TOPO_KW)
        _, expected, _ = _baseline(3)
        got = run_sharded(topo, NetworkConfig(seed=11), shards=3,
                          until=UNTIL, setup=_traffic_setup,
                          setup_args=SETUP_ARGS, process=True)
        assert got == expected

    def test_close_is_idempotent(self):
        runner = ProcessShardRunner(
            leaf_spine(**TOPO_KW), NetworkConfig(seed=11), shards=2,
            setup=_traffic_setup, setup_args=SETUP_ARGS)
        runner.run(until=2 * MS)  # run() closes on the way out
        runner.close()


class TestSingleShardIdentity:
    def test_golden_trace_through_the_sharded_entry_point(self):
        results = run_sharded(
            linear(num_switches=2, hosts_per_switch=2),
            NetworkConfig(seed=7), shards=1, until=60 * MS,
            setup=_golden_setup)
        events, digest, totals = results[0]
        assert events == GOLDEN_EVENTS
        assert digest == GOLDEN_SHA256
        assert totals == GOLDEN_TOTALS


def _golden_setup(worker):
    """The integration suite's pinned scenario, installed through the
    shard worker (module-level for picklability symmetry)."""
    network = worker.network
    PoissonWorkload(network, PoissonConfig(rate_pps=10_000,
                                           stop_ns=40 * MS,
                                           sport_churn=True)).start()
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", channel_state=True))
    deployment.schedule_campaign(count=3, interval_ns=10 * MS)
    digest = hashlib.sha256()

    def trace(time, seq, fn):
        name = getattr(fn, "__qualname__", None) or repr(fn)
        digest.update(f"{time}:{seq}:{name}\n".encode())

    network.sim.trace = trace
    return lambda: (network.sim.events_run, digest.hexdigest(),
                    [deployment.observer.snapshot(e).total_value()
                     for e in (1, 2, 3)])
