"""Tests for packets and snapshot headers."""

from repro.sim.packet import (FlowKey, Packet, PacketType, SnapshotHeader,
                              make_initiation_packet)


class TestFlowKey:
    def test_reversed_swaps_endpoints_and_ports(self):
        flow = FlowKey("a", "b", 100, 200, 17)
        rev = flow.reversed()
        assert rev == FlowKey("b", "a", 200, 100, 17)

    def test_hashable_and_equal(self):
        assert FlowKey("a", "b", 1, 2) == FlowKey("a", "b", 1, 2)
        assert len({FlowKey("a", "b", 1, 2), FlowKey("a", "b", 1, 2)}) == 1


class TestSnapshotHeader:
    def test_defaults(self):
        header = SnapshotHeader()
        assert header.sid == 0
        assert header.packet_type is PacketType.DATA
        assert header.channel_id is None

    def test_copy_is_independent(self):
        header = SnapshotHeader(sid=3)
        copy = header.copy()
        copy.sid = 9
        assert header.sid == 3


class TestPacket:
    def _packet(self) -> Packet:
        return Packet(flow=FlowKey("h1", "h2", 1000, 80))

    def test_src_dst_come_from_flow(self):
        pkt = self._packet()
        assert pkt.src == "h1"
        assert pkt.dst == "h2"

    def test_uids_are_unique(self):
        assert self._packet().uid != self._packet().uid

    def test_push_pop_snapshot_header(self):
        pkt = self._packet()
        assert pkt.snapshot is None
        header = pkt.push_snapshot_header(sid=5)
        assert pkt.snapshot is header
        assert header.sid == 5
        popped = pkt.pop_snapshot_header()
        assert popped is header
        assert pkt.snapshot is None

    def test_pop_without_header_returns_none(self):
        assert self._packet().pop_snapshot_header() is None


class TestInitiationPacket:
    def test_carries_sid_and_type(self):
        pkt = make_initiation_packet(sid=7, created_ns=123)
        assert pkt.snapshot is not None
        assert pkt.snapshot.sid == 7
        assert pkt.snapshot.packet_type is PacketType.INITIATION
        assert pkt.created_ns == 123

    def test_is_small(self):
        assert make_initiation_packet(1).size_bytes <= 128
