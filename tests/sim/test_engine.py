"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import MS, NS, S, Simulator, US


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_in_scheduling_order(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule(100, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_schedule_from_within_callback(self, sim):
        order = []

        def first():
            order.append(("first", sim.now))
            sim.schedule(5, second)

        def second():
            order.append(("second", sim.now))

        sim.schedule(10, first)
        sim.run()
        assert order == [("first", 10), ("second", 15)]

    def test_zero_delay_runs_after_current_event(self, sim):
        order = []

        def outer():
            sim.schedule(0, order.append, "inner")
            order.append("outer")

        sim.schedule(1, outer)
        sim.run()
        assert order == ["outer", "inner"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_integral_float_delay_rounds_exactly(self, sim):
        # 2.0 is an exact nanosecond count: accepted, never truncated.
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now))  # statics: allow[SIM001] exercises exact_ns integral-float acceptance
        sim.run()
        assert seen == [2]

    def test_fractional_delay_rejected(self, sim):
        # Silent truncation (int(2.7) == 2) used to reorder events; a
        # fractional nanosecond is now a hard error.
        with pytest.raises(ValueError, match="integral nanosecond"):
            sim.schedule(2.7, lambda: None)  # statics: allow[SIM001] exercises exact_ns fractional rejection

    def test_fractional_schedule_at_rejected(self, sim):
        with pytest.raises(ValueError, match="integral nanosecond"):
            sim.schedule_at(10.5, lambda: None)  # statics: allow[SIM001] exercises exact_ns fractional rejection

    def test_integral_float_schedule_at_exact(self, sim):
        seen = []
        sim.schedule_at(1e9, lambda: seen.append(sim.now))  # statics: allow[SIM001] exercises exact_ns integral-float acceptance
        sim.run()
        assert seen == [1_000_000_000]

    def test_huge_integral_float_roundtrips_exactly(self, sim):
        # 2**53 is representable; 2**53 + 1 is not (would silently land
        # on a neighbouring nanosecond under truncation).
        seen = []
        sim.schedule_at(float(2 ** 53), lambda: seen.append(sim.now))  # statics: allow[SIM001] exercises exact_ns float-precision boundary
        sim.run()
        assert seen == [2 ** 53]

    def test_non_numeric_delay_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.schedule("10", lambda: None)

    def test_schedule_at_in_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_args_passed_through(self, sim):
        seen = []
        sim.schedule(1, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self, sim):
        keep = sim.schedule(10, lambda: None)
        drop = sim.schedule(20, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0


class TestRunLimits:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(10, fired.append, "early")
        sim.schedule(100, fired.append, "late")
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50  # clock advances to the bound
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_inclusive(self, sim):
        fired = []
        sim.schedule(50, fired.append, "on-time")
        sim.run(until=50)
        assert fired == ["on-time"]

    def test_max_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(i + 1, fired.append, i)
        assert sim.run(max_events=3) == 3
        assert fired == [0, 1, 2]

    def test_step(self, sim):
        fired = []
        sim.schedule(1, fired.append, "a")
        sim.schedule(2, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_run_not_reentrant(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1, reenter)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_events_run_counter(self, sim):
        for i in range(4):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_run == 4

    def test_peek_time_skips_cancelled(self, sim):
        first = sim.schedule(5, lambda: None)
        sim.schedule(9, lambda: None)
        first.cancel()
        assert sim.peek_time() == 9


class TestCancellationBookkeeping:
    """The cancellation side table and its compaction bounds."""

    def test_pending_count_and_cancelled_count(self, sim):
        handles = [sim.schedule(i + 1, lambda: None) for i in range(10)]
        assert sim.pending == sim.pending_count == 10
        assert sim.cancelled_count == 0
        handles[0].cancel()
        handles[5].cancel()
        assert sim.pending == sim.pending_count == 8
        assert sim.cancelled_count == 2

    def test_cancel_after_fire_does_not_pollute_side_table(self, sim):
        first = sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run(until=1)
        first.cancel()  # already fired: must be an exact no-op
        assert sim.cancelled_count == 0
        assert sim.pending == 1

    def test_cancel_churn_does_not_leak(self, sim):
        """Schedule-then-cancel churn must not grow the heap without
        bound: compaction keeps cancelled entries at under half the
        heap (above the small-heap threshold)."""
        from repro.sim.engine import _COMPACT_MIN_CANCELLED

        live = [sim.schedule(10 * S + i, lambda: None) for i in range(8)]
        for i in range(10_000):
            sim.schedule(1_000 + i % 97, lambda: None).cancel()
            assert (sim.cancelled_count < _COMPACT_MIN_CANCELLED
                    or 2 * sim.cancelled_count < len(sim._heap))
        assert sim.compactions > 0
        # Bound: live entries + the compaction trigger's slack.
        assert len(sim._heap) <= 2 * max(len(live),
                                         _COMPACT_MIN_CANCELLED) + 1
        assert sim.pending == len(live)
        assert sim.run() == len(live)

    def test_compaction_from_within_callback_is_safe(self, sim):
        """A compaction triggered while ``run`` iterates must not orphan
        the loop's heap reference (compaction mutates in place)."""
        from repro.sim.engine import _COMPACT_MIN_CANCELLED

        fired = []

        def churn() -> None:
            for _ in range(2 * _COMPACT_MIN_CANCELLED):
                sim.schedule(100, lambda: None).cancel()

        sim.schedule(1, churn)
        sim.schedule(200, fired.append, "late")
        sim.run()
        assert fired == ["late"]
        assert sim.compactions > 0

    def test_schedule_fast_shares_seq_counter(self, sim):
        """Fast-path and validated scheduling interleave with FIFO
        tie-breaking preserved (one seq per call, in call order)."""
        order = []
        sim.schedule(5, order.append, "a")
        sim.schedule_fast(5, order.append, "b")
        sim.schedule(5, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_trace_hook_sees_every_event(self, sim):
        seen = []
        sim.trace = lambda time, seq, fn: seen.append((time, seq))
        sim.schedule(3, lambda: None)
        sim.schedule_fast(1, lambda: None)
        skipped = sim.schedule(2, lambda: None)
        skipped.cancel()
        sim.run()
        assert seen == [(1, 1), (3, 0)]


class TestTimeConstants:
    def test_unit_relationships(self):
        assert US == 1_000 * NS
        assert MS == 1_000 * US
        assert S == 1_000 * MS


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=50))
def test_property_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)
