"""Tests for the switch model: forwarding, queues, snapshot plumbing."""

import pytest

from repro.counters import PacketCounter
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import (FlowKey, Packet, PacketType, SnapshotHeader,
                              make_initiation_packet)
from repro.sim.switch import (BROADCAST_DST, CPU_CHANNEL, Direction,
                              EXTERNAL_CHANNEL, UnitId)
from repro.topology import linear, single_switch


class RecordingAgent:
    """Minimal SnapshotAgent capturing calls."""

    def __init__(self, sid=0):
        self._sid = sid
        self.calls = []

    @property
    def sid(self):
        return self._sid

    def process_packet(self, packet, channel_id, now_ns):
        self.calls.append((packet.snapshot.sid, channel_id, now_ns,
                           packet.snapshot.packet_type))
        return self._sid


def _single_net(hosts=3):
    return Network(single_switch(num_hosts=hosts), NetworkConfig(seed=3))


def _send(net, src, dst, n=1, size=1000):
    return net.host(src).send_flow(dst, n, sport=1234, dport=80,
                                   size_bytes=size)


class TestForwarding:
    def test_host_to_host_through_switch(self):
        net = _single_net()
        flow = _send(net, "server0", "server1", n=5)
        net.run(until=1 * MS)
        assert net.host("server1").received[flow].packets == 5

    def test_unroutable_counted(self):
        net = _single_net()
        sw = net.switch("sw0")
        pkt = Packet(flow=FlowKey("server0", "nowhere", 1, 2))
        sw.ports[0].ingress.handle_packet(pkt)
        net.run(until=1 * MS)
        assert sw.packets_unroutable == 1

    def test_install_route_validates_ports(self):
        net = _single_net()
        with pytest.raises(ValueError):
            net.switch("sw0").install_route("x", [99])
        with pytest.raises(ValueError):
            net.switch("sw0").install_route("x", [])

    def test_multi_hop_forwarding(self):
        net = Network(linear(num_switches=3, hosts_per_switch=1),
                      NetworkConfig(seed=3))
        flow = _send(net, "server0", "server2", n=3)
        net.run(until=1 * MS)
        assert net.host("server2").received[flow].packets == 3


class TestQueueing:
    def test_egress_queue_drains_at_link_rate(self):
        net = _single_net()
        # 25 Gbps host link: 1500B = 480ns serialization.
        _send(net, "server0", "server1", n=100, size=1500)
        net.run(until=5 * MS)
        assert net.host("server1").packets_received == 100

    def test_queue_depth_visible_under_fanin(self):
        net = _single_net(hosts=3)
        # Two senders converge on one 25G host link at line rate each.
        _send(net, "server0", "server2", n=200, size=1500)
        _send(net, "server1", "server2", n=200, size=1500)
        out_port = net.port_toward("sw0", "server2")
        egress = net.switch("sw0").ports[out_port].egress
        max_depth = 0

        def sample():
            nonlocal max_depth
            max_depth = max(max_depth, egress.queue_depth_packets)
            net.sim.schedule(1 * US, sample)

        net.sim.schedule(1 * US, sample)
        net.run(until=2 * MS)
        assert max_depth >= 2  # fan-in must back up the queue
        assert egress.queue.packets_sent == 400


class TestSnapshotPlumbing:
    def test_header_pushed_at_enabled_ingress_and_stripped_for_host(self):
        net = _single_net()
        sw = net.switch("sw0")
        agents = {}
        for port in sw.ports:
            for unit in (port.ingress, port.egress):
                agent = RecordingAgent(sid=4)
                unit.snapshot_agent = agent
                agents[unit.unit_id] = agent
        net.refresh_header_stripping()
        flow = _send(net, "server0", "server1")
        net.run(until=1 * MS)
        in_port = net.port_toward("sw0", "server0")
        out_port = net.port_toward("sw0", "server1")
        ingress_agent = agents[UnitId("sw0", in_port, Direction.INGRESS)]
        egress_agent = agents[UnitId("sw0", out_port, Direction.EGRESS)]
        # Ingress saw the freshly pushed header carrying its own sid.
        assert ingress_agent.calls[0][0] == 4
        assert ingress_agent.calls[0][1] == EXTERNAL_CHANNEL
        # Egress saw the ingress port as its channel id.
        assert egress_agent.calls[0][1] == in_port
        # Host received the packet with the header removed.
        host = net.host("server1")
        assert host.received[flow].packets == 1

    def test_counters_updated_for_data_not_initiation(self):
        net = _single_net()
        sw = net.switch("sw0")
        counter = PacketCounter()
        sw.ports[0].ingress.counters.add("pkts", counter)
        sw.ports[0].ingress.snapshot_agent = RecordingAgent()
        sw.ports[0].egress.snapshot_agent = RecordingAgent()
        sw.ports[0].ingress.handle_packet(make_initiation_packet(1))
        _send(net, "server0", "server1", n=3)
        net.run(until=1 * MS)
        assert counter.read() == 3

    def test_initiation_travels_ingress_then_same_port_egress(self):
        net = _single_net()
        sw = net.switch("sw0")
        ingress_agent = RecordingAgent()
        egress_agent = RecordingAgent()
        sw.ports[1].ingress.snapshot_agent = ingress_agent
        sw.ports[1].egress.snapshot_agent = egress_agent
        sw.ports[1].ingress.handle_packet(make_initiation_packet(9))
        net.run(until=1 * MS)
        assert ingress_agent.calls == [(9, CPU_CHANNEL, 0,
                                        PacketType.INITIATION)]
        assert len(egress_agent.calls) == 1
        assert egress_agent.calls[0][1] == CPU_CHANNEL
        # Dropped at egress: nothing reached the attached host.
        assert net.host("server1").packets_received == 0


class TestBroadcastProbes:
    def _probe(self, ttl):
        pkt = Packet(flow=FlowKey("cpu", BROADCAST_DST, 0, 0, 255),
                     size_bytes=64, payload=ttl)
        pkt.snapshot = SnapshotHeader(sid=2)
        return pkt

    def test_flood_reaches_every_other_egress(self):
        net = _single_net(hosts=4)
        sw = net.switch("sw0")
        egress_agents = {}
        for port in sw.ports:
            port.ingress.snapshot_agent = RecordingAgent()
            agent = RecordingAgent()
            port.egress.snapshot_agent = agent
            egress_agents[port.index] = agent
        net.refresh_header_stripping()
        sw.ports[0].ingress.handle_packet(self._probe(ttl=1))
        net.run(until=1 * MS)
        assert len(egress_agents[0].calls) == 0  # not back out the in-port
        for port in (1, 2, 3):
            assert len(egress_agents[port].calls) == 1

    def test_probe_never_delivered_to_hosts(self):
        net = _single_net(hosts=3)
        sw = net.switch("sw0")
        for port in sw.ports:
            port.ingress.snapshot_agent = RecordingAgent()
            port.egress.snapshot_agent = RecordingAgent()
        net.refresh_header_stripping()
        sw.ports[0].ingress.handle_packet(self._probe(ttl=5))
        net.run(until=1 * MS)
        for host in net.hosts.values():
            assert host.packets_received == 0

    def test_probe_crosses_wire_to_enabled_switch_and_ttl_expires(self):
        net = Network(linear(num_switches=3, hosts_per_switch=1),
                      NetworkConfig(seed=3))
        agents = {}
        for name, sw in net.switches.items():
            for port in sw.ports:
                if port.link is None:
                    continue
                port.ingress.snapshot_agent = RecordingAgent()
                agent = RecordingAgent()
                port.egress.snapshot_agent = agent
                agents[(name, port.index)] = agent
        net.refresh_header_stripping()
        # Inject at sw0's host-facing ingress; the flood exits toward sw1
        # with TTL=1 (one wire hop), gets flooded inside sw1, but is not
        # retransmitted onward to sw2.
        in_port = net.port_toward("sw0", "server0")
        net.switch("sw0").ports[in_port].ingress.handle_packet(self._probe(1))
        net.run(until=1 * MS)
        sw1_to_sw2 = net.port_toward("sw1", "sw2")
        # The probe was flooded inside sw1 (processed at its egresses)...
        assert len(agents[("sw1", sw1_to_sw2)].calls) == 1
        # ...but with TTL exhausted it never crossed the second wire.
        assert all(len(a.calls) == 0 for (n, _p), a in agents.items()
                   if n == "sw2")


class TestUnitAccess:
    def test_all_units_and_snapshot_units(self):
        net = _single_net(hosts=2)
        sw = net.switch("sw0")
        assert len(sw.all_units()) == 4
        assert sw.snapshot_units() == []
        sw.ports[0].ingress.snapshot_agent = RecordingAgent()
        assert len(sw.snapshot_units()) == 1

    def test_unit_lookup_by_direction(self):
        net = _single_net(hosts=2)
        sw = net.switch("sw0")
        assert sw.unit(0, Direction.INGRESS) is sw.ports[0].ingress
        assert sw.unit(1, Direction.EGRESS) is sw.ports[1].egress
