"""Tests for links and loss models."""

import random

import pytest

from repro.sim.channel import BernoulliLoss, Link, NoLoss, ScriptedLoss
from repro.sim.engine import Simulator
from repro.sim.packet import FlowKey, Packet


class FakeEndpoint:
    def __init__(self, name):
        self.name = name
        self.received = []

    @property
    def endpoint_name(self):
        return self.name

    def receive_from_link(self, packet, link):
        self.received.append(packet)


def _pkt(seq=0):
    return Packet(flow=FlowKey("a", "b", 1, 2), seq=seq, size_bytes=1000)


def _wired_link(sim, **kwargs):
    link = Link(sim, **kwargs)
    a, b = FakeEndpoint("a"), FakeEndpoint("b")
    link.attach(a)
    link.attach(b)
    return link, a, b


class TestLink:
    def test_transmit_delivers_after_propagation(self):
        sim = Simulator()
        link, a, b = _wired_link(sim, propagation_ns=250)
        link.transmit(a, _pkt())
        sim.run()
        assert len(b.received) == 1
        assert sim.now == 250

    def test_duplex_both_directions(self):
        sim = Simulator()
        link, a, b = _wired_link(sim)
        link.transmit(a, _pkt(1))
        link.transmit(b, _pkt(2))
        sim.run()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_fifo_order_preserved(self):
        sim = Simulator()
        link, a, b = _wired_link(sim, propagation_ns=100)
        for seq in range(10):
            link.transmit(a, _pkt(seq))
        sim.run()
        assert [p.seq for p in b.received] == list(range(10))

    def test_third_endpoint_rejected(self):
        sim = Simulator()
        link, _a, _b = _wired_link(sim)
        with pytest.raises(RuntimeError):
            link.attach(FakeEndpoint("c"))

    def test_peer_of_unattached_raises(self):
        sim = Simulator()
        link, _a, _b = _wired_link(sim)
        with pytest.raises(ValueError):
            link.peer_of(FakeEndpoint("stranger"))

    def test_serialization_time(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=10_000_000_000)  # 10 Gbps
        # 1250 bytes = 10000 bits at 10 Gbps -> 1000 ns
        assert link.serialization_ns(1250) == 1000

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(sim, propagation_ns=-1)

    def test_delivery_counter(self):
        sim = Simulator()
        link, a, _b = _wired_link(sim)
        link.transmit(a, _pkt())
        sim.run()
        assert link.packets_delivered == 1


class TestLossModels:
    def test_no_loss_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop(_pkt()) for _ in range(100))

    def test_bernoulli_certain_drop(self):
        model = BernoulliLoss(1.0, random.Random(1))
        assert model.should_drop(_pkt())
        assert model.dropped == 1

    def test_bernoulli_rate_roughly_honored(self):
        model = BernoulliLoss(0.3, random.Random(1))
        drops = sum(model.should_drop(_pkt()) for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_bernoulli_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, random.Random(1))

    def test_scripted_loss_by_uid(self):
        victim = _pkt()
        survivor = _pkt()
        model = ScriptedLoss(drop_uids={victim.uid})
        assert model.should_drop(victim)
        assert not model.should_drop(survivor)
        assert model.dropped == [victim]

    def test_scripted_loss_by_predicate(self):
        model = ScriptedLoss(predicate=lambda p: p.seq == 3)
        assert not model.should_drop(_pkt(seq=1))
        assert model.should_drop(_pkt(seq=3))

    def test_lossy_link_drops_and_counts(self):
        sim = Simulator()
        link, a, b = _wired_link(sim, loss=BernoulliLoss(1.0, random.Random(1)))
        assert link.transmit(a, _pkt()) is False
        sim.run()
        assert b.received == []
        assert link.packets_dropped == 1
