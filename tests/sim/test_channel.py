"""Tests for links and loss models."""

import random

import pytest

from repro.sim.channel import (BernoulliLoss, GilbertElliottLoss, Link,
                               NoLoss, ScriptedLoss)
from repro.sim.engine import Simulator
from repro.sim.packet import FlowKey, Packet


class FakeEndpoint:
    def __init__(self, name):
        self.name = name
        self.received = []

    @property
    def endpoint_name(self):
        return self.name

    def receive_from_link(self, packet, link):
        self.received.append(packet)


def _pkt(seq=0):
    return Packet(flow=FlowKey("a", "b", 1, 2), seq=seq, size_bytes=1000)


def _wired_link(sim, **kwargs):
    link = Link(sim, **kwargs)
    a, b = FakeEndpoint("a"), FakeEndpoint("b")
    link.attach(a)
    link.attach(b)
    return link, a, b


class TestLink:
    def test_transmit_delivers_after_propagation(self):
        sim = Simulator()
        link, a, b = _wired_link(sim, propagation_ns=250)
        link.transmit(a, _pkt())
        sim.run()
        assert len(b.received) == 1
        assert sim.now == 250

    def test_duplex_both_directions(self):
        sim = Simulator()
        link, a, b = _wired_link(sim)
        link.transmit(a, _pkt(1))
        link.transmit(b, _pkt(2))
        sim.run()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_fifo_order_preserved(self):
        sim = Simulator()
        link, a, b = _wired_link(sim, propagation_ns=100)
        for seq in range(10):
            link.transmit(a, _pkt(seq))
        sim.run()
        assert [p.seq for p in b.received] == list(range(10))

    def test_third_endpoint_rejected(self):
        sim = Simulator()
        link, _a, _b = _wired_link(sim)
        with pytest.raises(RuntimeError):
            link.attach(FakeEndpoint("c"))

    def test_peer_of_unattached_raises(self):
        sim = Simulator()
        link, _a, _b = _wired_link(sim)
        with pytest.raises(ValueError):
            link.peer_of(FakeEndpoint("stranger"))

    def test_serialization_time(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=10_000_000_000)  # 10 Gbps
        # 1250 bytes = 10000 bits at 10 Gbps -> 1000 ns
        assert link.serialization_ns(1250) == 1000

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(sim, propagation_ns=-1)

    def test_delivery_counter(self):
        sim = Simulator()
        link, a, _b = _wired_link(sim)
        link.transmit(a, _pkt())
        sim.run()
        assert link.packets_delivered == 1


class TestLossModels:
    def test_no_loss_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop(_pkt()) for _ in range(100))

    def test_bernoulli_certain_drop(self):
        model = BernoulliLoss(1.0, random.Random(1))
        assert model.should_drop(_pkt())
        assert model.dropped == 1

    def test_bernoulli_rate_roughly_honored(self):
        model = BernoulliLoss(0.3, random.Random(1))
        drops = sum(model.should_drop(_pkt()) for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_bernoulli_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, random.Random(1))

    def test_scripted_loss_by_uid(self):
        victim = _pkt()
        survivor = _pkt()
        model = ScriptedLoss(drop_uids={victim.uid})
        assert model.should_drop(victim)
        assert not model.should_drop(survivor)
        assert model.dropped == [victim]

    def test_scripted_loss_by_predicate(self):
        model = ScriptedLoss(predicate=lambda p: p.seq == 3)
        assert not model.should_drop(_pkt(seq=1))
        assert model.should_drop(_pkt(seq=3))

    def test_lossy_link_drops_and_counts(self):
        sim = Simulator()
        link, a, b = _wired_link(sim, loss=BernoulliLoss(1.0, random.Random(1)))
        assert link.transmit(a, _pkt()) is False
        sim.run()
        assert b.received == []
        assert link.packets_dropped == 1


class TestGilbertElliottLoss:
    def _model(self, **overrides):
        kwargs = dict(p_good_to_bad=0.01, p_bad_to_good=0.1,
                      p_loss_good=0.0, p_loss_bad=0.5)
        kwargs.update(overrides)
        return GilbertElliottLoss(random.Random(7), **kwargs)

    def test_invalid_probability_rejected(self):
        for name in ("p_good_to_bad", "p_bad_to_good",
                     "p_loss_good", "p_loss_bad"):
            with pytest.raises(ValueError, match=name):
                self._model(**{name: 1.5})

    def test_never_leaves_good_state_when_transition_zero(self):
        model = self._model(p_good_to_bad=0.0)
        assert not any(model.should_drop(_pkt()) for _ in range(1000))
        assert not model.in_bad_state
        assert model.bursts_entered == 0

    def test_sticky_bad_state_drops_everything(self):
        model = self._model(p_good_to_bad=1.0, p_bad_to_good=0.0,
                            p_loss_bad=1.0)
        assert all(model.should_drop(_pkt()) for _ in range(100))
        assert model.in_bad_state
        assert model.bursts_entered == 1
        assert model.dropped == 100

    def test_drops_cluster_into_bursts(self):
        # Mean burst length 1/p_bad_to_good = 10 packets at 100% loss:
        # drops must arrive in runs, unlike Bernoulli at the same rate.
        model = self._model(p_good_to_bad=0.02, p_bad_to_good=0.1,
                            p_loss_bad=1.0)
        pattern = [model.should_drop(_pkt()) for _ in range(20_000)]
        drops = sum(pattern)
        runs = sum(1 for i, d in enumerate(pattern)
                   if d and (i == 0 or not pattern[i - 1]))
        assert drops > 500            # bad state actually visited
        assert runs == model.bursts_entered
        assert drops / runs > 4       # multi-packet bursts on average

    def test_same_seed_same_pattern(self):
        a = GilbertElliottLoss(random.Random(42))
        b = GilbertElliottLoss(random.Random(42))
        packets = [_pkt(seq=i) for i in range(500)]
        assert ([a.should_drop(p) for p in packets]
                == [b.should_drop(p) for p in packets])

    def test_reset_restores_good_state(self):
        model = self._model(p_good_to_bad=1.0, p_loss_bad=1.0)
        model.should_drop(_pkt())
        model.reset()
        assert not model.in_bad_state
        assert model.dropped == 0 and model.bursts_entered == 0


class TestLinkFaultSurface:
    def test_down_link_drops_everything(self):
        sim = Simulator()
        link, a, b = _wired_link(sim)
        link.up = False
        assert link.transmit(a, _pkt()) is False
        sim.run()
        assert b.received == []
        assert link.packets_dropped == 1
        link.up = True
        assert link.transmit(a, _pkt(1)) is True
        sim.run()
        assert len(b.received) == 1

    def test_latency_spike_delays_delivery(self):
        sim = Simulator()
        link, a, b = _wired_link(sim, propagation_ns=100)
        link.extra_delay_ns = 900
        link.transmit(a, _pkt())
        sim.run()
        assert sim.now == 1000

    def test_fifo_preserved_while_spike_drains(self):
        # A packet sent during the spike is in flight with +900 ns; the
        # packet sent just after the spike ends must NOT overtake it.
        sim = Simulator()
        link, a, b = _wired_link(sim, propagation_ns=100)
        link.extra_delay_ns = 900
        link.transmit(a, _pkt(seq=0))          # delivers at 1000
        link.extra_delay_ns = 0
        link.transmit(a, _pkt(seq=1))          # natural 100 -> clamped
        sim.run(until=999)
        assert b.received == []                # neither overtook the spike
        sim.run()
        assert [p.seq for p in b.received] == [0, 1]

    def test_fifo_floor_expires_once_natural_timing_catches_up(self):
        sim = Simulator()
        link, a, b = _wired_link(sim, propagation_ns=100)
        link.extra_delay_ns = 500
        link.transmit(a, _pkt(seq=0))          # delivers at 600
        link.extra_delay_ns = 0
        sim.run(until=700)

        def late_send():
            link.transmit(a, _pkt(seq=1))      # natural 800 >= floor 600

        sim.schedule_at(700, late_send)
        sim.run()
        assert [p.seq for p in b.received] == [0, 1]
        assert not link._fifo_floor             # back on the fast path
        link.transmit(a, _pkt(seq=2))
        sim.run()
        assert sim.now == b.received[-1].created_ns + 100 or len(b.received) == 3
