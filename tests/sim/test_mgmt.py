"""Tests for the management plane."""

import random

import pytest

from repro.sim.engine import Simulator, US
from repro.sim.mgmt import ManagementPlane


def _mgmt(base=50 * US, jitter=20 * US):
    sim = Simulator()
    return sim, ManagementPlane(sim, random.Random(3), base, jitter)


class TestSend:
    def test_delivery_within_latency_bounds(self):
        sim, mgmt = _mgmt()
        seen = []
        mgmt.send(lambda: seen.append(sim.now))
        sim.run()
        assert len(seen) == 1
        assert 50 * US <= seen[0] <= 70 * US

    def test_no_jitter_is_deterministic(self):
        sim, mgmt = _mgmt(jitter=0)
        seen = []
        mgmt.send(lambda: seen.append(sim.now))
        sim.run()
        assert seen == [50 * US]

    def test_messages_counted(self):
        sim, mgmt = _mgmt()
        for _ in range(3):
            mgmt.send(lambda: None)
        assert mgmt.messages_sent == 3

    def test_negative_latency_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ManagementPlane(sim, random.Random(1), base_latency_ns=-1)


class TestRequest:
    def test_round_trip(self):
        sim, mgmt = _mgmt(jitter=0)
        replies = []
        mgmt.request(lambda x: x * 2, replies.append, 21)
        sim.run()
        assert replies == [42]
        assert sim.now == 100 * US  # two one-way latencies

    def test_handler_runs_at_remote_time(self):
        sim, mgmt = _mgmt(jitter=0)
        handler_times = []

        def handler():
            handler_times.append(sim.now)
            return None

        mgmt.request(handler, lambda _result: None)
        sim.run()
        assert handler_times == [50 * US]
