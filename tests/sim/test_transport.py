"""Tests for the Go-Back-N reliable transport."""

import pytest

from repro.analysis import ConsistencyChecker
from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.sim.channel import BernoulliLoss, ScriptedLoss
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.sim.transport import ReliableFlow
from repro.topology import leaf_spine, single_switch


def _net(loss_p=0.0, seed=1, topo=None, **cfg):
    loss_factory = None
    if loss_p:
        loss_factory = lambda spec, rng: BernoulliLoss(loss_p, rng)
    return Network(topo or single_switch(num_hosts=2),
                   NetworkConfig(seed=seed, loss_factory=loss_factory, **cfg))


class TestLossless:
    def test_transfer_completes_in_order(self):
        net = _net()
        flow = ReliableFlow(net, "server0", "server1", total_packets=100)
        flow.start()
        net.run(until=100 * MS)
        assert flow.complete
        assert flow.in_order
        assert len(flow.delivered) == 100
        assert flow.stats.retransmissions == 0

    def test_window_paces_transmissions(self):
        net = _net()
        flow = ReliableFlow(net, "server0", "server1", total_packets=100,
                            window=4)
        flow.start()
        # Before any ACK returns, at most one window may be in flight.
        assert flow.stats.data_sent == 4
        net.run(until=100 * MS)
        assert flow.complete

    def test_goodput_positive_and_bounded_by_line_rate(self):
        net = _net()
        flow = ReliableFlow(net, "server0", "server1", total_packets=200,
                            window=64)
        flow.start()
        net.run(until=1 * S)
        assert flow.complete
        assert 0 < flow.goodput_bps() <= 25e9

    def test_parameter_validation(self):
        net = _net()
        with pytest.raises(ValueError):
            ReliableFlow(net, "server0", "server1", total_packets=0)
        with pytest.raises(ValueError):
            ReliableFlow(net, "server0", "server1", total_packets=1,
                         window=0)

    def test_port_collision_rejected(self):
        net = _net()
        ReliableFlow(net, "server0", "server1", total_packets=1,
                     sport=100, dport=200)
        with pytest.raises(ValueError):
            ReliableFlow(net, "server0", "server1", total_packets=1,
                         sport=300, dport=200)

    def test_close_releases_ports(self):
        net = _net()
        flow = ReliableFlow(net, "server0", "server1", total_packets=1,
                            sport=100, dport=200)
        flow.close()
        ReliableFlow(net, "server0", "server1", total_packets=1,
                     sport=100, dport=200)


class TestLossRecovery:
    def test_recovers_from_random_loss(self):
        net = _net(loss_p=0.03, seed=5)
        flow = ReliableFlow(net, "server0", "server1", total_packets=300,
                            window=16, timeout_ns=1 * MS)
        flow.start()
        net.run(until=2 * S)
        assert flow.complete
        assert flow.in_order
        assert flow.stats.retransmissions > 0

    def test_recovers_from_targeted_first_packet_loss(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(
            seed=1,
            loss_factory=lambda spec, rng: ScriptedLoss(
                predicate=lambda p: p.payload == "DATA" and p.seq == 0
                and p.uid < 10)))
        flow = ReliableFlow(net, "server0", "server1", total_packets=5,
                            timeout_ns=1 * MS)
        flow.start()
        net.run(until=1 * S)
        assert flow.complete
        assert flow.in_order

    def test_out_of_order_segments_dropped_gbn_style(self):
        # Drop exactly one mid-window data packet once: later segments
        # arrive out of order and must be discarded, then retransmitted.
        state = {"dropped": False}

        def drop_seq2_once(p):
            if p.payload == "DATA" and p.seq == 2 and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        net = Network(single_switch(num_hosts=2), NetworkConfig(
            seed=1,
            loss_factory=lambda spec, rng: ScriptedLoss(
                predicate=drop_seq2_once)))
        flow = ReliableFlow(net, "server0", "server1", total_packets=8,
                            window=8, timeout_ns=1 * MS)
        flow.start()
        net.run(until=1 * S)
        assert flow.complete
        assert flow.in_order
        assert flow.stats.out_of_order_drops > 0


class TestTransportUnderSnapshots:
    def test_snapshots_stay_consistent_over_transport_traffic(self):
        """Closed-loop transport traffic (data + acks both directions,
        retransmissions under loss) is just traffic to the snapshot
        protocol: conservation must hold exactly."""
        net = _net(loss_p=0.01, seed=9, topo=leaf_spine(hosts_per_leaf=1),
                   enable_tracing=True)
        flows = [ReliableFlow(net, "server0", "server1", total_packets=400,
                              window=32, timeout_ns=2 * MS),
                 ReliableFlow(net, "server1", "server0", total_packets=400,
                              window=32, timeout_ns=2 * MS)]
        for flow in flows:
            flow.start()
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True))
        epochs = deployment.schedule_campaign(count=5, interval_ns=10 * MS)
        net.run(until=2 * S)
        assert all(f.complete for f in flows)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == 5
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)
