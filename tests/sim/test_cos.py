"""Tests for class-of-service lanes (§4.1's CoS sub-channel model)."""

import pytest

from repro.analysis import ConsistencyChecker
from repro.core import ControlPlaneConfig, DeploymentConfig, SpeedlightDeployment
from repro.sim.engine import MS, US, Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import FlowKey, Packet
from repro.sim.switch import SwitchConfig, _EgressQueue
from repro.topology import leaf_spine, single_switch
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


def _pkt(cos=0, size=1000, seq=0):
    return Packet(flow=FlowKey("a", "b", 1, 2), size_bytes=size, cos=cos,
                  seq=seq)


class TestPriorityQueue:
    def _queue(self, num_cos=2):
        sim = Simulator()
        sent = []
        queue = _EgressQueue(sim, transmit=sent.append,
                             ser_fn=lambda pkt: 100, num_cos=num_cos)
        return sim, queue, sent

    def test_higher_class_preempts_queue_order(self):
        sim, queue, sent = self._queue()
        # Three low-priority packets, then one high-priority arrives.
        for seq in range(3):
            queue.push(_pkt(cos=0, seq=seq))
        queue.push(_pkt(cos=1, seq=99))
        sim.run()
        # Packet 0 was already in service; the high-priority packet jumps
        # ahead of the remaining low-priority ones.
        assert [p.seq for p in sent] == [0, 99, 1, 2]

    def test_fifo_within_a_class(self):
        sim, queue, sent = self._queue()
        for seq in range(5):
            queue.push(_pkt(cos=1, seq=seq))
        sim.run()
        assert [p.seq for p in sent] == list(range(5))

    def test_depth_counts_all_lanes(self):
        sim, queue, _sent = self._queue()
        queue.push(_pkt(cos=0))
        queue.push(_pkt(cos=1))
        queue.push(_pkt(cos=1))
        assert queue.depth_packets == 3
        assert queue.lane_depth(1) == 2  # one cos-0 packet is in service

    def test_out_of_range_cos_clamped(self):
        sim, queue, sent = self._queue(num_cos=2)
        queue.push(_pkt(cos=7))
        queue.push(_pkt(cos=-3))
        sim.run()
        assert len(sent) == 2

    def test_per_packet_serialization(self):
        sim = Simulator()
        done = []
        queue = _EgressQueue(sim, transmit=lambda p: done.append(sim.now),
                             ser_fn=lambda pkt: pkt.size_bytes)
        queue.push(_pkt(size=100))
        queue.push(_pkt(size=5000))
        queue.push(_pkt(size=10))
        sim.run()
        # Each packet's serialisation reflects its own size.
        assert done == [100, 5100, 5110]

    def test_invalid_lane_count(self):
        with pytest.raises(ValueError):
            _EgressQueue(Simulator(), num_cos=0)


class TestCosChannels:
    def _cos_net(self, topo=None):
        cfg = NetworkConfig(seed=1, switch_config=SwitchConfig(num_cos=2),
                            enable_tracing=True)
        return Network(topo or leaf_spine(hosts_per_leaf=1), cfg)

    def test_channel_ids_distinct_per_class(self):
        net = self._cos_net(single_switch(num_hosts=2))
        sw = net.switch("sw0")
        assert sw.egress_channel_id(0, 0) != sw.egress_channel_id(0, 1)
        assert sw.egress_channel_id(1, 0) != sw.egress_channel_id(0, 1)

    def test_high_priority_traffic_overtakes(self):
        net = self._cos_net(single_switch(num_hosts=3))
        # Saturate server2's link with low-priority, then send one
        # high-priority packet which must arrive ahead of the backlog.
        for seq in range(50):
            net.host("server0").send_packet(
                Packet(flow=FlowKey("server0", "server2", 1, 2),
                       size_bytes=1500, cos=0, seq=seq))
        arrivals = []
        net.host("server2").on_receive = lambda p: arrivals.append(
            (p.cos, p.seq))
        net.sim.schedule(5 * US, net.host("server1").send_packet,
                         Packet(flow=FlowKey("server1", "server2", 3, 4),
                                size_bytes=200, cos=1, seq=777))
        net.run(until=2 * MS)
        high_index = arrivals.index((1, 777))
        assert high_index < 40  # overtook most of the low-priority backlog

    def test_snapshot_consistency_with_two_classes(self):
        net = self._cos_net()
        duration = 800 * MS
        wl_low = PoissonWorkload(net, PoissonConfig(
            seed=3, rate_pps=15_000, stop_ns=duration, sport_churn=True))
        wl_low.start()
        # A second workload in the high-priority class.
        wl_high = PoissonWorkload(net, PoissonConfig(
            seed=4, rate_pps=8_000, stop_ns=duration, sport_churn=True))
        original_emit = wl_high.emit

        def emit_high(src, dst, **kwargs):
            host = net.host(src)
            flow = FlowKey(src, dst, kwargs["sport"], kwargs["dport"])
            host.send_packet(Packet(flow=flow, cos=1,
                                    size_bytes=kwargs["size_bytes"]))
            wl_high.packets_emitted += 1

        wl_high.emit = emit_high
        wl_high.start()

        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True,
            control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS)))
        epochs = deployment.schedule_campaign(count=5, interval_ns=15 * MS)
        net.run(until=duration)
        snaps = deployment.observer.completed_snapshots()
        assert len(snaps) == 5
        checker = ConsistencyChecker(deployment.ids)
        checker.ingest(net.trace_log)
        checker.check_all(snaps, channel_state=True)

    def test_gating_covers_both_classes(self):
        net = self._cos_net()
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True))
        cp = deployment.control_planes["leaf0"]
        from repro.sim.switch import Direction, UnitId
        uplink = net.port_toward("leaf0", "spine0")
        tracker = cp.trackers[UnitId("leaf0", uplink, Direction.INGRESS)]
        assert tracker.gating == [0, 1]  # one sub-channel per class

    def test_cos_classes_config_restricts_gating(self):
        net = self._cos_net()
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True, cos_classes=[0]))
        cp = deployment.control_planes["leaf0"]
        from repro.sim.switch import Direction, UnitId
        uplink = net.port_toward("leaf0", "spine0")
        tracker = cp.trackers[UnitId("leaf0", uplink, Direction.INGRESS)]
        assert tracker.gating == [0]
