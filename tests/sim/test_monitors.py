"""Tests for the in-simulation monitoring utilities."""

import pytest

from repro.sim.engine import MS, Simulator, US
from repro.sim.monitors import LinkLoadMonitor, PeriodicSampler
from repro.sim.network import Network, NetworkConfig
from repro.topology import single_switch


class TestPeriodicSampler:
    def test_samples_at_period(self):
        sim = Simulator()
        clockwork = PeriodicSampler(sim, lambda: sim.now, period_ns=10 * US)
        clockwork.start()
        sim.run(until=100 * US)
        times = [s.time_ns for s in clockwork.samples]
        assert times == list(range(10 * US, 101 * US, 10 * US))

    def test_stop_ns_bounds_sampling(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, lambda: 1.0, period_ns=10 * US)
        sampler.start(stop_ns=50 * US)
        sim.run(until=1 * MS)
        assert len(sampler.samples) == 5

    def test_stop_method(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, lambda: 1.0, period_ns=10 * US)
        sampler.start()
        sim.run(until=30 * US)
        sampler.stop()
        sim.run(until=100 * US)
        assert len(sampler.samples) == 3

    def test_statistics(self):
        sim = Simulator()
        values = iter([1.0, 5.0, 3.0, 100.0])
        sampler = PeriodicSampler(sim, lambda: next(values), period_ns=10 * US)
        sampler.start(stop_ns=40 * US)
        sim.run(until=1 * MS)
        assert sampler.max() == 100.0
        assert sampler.mean() == pytest.approx(27.25)
        assert sampler.value_at(25 * US) == 5.0

    def test_value_before_first_sample_raises(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, lambda: 1.0, period_ns=10 * US)
        sampler.start()
        sim.run(until=15 * US)
        with pytest.raises(ValueError):
            sampler.value_at(5 * US)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicSampler(Simulator(), lambda: 0.0, period_ns=0)

    def test_empty_statistics_raise(self):
        sampler = PeriodicSampler(Simulator(), lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.max()


class TestLinkLoadMonitor:
    def test_utilization_tracks_offered_load(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
        out_port = net.port_toward("sw0", "server1")
        egress = net.switch("sw0").ports[out_port].egress
        monitor = LinkLoadMonitor(net.sim, egress, bandwidth_bps=25 * 10**9,
                                  window_ns=100 * US)
        monitor.start()
        # Line-rate burst for ~0.5 ms, then silence.
        net.host("server0").send_flow("server1", 800, sport=1, dport=2,
                                      size_bytes=1500)
        net.run(until=2 * MS)
        assert monitor.peak() > 0.8     # saturated during the burst
        assert monitor.mean() < 0.5     # mostly idle overall

    def test_idle_link_reads_zero(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
        egress = net.switch("sw0").ports[0].egress
        monitor = LinkLoadMonitor(net.sim, egress, bandwidth_bps=25 * 10**9)
        monitor.start(stop_ns=1 * MS)
        net.run(until=2 * MS)
        assert monitor.peak() == 0.0
        assert monitor.mean() == 0.0
