"""Tests for drifting clocks and the PTP synchronisation service."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import Clock, PTPConfig, PTPService
from repro.sim.engine import S, Simulator


class TestClock:
    def test_perfect_clock_is_identity(self):
        clock = Clock()
        for t in (0, 123, 10**12):
            assert clock.local_time(t) == t

    def test_offset_shifts_local_time(self):
        clock = Clock(offset_ns=500)
        assert clock.local_time(1000) == 1500
        assert clock.error_at(1000) == 500

    def test_drift_accumulates(self):
        clock = Clock(drift_ppb=1_000_000)  # 0.1% fast
        assert clock.local_time(1_000_000) == 1_001_000

    def test_negative_drift(self):
        clock = Clock(drift_ppb=-1_000_000)
        assert clock.local_time(1_000_000) == 999_000

    def test_resync_zeroes_accumulated_drift(self):
        clock = Clock(drift_ppb=50_000)
        clock.resync(true_ns=10**9, residual_error_ns=0)
        assert clock.local_time(10**9) == 10**9
        # Drift resumes from the sync point.
        assert clock.local_time(10**9 + 10**6) == 10**9 + 10**6 + 50

    def test_resync_residual_becomes_offset(self):
        clock = Clock()
        clock.resync(true_ns=100, residual_error_ns=-7)
        assert clock.error_at(100) == -7

    @given(st.integers(min_value=-40_000_000, max_value=40_000_000),
           st.integers(min_value=-10_000, max_value=10_000),
           st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=0, max_value=10**12))
    def test_property_true_time_exactly_inverts_local_time(
            self, drift, offset, t, sync_point):
        """``true_time`` is the exact inverse of ``local_time`` on its
        image for *signed* drift: it returns the greatest true time
        mapping at or below the reading.  (The naive algebraic inverse
        floor-divides with a different denominator than the forward map
        and lands 1 ns off for some negative drifts.)"""
        clock = Clock(drift_ppb=drift, offset_ns=offset)
        clock.sync_point_ns = sync_point
        local = clock.local_time(t)
        recovered = clock.true_time(local)
        assert clock.local_time(recovered) == local
        assert clock.local_time(recovered + 1) > local
        assert recovered >= t  # greatest preimage, never an earlier one

    @given(st.integers(min_value=-40_000_000, max_value=40_000_000),
           st.integers(min_value=-10_000, max_value=10_000),
           st.integers(min_value=0, max_value=10**9))
    def test_property_true_time_monotone_in_local(self, drift, offset, local):
        clock = Clock(drift_ppb=drift, offset_ns=offset)
        assert clock.true_time(local) <= clock.true_time(local + 1)


class TestPTPService:
    def _service(self, config=None):
        sim = Simulator()
        return sim, PTPService(sim, random.Random(7), config)

    def test_attach_creates_clock_with_drift_in_range(self):
        _sim, ptp = self._service(PTPConfig(drift_ppb_min=-5, drift_ppb_max=5))
        clock = ptp.attach("sw0")
        assert -5 <= clock.drift_ppb <= 5

    def test_attach_duplicate_rejected(self):
        _sim, ptp = self._service()
        ptp.attach("sw0")
        with pytest.raises(ValueError):
            ptp.attach("sw0")

    def test_start_disciplines_all_clocks(self):
        sim, ptp = self._service(PTPConfig(residual_max_ns=100))
        clocks = [ptp.attach(f"sw{i}") for i in range(4)]
        ptp.start()
        for clock in clocks:
            assert abs(clock.error_at(sim.now)) <= 100

    def test_attach_after_start_is_disciplined(self):
        sim, ptp = self._service(PTPConfig(residual_max_ns=100))
        ptp.start()
        late = ptp.attach("late")
        assert abs(late.error_at(sim.now)) <= 100

    def test_periodic_resync_bounds_error(self):
        config = PTPConfig(sync_interval_ns=1 * S, residual_max_ns=8_000,
                           drift_ppb_min=-40_000, drift_ppb_max=40_000)
        sim, ptp = self._service(config)
        clock = ptp.attach("sw0")
        ptp.start()
        sim.run(until=10 * S)
        # Worst case: residual clamp + one interval of max drift.
        max_err = config.residual_max_ns + 40_000  # 40us/s * 1s = 40us... ppb
        assert abs(clock.error_at(sim.now)) <= config.residual_max_ns + \
            abs(clock.drift_ppb) * config.sync_interval_ns // 10**9 + 1

    def test_residual_sampling_respects_clamp(self):
        _sim, ptp = self._service(PTPConfig(residual_sigma_ns=1_000,
                                            residual_max_ns=5_000))
        for _ in range(500):
            assert abs(ptp.sample_residual()) <= 5_000

    def test_pairwise_spread_zero_without_clocks(self):
        _sim, ptp = self._service()
        assert ptp.pairwise_spread_ns() == 0

    def test_pairwise_spread_reflects_offsets(self):
        sim, ptp = self._service()
        ptp.attach("a", Clock(offset_ns=10))
        ptp.attach("b", Clock(offset_ns=-15))
        assert ptp.pairwise_spread_ns() == 25
