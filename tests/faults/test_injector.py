"""Tests for binding fault schedules to a live network."""

import pytest

from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.faults import FaultInjector, FaultSchedule
from repro.sim.channel import GilbertElliottLoss, NoLoss
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import linear


def _network(seed=3):
    return Network(linear(num_switches=2, hosts_per_switch=1),
                   NetworkConfig(seed=seed))


def _link(network, name="sw0-sw1"):
    return next(l for l in network.links if l.name == name)


def _armed(network, schedule, deployment=None):
    injector = FaultInjector(network, schedule, deployment=deployment)
    injector.arm()
    return injector


class TestArming:
    def test_empty_schedule_is_a_strict_noop(self):
        network = _network()
        injector = FaultInjector(network, FaultSchedule())
        before = len(network.sim._heap)
        assert injector.arm() == 0
        assert injector.rng is None               # no RNG stream constructed
        assert len(network.sim._heap) == before   # nothing scheduled

    def test_double_arm_rejected(self):
        network = _network()
        injector = FaultInjector(network, FaultSchedule())
        injector.arm()
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()

    def test_unknown_link_rejected_at_arm_time(self):
        schedule = FaultSchedule()
        schedule.add("link_down", 0, target="sw0-sw9")
        with pytest.raises(ValueError, match="no link named"):
            _armed(_network(), schedule)

    def test_unknown_switch_and_clock_rejected(self):
        for kind, match in (("queue_squeeze", "no switch"),
                            ("clock_step", "no clock")):
            schedule = FaultSchedule()
            schedule.add(kind, 0, target="nope")
            with pytest.raises(ValueError, match=match):
                _armed(_network(), schedule)

    def test_cp_faults_require_deployment(self):
        schedule = FaultSchedule()
        schedule.add("cp_crash", 0, target="sw0")
        with pytest.raises(ValueError, match="deployment"):
            _armed(_network(), schedule)

    def test_link_target_accepts_either_orientation(self):
        schedule = FaultSchedule()
        schedule.add("link_down", 0, target="sw1-sw0")
        network = _network()
        _armed(network, schedule)
        network.run(until=1)
        assert not _link(network).up


class TestLinkFaults:
    def test_link_down_applies_and_reverts(self):
        schedule = FaultSchedule()
        schedule.add("link_down", 1 * MS, target="sw0-sw1",
                     duration_ns=2 * MS)
        network = _network()
        injector = _armed(network, schedule)
        link = _link(network)
        network.run(until=2 * MS)
        assert not link.up
        network.run(until=4 * MS)
        assert link.up
        assert injector.applied == 1 and injector.reverted == 1
        assert [(r.action, r.kind) for r in injector.log] == [
            ("apply", "link_down"), ("revert", "link_down")]

    def test_link_loss_swaps_model_and_restores_previous(self):
        schedule = FaultSchedule()
        schedule.add("link_loss", 1 * MS, target="sw0-sw1",
                     duration_ns=1 * MS, model="gilbert_elliott",
                     p_loss_bad=0.9)
        network = _network()
        _armed(network, schedule)
        link = _link(network)
        network.run(until=1 * MS + 1)
        assert isinstance(link.loss, GilbertElliottLoss)
        assert link.loss.p_loss_bad == 0.9
        network.run(until=3 * MS)
        assert isinstance(link.loss, NoLoss)

    def test_link_loss_unknown_model_rejected(self):
        schedule = FaultSchedule()
        schedule.add("link_loss", 0, target="sw0-sw1", model="quantum")
        network = _network()
        _armed(network, schedule)
        with pytest.raises(ValueError, match="unknown model"):
            network.run(until=1 * MS)

    def test_link_delay_spike_applies_and_clears(self):
        schedule = FaultSchedule()
        schedule.add("link_delay", 1 * MS, target="sw0-sw1",
                     duration_ns=1 * MS, extra_ns=250_000)
        network = _network()
        _armed(network, schedule)
        link = _link(network)
        network.run(until=1 * MS + 1)
        assert link.extra_delay_ns == 250_000
        network.run(until=3 * MS)
        assert link.extra_delay_ns == 0

    def test_wildcard_hits_every_link(self):
        schedule = FaultSchedule()
        schedule.add("link_down", 0, target="*", duration_ns=0)
        network = _network()
        _armed(network, schedule)
        network.run(until=1)
        assert all(not l.up for l in network.links)  # permanent: no revert


class TestSwitchFaults:
    def test_queue_squeeze_shrinks_and_restores_capacity(self):
        schedule = FaultSchedule()
        schedule.add("queue_squeeze", 1 * MS, target="sw0",
                     duration_ns=1 * MS, capacity=4)
        network = _network()
        _armed(network, schedule)
        switch = network.switch("sw0")
        queues = [switch.ports[p].egress.queue
                  for p in switch.connected_ports()]
        originals = [q.capacity_packets for q in queues]
        network.run(until=1 * MS + 1)
        assert all(q.capacity_packets == 4 for q in queues)
        network.run(until=3 * MS)
        assert [q.capacity_packets for q in queues] == originals

    def test_unit_stall_pauses_and_resumes_egress(self):
        schedule = FaultSchedule()
        schedule.add("unit_stall", 1 * MS, target="sw0", duration_ns=1 * MS)
        network = _network()
        _armed(network, schedule)
        switch = network.switch("sw0")
        queues = [switch.ports[p].egress.queue
                  for p in switch.connected_ports()]
        network.run(until=1 * MS + 1)
        assert all(q.paused for q in queues)
        network.run(until=3 * MS)
        assert not any(q.paused for q in queues)


class TestControlPlaneAndClockFaults:
    def _deployed(self, schedule):
        network = _network()
        deployment = SpeedlightDeployment(network, DeploymentConfig(
            metric="packet_count"))
        injector = _armed(network, schedule, deployment=deployment)
        return network, deployment, injector

    def test_cp_crash_and_restart(self):
        schedule = FaultSchedule()
        schedule.add("cp_crash", 1 * MS, target="sw0", duration_ns=2 * MS)
        network, deployment, _ = self._deployed(schedule)
        cp = deployment.control_planes["sw0"]
        network.run(until=2 * MS)
        assert cp.crashes == 1
        assert not cp.channel.online
        network.run(until=4 * MS)
        assert cp.channel.online  # restarted (and re-polled its registers)

    def test_cp_overflow_and_slow_tweak_channel(self):
        schedule = FaultSchedule()
        schedule.add("cp_overflow", 1 * MS, target="sw1",
                     duration_ns=1 * MS, capacity=5)
        schedule.add("cp_slow", 1 * MS, target="sw1",
                     duration_ns=1 * MS, scale=4.0)
        network, deployment, _ = self._deployed(schedule)
        channel = deployment.control_planes["sw1"].channel
        original = channel.capacity
        network.run(until=1 * MS + 1)
        assert channel.capacity == 5 and channel.service_scale == 4.0
        network.run(until=3 * MS)
        assert channel.capacity == original and channel.service_scale == 1.0

    def test_clock_holdover_suspends_ptp_discipline(self):
        schedule = FaultSchedule()
        schedule.add("clock_holdover", 1 * MS, target="sw0",
                     duration_ns=2 * MS)
        network = _network()
        _armed(network, schedule)
        network.run(until=2 * MS)
        assert "sw0" in network.ptp._holdover
        network.run(until=4 * MS)
        assert not network.ptp._holdover

    def test_clock_step_applies_instant_offset(self):
        schedule = FaultSchedule()
        schedule.add("clock_step", 1 * MS, target="sw1", delta_ns=50_000)
        network = _network()
        injector = _armed(network, schedule)
        clock = network.ptp.clocks["sw1"]
        before = clock.offset_ns
        network.run(until=1 * MS + 1)
        assert clock.offset_ns == before + 50_000
        assert injector.applied == 1 and injector.reverted == 0
