"""Tests for the composable fault-profile algebra (docs/FAULTS.md).

The contract under test: profiles are JSON-round-trippable specs that
compile deterministically against a ProfileContext; composing,
reordering, or dropping parts never reshuffles another part's events;
and every compiled event lands inside the compile window.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (FAULT_KINDS, INSTANT_KINDS, Cascade, Compose,
                          CorrelatedGroup, FaultInjector, FaultProfile,
                          IndependentFaults, MaintenanceWindow,
                          ProfileContext, attribute_epochs)
from repro.sim.engine import MS
from repro.topology import leaf_spine

CTX = ProfileContext(horizon_ns=50 * MS, links=("sw0-sw1", "sw1-sw2"),
                     switches=("sw0", "sw1", "sw2"),
                     clocks=("sw0", "sw1", "sw2"),
                     start_ns=10 * MS, seed=7)


def _multiset(schedule):
    return sorted(json.dumps(e.to_jsonable(), sort_keys=True)
                  for e in schedule)


class TestProfileContext:
    def test_for_topology_uses_fabric_links_only(self):
        ctx = ProfileContext.for_topology(leaf_spine(hosts_per_leaf=2),
                                          horizon_ns=50 * MS, seed=1)
        assert ctx.switches == ("leaf0", "leaf1", "spine0", "spine1")
        assert ctx.clocks == ctx.switches
        # Host-facing links never appear as fault targets.
        assert ctx.links == ("leaf0-spine0", "leaf0-spine1",
                            "leaf1-spine0", "leaf1-spine1")

    def test_incident_links(self):
        assert CTX.incident_links("sw1") == ("sw0-sw1", "sw1-sw2")
        assert CTX.incident_links("sw0") == ("sw0-sw1",)

    def test_switch_adjacency(self):
        assert CTX.switch_adjacency() == {
            "sw0": ("sw1",), "sw1": ("sw0", "sw2"), "sw2": ("sw1",)}

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="horizon_ns"):
            ProfileContext(horizon_ns=0)
        with pytest.raises(ValueError, match="start_ns"):
            ProfileContext(horizon_ns=1, start_ns=-1)

    def test_lists_normalized_to_tuples(self):
        ctx = ProfileContext(horizon_ns=1, links=["a-b"], switches=["a"])
        assert ctx.links == ("a-b",) and ctx.switches == ("a",)


class TestJsonRoundTrip:
    SPECS = [
        IndependentFaults(intensity=1.5, kinds=("link_down", "cp_crash"),
                          mean_duration_ns=3 * MS, stream="alt"),
        CorrelatedGroup(switch="sw1", at_ns=20 * MS, duration_ns=4 * MS,
                        jitter_ns=100, link_kind="link_loss",
                        switch_kind="cp_slow"),
        MaintenanceWindow(targets=("sw0-sw1", "sw1-sw2"), offset_ns=5 * MS,
                          duration_ns=2 * MS, stagger_ns=1 * MS),
        Cascade(origin="sw0", probability=0.75, spread_delay_ns=2 * MS,
                max_depth=2, at_ns=15 * MS, include_cp=True),
        Compose(parts=(IndependentFaults(intensity=0.5),
                       CorrelatedGroup(switch="sw2"))),
        # Nested composition survives serialization too.
        Compose(parts=(Compose(parts=(MaintenanceWindow(
            targets=("sw0-sw1",)),)),)),
    ]

    @pytest.mark.parametrize("spec", SPECS,
                             ids=lambda s: s.profile_type)
    def test_round_trip(self, spec):
        data = spec.to_jsonable()
        restored = FaultProfile.from_jsonable(data)
        assert restored == spec
        assert restored.to_jsonable() == data

    @pytest.mark.parametrize("spec", SPECS,
                             ids=lambda s: s.profile_type)
    def test_round_trip_compiles_identically(self, spec):
        restored = FaultProfile.from_jsonable(spec.to_jsonable())
        assert (restored.compile(CTX).to_jsonable()
                == spec.compile(CTX).to_jsonable())

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile type"):
            FaultProfile.from_jsonable({"type": "gremlins"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            FaultProfile.from_jsonable(
                {"type": "independent", "intensity": 1.0, "bogus": 3})

    def test_missing_type_tag_rejected(self):
        with pytest.raises(ValueError, match="'type' tag"):
            FaultProfile.from_jsonable({"intensity": 1.0})
        with pytest.raises(ValueError, match="'type' tag"):
            FaultProfile.from_jsonable("independent")


class TestComposition:
    A = IndependentFaults(intensity=4.0, kinds=("link_down",))
    B = CorrelatedGroup(switch="sw1", at_ns=20 * MS)
    C = MaintenanceWindow(targets=("sw1-sw2",), offset_ns=5 * MS)

    def test_or_flattens(self):
        composite = self.A | self.B | self.C
        assert isinstance(composite, Compose)
        assert composite.parts == (self.A, self.B, self.C)

    def test_add_is_or(self):
        assert (self.A + self.B) == (self.A | self.B)

    def test_reorder_independence(self):
        ab = (self.A | self.B | self.C).compile(CTX)
        ba = (self.C | self.B | self.A).compile(CTX)
        assert _multiset(ab) == _multiset(ba)

    def test_composing_never_reshuffles_a_part(self):
        # Every event A produces alone appears verbatim in any composite
        # that contains A: parts draw from independent RNG streams.
        alone = self.A.compile(CTX)
        composed = [e.to_jsonable()
                    for e in (self.A | self.B | self.C).compile(CTX)]
        assert alone, "fixture should produce events"
        for event in alone:
            assert event.to_jsonable() in composed

    def test_dropping_a_part_removes_exactly_its_events(self):
        full = _multiset((self.A | self.C).compile(CTX))
        without = _multiset(self.A.compile(CTX))
        removed = _multiset(self.C.compile(CTX))
        assert sorted(without + removed) == full

    def test_all_zero_composite_compiles_empty(self):
        composite = (IndependentFaults(intensity=0.0)
                     | IndependentFaults(intensity=0.0, stream="other")
                     | MaintenanceWindow(targets=()))
        assert not composite.compile(CTX)

    def test_deterministic(self):
        composite = self.A | self.B | Cascade(origin="sw0", probability=1.0)
        assert (composite.compile(CTX).to_jsonable()
                == composite.compile(CTX).to_jsonable())

    def test_non_profile_part_rejected(self):
        with pytest.raises(TypeError, match="FaultProfile"):
            Compose(parts=("link_down",))


class TestIndependentFaults:
    def test_zero_intensity_compiles_empty(self):
        assert not IndependentFaults(intensity=0.0).compile(CTX)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            IndependentFaults(intensity=-0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            IndependentFaults(intensity=1.0, kinds=("link_down", "bitrot"))

    def test_seed_changes_schedule(self):
        spec = IndependentFaults(intensity=3.0)
        a = spec.compile(CTX)
        b = spec.compile(ProfileContext(
            horizon_ns=CTX.horizon_ns, links=CTX.links,
            switches=CTX.switches, clocks=CTX.clocks,
            start_ns=CTX.start_ns, seed=CTX.seed + 1))
        assert a.to_jsonable() != b.to_jsonable()

    def test_adding_a_target_never_reshuffles_others(self):
        spec = IndependentFaults(intensity=2.0)
        one = spec.compile(ProfileContext(
            horizon_ns=50 * MS, links=("sw0-sw1",), start_ns=10 * MS,
            seed=7))
        two = spec.compile(ProfileContext(
            horizon_ns=50 * MS, links=("sw0-sw1", "sw1-sw2"),
            start_ns=10 * MS, seed=7))
        keep = [e.to_jsonable() for e in one if e.target == "sw0-sw1"]
        both = [e.to_jsonable() for e in two if e.target == "sw0-sw1"]
        assert keep == both

    def test_kind_subset_respected(self):
        schedule = IndependentFaults(intensity=5.0,
                                     kinds=("cp_crash",)).compile(CTX)
        assert schedule and all(e.kind == "cp_crash" for e in schedule)

    def test_events_inside_window_and_durations_clamped(self):
        schedule = IndependentFaults(intensity=4.0).compile(CTX)
        assert len(schedule) > 0
        for event in schedule:
            assert CTX.start_ns <= event.at_ns < CTX.end_ns
            assert event.at_ns + event.duration_ns <= CTX.end_ns
            if event.kind in INSTANT_KINDS:
                assert event.duration_ns == 0


class TestCorrelatedGroup:
    def test_rack_loss_downs_all_links_and_cp_at_same_instant(self):
        schedule = CorrelatedGroup(switch="sw1", at_ns=20 * MS).compile(CTX)
        events = list(schedule)
        links = {e.target for e in events if e.kind == "link_down"}
        cps = {e.target for e in events if e.kind == "cp_crash"}
        assert links == set(CTX.incident_links("sw1"))
        assert cps == {"sw1"}
        assert len(events) == len(links) + 1
        assert {e.at_ns for e in events} == {20 * MS}

    def test_victim_chosen_deterministically_when_unpinned(self):
        a = CorrelatedGroup().compile(CTX)
        b = CorrelatedGroup().compile(CTX)
        assert a.to_jsonable() == b.to_jsonable()

    def test_unknown_switch_rejected(self):
        with pytest.raises(ValueError, match="unknown switch"):
            CorrelatedGroup(switch="sw9").compile(CTX)

    def test_kind_layers_validated(self):
        with pytest.raises(ValueError, match="link_kind"):
            CorrelatedGroup(link_kind="cp_crash")
        with pytest.raises(ValueError, match="switch_kind"):
            CorrelatedGroup(switch_kind="link_down")

    def test_rack_loss_lands_in_one_epoch_end_to_end(self):
        """The acceptance criterion: a compiled rack-loss group takes
        down all fabric links + the CP of one switch inside the *same*
        campaign epoch, visible in the per-epoch attribution."""
        from repro.core import DeploymentConfig, SpeedlightDeployment
        from repro.sim.network import Network, NetworkConfig
        from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

        topo = leaf_spine(hosts_per_leaf=1)
        rounds, interval = 6, 5 * MS
        horizon = rounds * interval
        ctx = ProfileContext.for_topology(topo, horizon_ns=horizon,
                                          start_ns=10 * MS, seed=3)
        group = CorrelatedGroup(switch="leaf0", at_ns=22 * MS,
                                duration_ns=3 * MS)
        schedule = group.compile(ctx)

        network = Network(topo, NetworkConfig(seed=3))
        stop_ns = horizon + 120 * MS
        PoissonWorkload(network, PoissonConfig(
            seed=4, rate_pps=5_000.0, stop_ns=stop_ns)).start()
        deployment = SpeedlightDeployment(network, DeploymentConfig(
            metric="packet_count", channel_state=True))
        injector = FaultInjector(network, schedule, deployment=deployment)
        injector.arm()
        epochs = deployment.schedule_campaign(rounds, interval)
        network.run(until=stop_ns)

        snapshots = [deployment.observer.snapshot(e) for e in epochs]
        attribution = attribute_epochs(injector.log, snapshots,
                                       horizon_ns=stop_ns)
        expected = ({("link_down", link)
                     for link in ctx.incident_links("leaf0")}
                    | {("cp_crash", "leaf0")})
        hits = [a for a in attribution
                if expected <= {(s.kind, s.target) for s in a.overlapping}]
        # The whole group lands together in at least one epoch's window.
        assert hits, "rack-loss group overlapped no epoch"


class TestMaintenanceWindow:
    def test_fully_deterministic_no_rng(self):
        spec = MaintenanceWindow(targets=("sw0-sw1", "sw1-sw2"),
                                 offset_ns=5 * MS, duration_ns=2 * MS,
                                 stagger_ns=1 * MS)
        events = list(spec.compile(CTX))
        assert [(e.target, e.at_ns, e.duration_ns) for e in events] == [
            ("sw0-sw1", CTX.start_ns + 5 * MS, 2 * MS),
            ("sw1-sw2", CTX.start_ns + 6 * MS, 2 * MS),
        ]

    def test_empty_targets_compile_empty(self):
        assert not MaintenanceWindow(targets=()).compile(CTX)


class TestCascade:
    def test_probability_one_spreads_to_max_depth(self):
        schedule = Cascade(origin="sw0", probability=1.0, at_ns=15 * MS,
                           max_depth=2, include_cp=True).compile(CTX)
        crashed = {e.target for e in schedule if e.kind == "cp_crash"}
        assert crashed == {"sw0", "sw1", "sw2"}

    def test_probability_zero_fails_origin_only(self):
        schedule = Cascade(origin="sw1", probability=0.0, at_ns=15 * MS,
                           include_cp=True).compile(CTX)
        crashed = {e.target for e in schedule if e.kind == "cp_crash"}
        assert crashed == {"sw1"}
        downed = {e.target for e in schedule if e.kind == "link_down"}
        assert downed == set(CTX.incident_links("sw1"))

    def test_max_depth_zero_stops_at_origin(self):
        schedule = Cascade(origin="sw0", probability=1.0, at_ns=15 * MS,
                           max_depth=0, include_cp=True).compile(CTX)
        crashed = {e.target for e in schedule if e.kind == "cp_crash"}
        assert crashed == {"sw0"}

    def test_unknown_origin_rejected(self):
        with pytest.raises(ValueError, match="unknown switch"):
            Cascade(origin="sw9").compile(CTX)

    def test_propagation_delays_are_clamped_into_window(self):
        # Origin fails 1ns before the horizon edge: every propagated
        # failure would overshoot, but the clamp point pulls them back.
        schedule = Cascade(origin="sw0", probability=1.0,
                           at_ns=CTX.end_ns - 1, include_cp=True).compile(CTX)
        assert len(schedule) > 0
        for event in schedule:
            assert CTX.start_ns <= event.at_ns < CTX.end_ns
            assert event.at_ns + event.duration_ns <= CTX.end_ns


profile_strategy = st.one_of(
    st.builds(IndependentFaults,
              intensity=st.sampled_from([0.0, 1.0, 4.0]),
              mean_duration_ns=st.sampled_from([1, 5 * MS, 200 * MS])),
    st.builds(CorrelatedGroup,
              at_ns=st.one_of(st.none(),
                              st.integers(min_value=0,
                                          max_value=200 * MS)),
              duration_ns=st.sampled_from([0, 3 * MS, 500 * MS]),
              jitter_ns=st.sampled_from([0, 1 * MS, 100 * MS])),
    st.builds(MaintenanceWindow,
              targets=st.just(("sw0-sw1", "sw1-sw2")),
              offset_ns=st.integers(min_value=0, max_value=100 * MS),
              duration_ns=st.sampled_from([0, 2 * MS, 500 * MS]),
              stagger_ns=st.sampled_from([0, 30 * MS])),
    st.builds(Cascade,
              probability=st.sampled_from([0.0, 0.5, 1.0]),
              at_ns=st.one_of(st.none(),
                              st.integers(min_value=0,
                                          max_value=200 * MS)),
              duration_ns=st.sampled_from([0, 5 * MS, 500 * MS]),
              include_cp=st.booleans()),
)


@settings(max_examples=40, deadline=None)
@given(parts=st.lists(profile_strategy, min_size=1, max_size=3),
       seed=st.integers(min_value=0, max_value=1000))
def test_every_compiled_event_is_clamped_into_the_window(parts, seed):
    """Property: whatever specs are composed — including correlated
    jitter, maintenance offsets, and cascade delays that overshoot the
    horizon — every event lands in [start_ns, end_ns) with its revert
    inside the window and instant kinds at duration 0."""
    ctx = ProfileContext(horizon_ns=50 * MS, links=CTX.links,
                         switches=CTX.switches, clocks=CTX.clocks,
                         start_ns=10 * MS, seed=seed)
    composite = Compose(parts=tuple(parts))
    for event in composite.compile(ctx):
        assert ctx.start_ns <= event.at_ns < ctx.end_ns
        assert event.at_ns + event.duration_ns <= ctx.end_ns
        if event.kind in INSTANT_KINDS:
            assert event.duration_ns == 0
        assert event.kind in FAULT_KINDS
