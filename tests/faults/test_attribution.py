"""Tests for per-epoch fault attribution (audit log -> spans -> epochs)."""

import pytest

from repro.faults import FaultSpan, attribute_epochs, spans_from_log
from repro.faults.injector import InjectionRecord
from repro.sim.engine import MS


def _rec(time_ns, action, kind="link_down", target="a-b"):
    return InjectionRecord(time_ns=time_ns, action=action, kind=kind,
                           target=target)


class TestSpansFromLog:
    def test_pairs_apply_and_revert(self):
        spans = spans_from_log([_rec(100, "apply"), _rec(500, "revert")])
        assert spans == [FaultSpan(kind="link_down", target="a-b",
                                   start_ns=100, end_ns=500)]

    def test_fifo_pairing_for_recurring_faults(self):
        # The same fault twice on the same target: reverts match the
        # *earliest* open apply, reconstructing the true intervals.
        spans = spans_from_log([
            _rec(100, "apply"), _rec(200, "apply"),
            _rec(300, "revert"), _rec(900, "revert"),
        ])
        assert [(s.start_ns, s.end_ns) for s in spans] == [(100, 300),
                                                           (200, 900)]

    def test_unreverted_fault_is_an_open_span(self):
        spans = spans_from_log([_rec(100, "apply")])
        assert spans == [FaultSpan(kind="link_down", target="a-b",
                                   start_ns=100, end_ns=None)]

    def test_distinct_targets_do_not_cross_pair(self):
        spans = spans_from_log([
            _rec(100, "apply", target="a-b"),
            _rec(150, "apply", target="b-c"),
            _rec(200, "revert", target="b-c"),
        ])
        by_target = {s.target: s for s in spans}
        assert by_target["a-b"].end_ns is None
        assert by_target["b-c"].end_ns == 200

    def test_revert_without_apply_rejected(self):
        with pytest.raises(ValueError, match="revert without apply"):
            spans_from_log([_rec(100, "revert")])

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown log action"):
            spans_from_log([_rec(100, "flap")])

    def test_out_of_order_log_is_sorted_first(self):
        spans = spans_from_log([_rec(500, "revert"), _rec(100, "apply")])
        assert spans == [FaultSpan(kind="link_down", target="a-b",
                                   start_ns=100, end_ns=500)]


class TestFaultSpanOverlap:
    def test_closed_span_overlap(self):
        span = FaultSpan(kind="link_down", target="a-b",
                         start_ns=100, end_ns=200)
        assert span.overlaps(150, 300)
        assert span.overlaps(0, 100)      # touches at the start edge
        assert span.overlaps(200, 400)    # touches at the end edge
        assert not span.overlaps(201, 400)
        assert not span.overlaps(0, 99)

    def test_open_span_overlaps_everything_after_start(self):
        span = FaultSpan(kind="cp_crash", target="sw0", start_ns=100)
        assert span.overlaps(500, 600)
        assert not span.overlaps(0, 99)

    def test_instant_span_counts_inside_window(self):
        span = FaultSpan(kind="clock_step", target="sw0",
                         start_ns=150, end_ns=150)
        assert span.overlaps(100, 200)
        assert not span.overlaps(160, 200)


class TestAttributeEpochs:
    def _snapshots(self):
        # Two real campaign epochs from a faulted leaf-spine run keep
        # this honest without hand-building GlobalSnapshot internals.
        from repro.core import DeploymentConfig, SpeedlightDeployment
        from repro.faults import CorrelatedGroup, FaultInjector, \
            ProfileContext
        from repro.sim.network import Network, NetworkConfig
        from repro.topology import leaf_spine
        from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

        topo = leaf_spine(hosts_per_leaf=1)
        ctx = ProfileContext.for_topology(topo, horizon_ns=20 * MS,
                                          start_ns=10 * MS, seed=11)
        schedule = CorrelatedGroup(switch="spine0", at_ns=17 * MS,
                                   duration_ns=2 * MS).compile(ctx)
        network = Network(topo, NetworkConfig(seed=11))
        stop_ns = 150 * MS
        PoissonWorkload(network, PoissonConfig(
            seed=12, rate_pps=5_000.0, stop_ns=stop_ns)).start()
        deployment = SpeedlightDeployment(network, DeploymentConfig(
            metric="packet_count", channel_state=True))
        injector = FaultInjector(network, schedule, deployment=deployment)
        injector.arm()
        epochs = deployment.schedule_campaign(4, 5 * MS)
        network.run(until=stop_ns)
        snapshots = [deployment.observer.snapshot(e) for e in epochs]
        return injector, snapshots, stop_ns

    def test_overlapping_spans_attributed_to_the_right_epochs(self):
        injector, snapshots, stop_ns = self._snapshots()
        attribution = attribute_epochs(injector.log, snapshots,
                                       horizon_ns=stop_ns)
        assert [a.epoch for a in attribution] == sorted(
            s.epoch for s in snapshots)
        faulted = [a for a in attribution if a.faulted]
        assert faulted, "the 17ms group must overlap some epoch window"
        for a in faulted:
            for span in a.overlapping:
                assert span.overlaps(a.window_start_ns, a.window_end_ns)
        # Epochs whose windows closed before the fault stay clean.
        before = [a for a in attribution
                  if a.window_end_ns < 17 * MS]
        assert all(not a.faulted for a in before)

    def test_injector_attribution_convenience_matches(self):
        injector, snapshots, stop_ns = self._snapshots()
        direct = attribute_epochs(injector.log, snapshots,
                                  horizon_ns=stop_ns)
        via_method = injector.attribution(snapshots, horizon_ns=stop_ns)
        assert ([a.to_jsonable() for a in direct]
                == [a.to_jsonable() for a in via_method])

    def test_jsonable_shape(self):
        injector, snapshots, stop_ns = self._snapshots()
        for a in attribute_epochs(injector.log, snapshots,
                                  horizon_ns=stop_ns):
            data = a.to_jsonable()
            assert set(data) == {"epoch", "window_start_ns",
                                 "window_end_ns", "complete", "consistent",
                                 "excluded_devices", "retries",
                                 "overlapping"}
            for span in data["overlapping"]:
                assert set(span) == {"kind", "target", "start_ns", "end_ns"}
