"""Tests for fault schedules and profile compilation."""

import pytest

from repro.faults import (FAULT_KINDS, INSTANT_KINDS, FaultEvent,
                          FaultSchedule, compile_profile)
from repro.sim.engine import MS


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(at_ns=0, kind="gremlins")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at_ns"):
            FaultEvent(at_ns=-1, kind="link_down")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_ns"):
            FaultEvent(at_ns=0, kind="link_down", duration_ns=-5)

    def test_instant_kind_refuses_duration(self):
        with pytest.raises(ValueError, match="instantaneous"):
            FaultEvent(at_ns=0, kind="clock_step", duration_ns=100)

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            FaultEvent(at_ns=0, kind="link_down", target="")

    def test_layer_property(self):
        assert FaultEvent(at_ns=0, kind="cp_crash").layer == "switch"
        assert FaultEvent(at_ns=0, kind="link_delay").layer == "link"

    def test_every_kind_has_a_layer(self):
        for kind, layer in FAULT_KINDS.items():
            assert layer in ("link", "switch", "clock"), kind
        assert INSTANT_KINDS <= set(FAULT_KINDS)


class TestFaultSchedule:
    def test_add_keeps_time_order(self):
        schedule = FaultSchedule()
        schedule.add("link_down", 500, target="a-b", duration_ns=10)
        schedule.add("cp_crash", 100, target="sw0")
        assert [e.at_ns for e in schedule] == [100, 500]
        assert len(schedule) == 2 and bool(schedule)

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert len(FaultSchedule()) == 0

    def test_json_round_trip(self):
        schedule = FaultSchedule()
        schedule.add("link_loss", 1000, target="a-b", duration_ns=2000,
                     model="bernoulli", p=0.25)
        schedule.add("clock_step", 50, target="sw1", delta_ns=-7000)
        data = schedule.to_jsonable()
        restored = FaultSchedule.from_jsonable(data)
        assert restored.to_jsonable() == data
        assert [e.kind for e in restored] == ["clock_step", "link_loss"]
        assert restored.events[1].params["p"] == 0.25

    def test_jsonable_params_sorted_for_stable_fingerprints(self):
        e1 = FaultEvent(at_ns=0, kind="link_loss", target="a-b",
                        params={"b": 2, "a": 1})
        e2 = FaultEvent(at_ns=0, kind="link_loss", target="a-b",
                        params={"a": 1, "b": 2})
        assert list(e1.to_jsonable()["params"]) == ["a", "b"]
        assert e1.to_jsonable() == e2.to_jsonable()

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            FaultSchedule(events=["link_down"])


class TestCompileProfileShim:
    """`compile_profile` survives only as a deprecated shim over
    `IndependentFaults`; behavioral coverage of the compiler itself
    lives in tests/faults/test_profile.py."""

    _KWARGS = dict(intensity=1.0, horizon_ns=50 * MS,
                   links=["sw0-sw1"], switches=["sw0", "sw1"],
                   clocks=["sw0", "sw1"], seed=7, start_ns=10 * MS)

    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="compile_profile"):
            compile_profile(**self._KWARGS)

    def test_matches_independent_faults_exactly(self):
        from repro.faults import IndependentFaults, ProfileContext

        with pytest.warns(DeprecationWarning):
            legacy = compile_profile(**self._KWARGS)
        context = ProfileContext(horizon_ns=50 * MS, links=("sw0-sw1",),
                                 switches=("sw0", "sw1"),
                                 clocks=("sw0", "sw1"),
                                 start_ns=10 * MS, seed=7)
        spec = IndependentFaults(intensity=1.0).compile(context)
        assert legacy.to_jsonable() == spec.to_jsonable()

    def test_negative_intensity_rejected(self):
        with pytest.warns(DeprecationWarning), \
                pytest.raises(ValueError, match="intensity"):
            compile_profile(**dict(self._KWARGS, intensity=-0.5))

    def test_unknown_kind_rejected(self):
        with pytest.warns(DeprecationWarning), \
                pytest.raises(ValueError, match="unknown fault kind"):
            compile_profile(**dict(self._KWARGS,
                                   kinds=["link_down", "bitrot"]))
