"""Tests for fault schedules and profile compilation."""

import pytest

from repro.faults import (FAULT_KINDS, INSTANT_KINDS, FaultEvent,
                          FaultSchedule, compile_profile)
from repro.sim.engine import MS


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(at_ns=0, kind="gremlins")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at_ns"):
            FaultEvent(at_ns=-1, kind="link_down")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_ns"):
            FaultEvent(at_ns=0, kind="link_down", duration_ns=-5)

    def test_instant_kind_refuses_duration(self):
        with pytest.raises(ValueError, match="instantaneous"):
            FaultEvent(at_ns=0, kind="clock_step", duration_ns=100)

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            FaultEvent(at_ns=0, kind="link_down", target="")

    def test_layer_property(self):
        assert FaultEvent(at_ns=0, kind="cp_crash").layer == "switch"
        assert FaultEvent(at_ns=0, kind="link_delay").layer == "link"

    def test_every_kind_has_a_layer(self):
        for kind, layer in FAULT_KINDS.items():
            assert layer in ("link", "switch", "clock"), kind
        assert INSTANT_KINDS <= set(FAULT_KINDS)


class TestFaultSchedule:
    def test_add_keeps_time_order(self):
        schedule = FaultSchedule()
        schedule.add("link_down", 500, target="a-b", duration_ns=10)
        schedule.add("cp_crash", 100, target="sw0")
        assert [e.at_ns for e in schedule] == [100, 500]
        assert len(schedule) == 2 and bool(schedule)

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert len(FaultSchedule()) == 0

    def test_json_round_trip(self):
        schedule = FaultSchedule()
        schedule.add("link_loss", 1000, target="a-b", duration_ns=2000,
                     model="bernoulli", p=0.25)
        schedule.add("clock_step", 50, target="sw1", delta_ns=-7000)
        data = schedule.to_jsonable()
        restored = FaultSchedule.from_jsonable(data)
        assert restored.to_jsonable() == data
        assert [e.kind for e in restored] == ["clock_step", "link_loss"]
        assert restored.events[1].params["p"] == 0.25

    def test_jsonable_params_sorted_for_stable_fingerprints(self):
        e1 = FaultEvent(at_ns=0, kind="link_loss", target="a-b",
                        params={"b": 2, "a": 1})
        e2 = FaultEvent(at_ns=0, kind="link_loss", target="a-b",
                        params={"a": 1, "b": 2})
        assert list(e1.to_jsonable()["params"]) == ["a", "b"]
        assert e1.to_jsonable() == e2.to_jsonable()

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            FaultSchedule(events=["link_down"])


class TestCompileProfile:
    def _compile(self, **overrides):
        kwargs = dict(intensity=1.0, horizon_ns=50 * MS,
                      links=["sw0-sw1"], switches=["sw0", "sw1"],
                      clocks=["sw0", "sw1"], seed=7, start_ns=10 * MS)
        kwargs.update(overrides)
        return compile_profile(**kwargs)

    def test_zero_intensity_compiles_empty(self):
        assert not self._compile(intensity=0.0)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            self._compile(intensity=-0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            self._compile(kinds=["link_down", "bitrot"])

    def test_deterministic(self):
        assert self._compile().to_jsonable() == self._compile().to_jsonable()

    def test_seed_changes_schedule(self):
        a = self._compile(intensity=3.0)
        b = self._compile(intensity=3.0, seed=8)
        assert a.to_jsonable() != b.to_jsonable()

    def test_adding_a_target_never_reshuffles_others(self):
        # Per-(kind, target) RNG streams: sw0-sw1's events are identical
        # whether or not a second link exists.
        one = self._compile(intensity=2.0, links=["sw0-sw1"])
        two = self._compile(intensity=2.0, links=["sw0-sw1", "sw1-sw2"])
        keep = [e.to_jsonable() for e in one if e.target == "sw0-sw1"]
        both = [e.to_jsonable() for e in two if e.target == "sw0-sw1"]
        assert keep == both

    def test_events_inside_window_and_durations_clamped(self):
        start, horizon = 10 * MS, 50 * MS
        schedule = self._compile(intensity=4.0)
        assert len(schedule) > 0
        for event in schedule:
            assert start <= event.at_ns < start + horizon
            assert event.at_ns + event.duration_ns <= start + horizon
            if event.kind in INSTANT_KINDS:
                assert event.duration_ns == 0

    def test_kind_subset_respected(self):
        schedule = self._compile(intensity=5.0, kinds=["cp_crash"])
        assert schedule and all(e.kind == "cp_crash" for e in schedule)
