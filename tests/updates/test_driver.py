"""Tests for the update driver, swap semantics and the seal baseline."""

import pytest

from repro.core import deploy
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine
from repro.updates import (TimedSwap, UpdateContext, UpdateDriver,
                           UpdateSchedule, inject_clock_error, noiseless_ptp)

ROUTES = (("leaf0", "server1", ("spine1",)),
          ("spine0", "server1", ("leaf0",)))


def _net(seed=3, **kwargs):
    return Network(leaf_spine(hosts_per_leaf=1),
                   NetworkConfig(seed=seed, **kwargs))


def _schedule(net, plan):
    ctx = UpdateContext.for_topology(net.topology, horizon_ns=100 * MS)
    return plan.compile(ctx)


class TestSealBaseline:
    def test_build_ends_sealed_at_generation_zero(self):
        # install_route bumps per install during topology build; the
        # network seals afterwards so every device starts uniformly at
        # generation 0 (otherwise construction order would leak into
        # the fib_version metric).
        net = _net()
        for name in net.switches:
            sw = net.switch(name)
            assert sw.fib_generation == 0
            assert all(v == 0 for v in sw.route_version.values())
            assert all(v == 0 for v in sw.last_matched_version)

    def test_swap_counts_up_from_seal(self):
        net = _net()
        sw = net.switch("leaf0")
        port = net.port_toward("leaf0", "spine1")
        generation = sw.apply_route_swap([("server1", [port])])
        assert generation == 1
        assert sw.fib_generation == 1


class TestSwapSemantics:
    def test_swap_bumps_generation_exactly_once(self):
        net = _net()
        sw = net.switch("leaf0")
        port = net.port_toward("leaf0", "spine1")
        sw.apply_route_swap([("server1", [port]), ("server0", [port])])
        assert sw.fib_generation == 1
        # Every surviving rule is re-tagged and every ingress register
        # refreshed — the whole table flipped, not two rules.
        assert set(sw.route_version.values()) == {1}
        assert set(sw.last_matched_version) == {1}

    def test_empty_ports_removes_route(self):
        net = _net()
        sw = net.switch("spine0")
        assert "server1" in sw.routes
        sw.apply_route_swap([("server1", ())])
        assert "server1" not in sw.routes
        assert "server1" not in sw.route_version

    def test_scheduled_swap_fires_on_local_clock(self):
        net = _net(ptp_config=noiseless_ptp())
        offsets = inject_clock_error(net, 50_000, seed=69)
        schedule = _schedule(net, TimedSwap(at_ns=20 * MS, routes=ROUTES))
        driver = UpdateDriver(net, schedule)
        driver.arm()
        net.run(until=40 * MS)
        applied = {a.device: a for a in driver.applied}
        assert set(applied) == {"leaf0", "spine0"}
        for device, record in applied.items():
            # offset > 0 means the clock runs ahead -> fires early.
            assert record.true_ns == 20 * MS - offsets[device]
            assert record.generation == 1


class TestDriver:
    def test_empty_schedule_is_strict_noop(self):
        net = _net()
        driver = UpdateDriver(net, UpdateSchedule())
        assert driver.arm() == 0
        assert all(net.switch(s).drop_monitor is None
                   for s in net.switches)
        before = net.sim.events_run
        net.run(until=10 * MS)
        # Arming scheduled nothing of its own; only ambient protocol
        # events (none here: no deployment, no traffic).
        assert driver.applied == []
        assert driver.drops == []
        assert net.sim.events_run >= before

    def test_rearm_rejected(self):
        net = _net()
        driver = UpdateDriver(net, UpdateSchedule())
        driver.arm()
        with pytest.raises(RuntimeError):
            driver.arm()

    def test_unknown_via_neighbor_rejected(self):
        net = _net()
        plan = TimedSwap(at_ns=10 * MS,
                         routes=(("leaf0", "server1", ("tor9",)),))
        driver = UpdateDriver(net, _schedule(net, plan))
        with pytest.raises(ValueError):
            driver.arm()


class TestClockErrorInjection:
    def test_zero_sigma_is_identity(self):
        net = _net(ptp_config=noiseless_ptp())
        offsets = inject_clock_error(net, 0, seed=69)
        assert set(offsets.values()) == {0}

    def test_offsets_content_keyed_not_order_keyed(self):
        # The draw depends only on (seed, switch name), so a shard that
        # owns a subset of the switches realizes the same offsets the
        # single-process run does -> verdicts can't depend on sharding.
        net_a = _net(ptp_config=noiseless_ptp())
        net_b = _net(seed=4, ptp_config=noiseless_ptp())
        a = inject_clock_error(net_a, 25_000, seed=69)
        b = inject_clock_error(net_b, 25_000, seed=69)
        assert a == b

    def test_offsets_scale_linearly_with_sigma(self):
        a = inject_clock_error(_net(ptp_config=noiseless_ptp()),
                               10_000, seed=69)
        b = inject_clock_error(_net(ptp_config=noiseless_ptp()),
                               20_000, seed=69)
        for name in a:
            assert abs(b[name] - 2 * a[name]) <= 1  # integer rounding

    def test_noiseless_ptp_preserves_injected_offset(self):
        net = _net(ptp_config=noiseless_ptp())
        offsets = inject_clock_error(net, 50_000, seed=69)
        name = max(offsets, key=lambda n: abs(offsets[n]))
        net.run(until=1 * S)  # long past any default PTP sync interval
        clock = net.ptp.clocks[name]
        assert clock.true_time(2 * S) == 2 * S - offsets[name]


class TestDeployIntegration:
    def test_deploy_without_updates_has_no_driver(self):
        net = _net()
        deployment = deploy(net, metric="packet_count")
        assert deployment.update_driver is None

    def test_deploy_arms_plan(self):
        net = _net()
        deployment = deploy(net, metric="fib_version",
                            updates=TimedSwap(at_ns=20 * MS, routes=ROUTES),
                            update_horizon_ns=100 * MS)
        assert deployment.update_driver is not None
        assert deployment.update_driver.armed
        net.run(until=40 * MS)
        assert len(deployment.update_driver.applied) == 2

    def test_deploy_plan_requires_horizon(self):
        net = _net()
        with pytest.raises(ValueError):
            deploy(net, metric="fib_version",
                   updates=TimedSwap(at_ns=20 * MS, routes=ROUTES))
