"""Unit tests for the snapshot verdict logic (synthetic inputs)."""

from repro.sim.engine import MS
from repro.topology import leaf_spine
from repro.updates import (TimedSwap, UpdateContext, UpdateVerifier,
                           UpdateSchedule)
from repro.updates.driver import DropRecord


def _schedule(plan) -> UpdateSchedule:
    ctx = UpdateContext.for_topology(leaf_spine(hosts_per_leaf=1),
                                     horizon_ns=100 * MS)
    return plan.compile(ctx)


DETOUR = TimedSwap(at_ns=20 * MS, label="detour", routes=(
    ("leaf0", "server1", ("spine1",)),
    ("spine0", "server1", ("leaf0",))))
DRAIN = TimedSwap(at_ns=40 * MS, label="drain", routes=(
    ("leaf0", "server1", ("spine1",)),
    ("spine0", "server1", ())))


class TestAtomicity:
    def test_all_on_new_generation_scores_one(self):
        verifier = UpdateVerifier(_schedule(DETOUR))
        [wave] = verifier.schedule.waves
        verdict = verifier.verdict_data(
            wave, {"leaf0": 1, "spine0": 1, "leaf1": 0, "spine1": 0},
            epoch=7, drops=[])
        assert verdict.atomicity == 1.0
        assert verdict.conclusive
        assert verdict.stale_devices == ()

    def test_stale_device_lowers_score(self):
        verifier = UpdateVerifier(_schedule(DETOUR))
        [wave] = verifier.schedule.waves
        verdict = verifier.verdict_data(
            wave, {"leaf0": 0, "spine0": 1}, epoch=7, drops=[])
        assert verdict.atomicity == 0.5
        assert verdict.stale_devices == ("leaf0",)

    def test_untouched_devices_not_in_denominator(self):
        verifier = UpdateVerifier(_schedule(DETOUR))
        [wave] = verifier.schedule.waves
        # leaf1/spine1 still on generation 0 is *correct* — the wave
        # never updated them, so they cannot count against it.
        verdict = verifier.verdict_data(
            wave, {"leaf0": 1, "spine0": 1, "leaf1": 0, "spine1": 0},
            epoch=7, drops=[])
        assert verdict.devices_total == 2

    def test_expected_generations_accumulate_across_waves(self):
        verifier = UpdateVerifier(_schedule(DETOUR | DRAIN))
        assert verifier.expected_generations(0) == {"leaf0": 1, "spine0": 1}
        assert verifier.expected_generations(1) == {"leaf0": 2, "spine0": 2}
        wave = verifier.schedule.waves[1]
        verdict = verifier.verdict_data(
            wave, {"leaf0": 1, "spine0": 2}, epoch=8, drops=[])
        assert verdict.stale_devices == ("leaf0",)

    def test_unusable_cut_is_inconclusive_not_zero(self):
        verifier = UpdateVerifier(_schedule(DETOUR))
        [wave] = verifier.schedule.waves
        drops = [DropRecord(20 * MS, "leaf0", "ttl_expired", "server1")]
        verdict = verifier.verdict_data(wave, None, epoch=None, drops=drops)
        assert not verdict.conclusive
        assert verdict.atomicity is None
        assert verdict.loop_drops == 1  # drop counts stay valid


class TestDropAttribution:
    def test_drops_outside_window_excluded(self):
        verifier = UpdateVerifier(_schedule(DETOUR), margin_ns=1 * MS)
        [wave] = verifier.schedule.waves
        drops = [
            DropRecord(5 * MS, "leaf0", "ttl_expired", "server1"),
            DropRecord(20 * MS + 500_000, "leaf0", "ttl_expired", "server1"),
            DropRecord(90 * MS, "leaf0", "ttl_expired", "server1"),
        ]
        verdict = verifier.verdict_data(wave, {"leaf0": 1, "spine0": 1},
                                        epoch=1, drops=drops)
        assert verdict.loop_drops == 1

    def test_blackholes_attributed_to_withdrawing_device(self):
        verifier = UpdateVerifier(_schedule(DETOUR | DRAIN))
        wave = verifier.schedule.waves[1]
        drops = [
            # At spine0, whose drain wave withdrew a route: attributed.
            DropRecord(40 * MS, "spine0", "unroutable", "server1"),
            # Collateral at a device with no withdrawal this wave.
            DropRecord(40 * MS, "leaf1", "unroutable", "server1"),
        ]
        verdict = verifier.verdict_data(wave, {"leaf0": 2, "spine0": 2},
                                        epoch=2, drops=drops)
        assert verdict.blackhole_drops == 2
        assert verdict.attributed_blackholes == 1
        assert verdict.blackhole_devices == ("leaf1", "spine0")

    def test_verdicts_render_in_wave_order(self):
        verifier = UpdateVerifier(_schedule(DETOUR | DRAIN))
        verdicts = verifier.verdicts({}, [])
        assert [v.wave for v in verdicts] == [0, 1]
        assert all(not v.conclusive for v in verdicts)
