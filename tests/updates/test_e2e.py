"""End-to-end update properties.

Two claims ride on whole simulations rather than synthetic inputs:

1. With *zero* clock error a ``TimedSwap`` really is atomic — every
   straddling snapshot scores 1.0 and no transition drops appear,
   across randomized swap instants, traffic gaps and network seeds.
2. Verdicts are a pure function of the scenario, not of how the
   simulation was partitioned: ``--shards 2`` and the single-process
   run produce identical cuts, drop logs and verdicts.
"""

from dataclasses import asdict

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import deploy
from repro.core.sharded import OBSERVER_SHARD
from repro.experiments.updates import _render, _sharded_setup, _wave_cuts
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.shard import run_sharded
from repro.topology import leaf_spine
from repro.updates import (TimedSwap, UpdateContext, UpdateVerifier,
                           inject_clock_error, noiseless_ptp)

HORIZON_NS = 30 * MS


def _start_traffic(network, hosts, gap_ns, until_ns):
    for i, src in enumerate(hosts):
        host = network.hosts.get(src)
        if host is None:
            continue
        for j, dst in enumerate(hosts):
            if src == dst:
                continue
            host.send_flow(dst, int(until_ns // gap_ns), sport=9000 + j,
                           dport=7000, gap_ns=gap_ns, start_delay_ns=17 * i)


def _loop_free_plan(wave_ats):
    """Alternating leaf-side pins; both endpoint states are loop-free,
    so any drop during the transition is a verdict-worthy artifact."""
    plan = None
    for i, at in enumerate(wave_ats):
        swap = TimedSwap(at_ns=at, label=f"w{i}", routes=(
            ("leaf0", "server1", ("spine1",) if i % 2 == 0 else ("spine0",)),
            ("leaf1", "server0", ("spine0",) if i % 2 == 0 else ("spine1",)),
        ))
        plan = swap if plan is None else plan | swap
    return plan


class TestZeroErrorAtomicity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=5_000),
           first_ms=st.integers(min_value=5, max_value=12),
           gap_ms=st.integers(min_value=5, max_value=10),
           traffic_gap_ns=st.sampled_from([50 * US, 80 * US, 120 * US]))
    def test_timed_swap_atomic_without_clock_error(self, seed, first_ms,
                                                   gap_ms, traffic_gap_ns):
        topo = leaf_spine(hosts_per_leaf=1)
        network = Network(topo, NetworkConfig(seed=seed,
                                              ptp_config=noiseless_ptp()))
        offsets = inject_clock_error(network, 0, seed=seed)
        assert set(offsets.values()) == {0}

        plan = _loop_free_plan([first_ms * MS, (first_ms + gap_ms) * MS])
        schedule = plan.compile(
            UpdateContext.for_topology(topo, horizon_ns=HORIZON_NS))
        verifier = UpdateVerifier(schedule)
        deployment = deploy(network, metric="fib_version", updates=schedule)
        wave_epochs = {w: deployment.observer.take_snapshot(at_wall_ns=at)
                       for w, at in sorted(
                           verifier.snapshot_instants().items())}
        _start_traffic(network, sorted(topo.hosts), traffic_gap_ns,
                       HORIZON_NS)
        network.run(until=HORIZON_NS + 20 * MS)

        cuts = _wave_cuts(deployment.observer, wave_epochs)
        verdicts = _render(verifier, cuts, deployment.update_driver.drops)
        assert len(verdicts) == 2
        for verdict in verdicts:
            assert verdict.conclusive
            assert verdict.atomicity == 1.0
            assert verdict.stale_devices == ()
            assert verdict.loop_drops == 0
            assert verdict.blackhole_drops == 0


# A deliberately uncomfortable scenario for the determinism check: the
# detour pair is loop-prone under skew, and sigma is large enough that
# the two shards genuinely race their swaps against the snapshot cut.
_DETOUR = (TimedSwap(at_ns=20 * MS, label="detour", routes=(
               ("leaf0", "server1", ("spine1",)),
               ("spine0", "server1", ("leaf0",))))
           | TimedSwap(at_ns=40 * MS, label="revert", routes=(
               ("leaf0", "server1", ("spine0", "spine1")),
               ("spine0", "server1", ("leaf1",)))))


def _sharded_verdicts(shards):
    topo = leaf_spine(hosts_per_leaf=1)
    schedule = _DETOUR.compile(
        UpdateContext.for_topology(topo, horizon_ns=60 * MS))
    results = run_sharded(
        topo, NetworkConfig(seed=7, ptp_config=noiseless_ptp()),
        shards=shards, until=80 * MS, setup=_sharded_setup,
        setup_args=(schedule.to_jsonable(), 40_000, 7, 100 * US, 6,
                    sorted(topo.hosts)),
        process=False)
    drops = sorted(row for shard in results for row in shard["drops"])
    cuts = results[OBSERVER_SHARD]["cuts"]
    applied = sum(shard["applied"] for shard in results)
    return cuts, drops, applied


class TestShardDeterminism:
    def test_verdicts_identical_across_shard_counts(self):
        single = _sharded_verdicts(1)
        double = _sharded_verdicts(2)
        assert single == double

        cuts, drops, applied = single
        assert applied == 4  # both waves hit both devices
        assert all(cut["usable"] for cut in cuts.values())
        # And the identical plain data renders to conclusive verdicts —
        # the equality above wasn't comparing two inconclusive blanks.
        from repro.updates.driver import DropRecord
        schedule = _DETOUR.compile(UpdateContext.for_topology(
            leaf_spine(hosts_per_leaf=1), horizon_ns=60 * MS))
        verifier = UpdateVerifier(schedule)
        records = [DropRecord(*row) for row in drops]
        verdicts = _render(verifier, cuts, records)
        assert [v.wave for v in verdicts] == [0, 1]
        assert all(v.conclusive and v.atomicity is not None
                   for v in verdicts)
        assert all("atomicity" in asdict(v) for v in verdicts)
