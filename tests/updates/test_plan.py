"""Tests for the update-plan algebra (specs, compilation, JSON)."""

import pytest

from repro.sim.engine import MS
from repro.topology import leaf_spine
from repro.updates import (Compose, PhasedUpdate, TimedSwap,
                           TwoPhaseVersioned, UpdateContext, UpdatePlan,
                           UpdateSchedule)

ROUTES = (("leaf0", "server1", ("spine1",)),
          ("spine0", "server1", ("leaf0",)))


def _ctx(**kwargs):
    kwargs.setdefault("horizon_ns", 100 * MS)
    return UpdateContext.for_topology(leaf_spine(hosts_per_leaf=1), **kwargs)


class TestSpecs:
    def test_routes_normalized_to_tuples(self):
        plan = TimedSwap(at_ns=10 * MS,
                         routes=[["leaf0", "server1", ["spine1"]]])
        assert plan.routes == (("leaf0", "server1", ("spine1",)),)

    def test_string_via_rejected(self):
        # A bare string would silently iterate per character.
        with pytest.raises(ValueError):
            TimedSwap(at_ns=10 * MS, routes=[("leaf0", "server1", "spine1")])

    def test_compose_flattens(self):
        a, b, c = (TimedSwap(at_ns=i * MS, routes=ROUTES)
                   for i in (10, 20, 30))
        plan = a | b | c
        assert isinstance(plan, Compose)
        assert len(plan.parts) == 3
        assert all(not isinstance(p, Compose) for p in plan.parts)

    def test_phased_order_must_cover_devices(self):
        with pytest.raises(ValueError):
            PhasedUpdate(at_ns=10 * MS, routes=ROUTES,
                         order=("leaf0",))._phases()
        with pytest.raises(ValueError):
            PhasedUpdate(at_ns=10 * MS, routes=ROUTES,
                         order=("leaf0", "spine0", "leaf9"))._phases()


class TestJsonRoundTrip:
    @pytest.mark.parametrize("plan", [
        TimedSwap(at_ns=20 * MS, routes=ROUTES, label="detour"),
        PhasedUpdate(at_ns=20 * MS, gap_ns=1 * MS, routes=ROUTES,
                     order=("leaf0", "spine0")),
        TwoPhaseVersioned(at_ns=20 * MS, routes=ROUTES, tag="x"),
        TimedSwap(at_ns=10 * MS, routes=ROUTES)
        | TwoPhaseVersioned(at_ns=40 * MS, routes=ROUTES),
    ])
    def test_plan_round_trips(self, plan):
        assert UpdatePlan.from_jsonable(plan.to_jsonable()) == plan

    def test_round_trip_compiles_identically(self):
        plan = (TimedSwap(at_ns=10 * MS, routes=ROUTES)
                | TwoPhaseVersioned(at_ns=40 * MS, routes=ROUTES))
        ctx = _ctx()
        rt = UpdatePlan.from_jsonable(plan.to_jsonable())
        assert rt.compile(ctx).to_jsonable() == plan.compile(ctx).to_jsonable()

    def test_schedule_round_trips(self):
        schedule = (TimedSwap(at_ns=10 * MS, routes=ROUTES)).compile(_ctx())
        rt = UpdateSchedule.from_jsonable(schedule.to_jsonable())
        assert rt.commands == schedule.commands
        assert rt.waves == schedule.waves

    def test_unknown_plan_type_rejected(self):
        with pytest.raises(ValueError):
            UpdatePlan.from_jsonable({"plan_type": "nope", "fields": {}})


class TestCompile:
    def test_timed_swap_one_command_per_device(self):
        schedule = TimedSwap(at_ns=20 * MS, routes=ROUTES).compile(_ctx())
        assert sorted((c.device, c.op) for c in schedule) == [
            ("leaf0", "swap"), ("spine0", "swap")]
        assert all(c.at_ns == 20 * MS for c in schedule)
        [wave] = schedule.waves
        assert wave.verdict_at_ns == 20 * MS

    def test_instants_clamped_into_window(self):
        ctx = _ctx()
        schedule = TimedSwap(at_ns=500 * MS, routes=ROUTES).compile(ctx)
        assert all(c.at_ns == ctx.end_ns - 1 for c in schedule)

    def test_unknown_device_rejected(self):
        plan = TimedSwap(at_ns=10 * MS,
                         routes=(("tor9", "server1", ("spine1",)),))
        with pytest.raises(ValueError):
            plan.compile(_ctx())

    def test_phased_spreads_instants(self):
        plan = PhasedUpdate(at_ns=10 * MS, gap_ns=2 * MS, routes=ROUTES,
                            order=("leaf0", "spine0"))
        schedule = plan.compile(_ctx())
        instants = {c.device: c.at_ns for c in schedule}
        assert instants == {"leaf0": 10 * MS, "spine0": 12 * MS}
        [wave] = schedule.waves
        assert wave.verdict_at_ns == 12 * MS

    def test_twophase_stage_stamp_swap_cleanup(self):
        plan = TwoPhaseVersioned(at_ns=20 * MS, lead_ns=5 * MS,
                                 drain_ns=2 * MS, routes=ROUTES)
        schedule = plan.compile(_ctx())
        ops = {}
        for cmd in schedule:
            ops.setdefault(cmd.op, []).append(cmd)
        assert {c.device for c in ops["stage"]} == {"leaf0", "spine0"}
        assert all(c.at_ns == 15 * MS for c in ops["stage"])
        # Stamps land on every edge switch (host-facing ports exist).
        assert {c.device for c in ops["stamp"]} == {"leaf0", "leaf1"}
        assert all(c.at_ns == 20 * MS for c in ops["stamp"])
        assert all(c.at_ns == 22 * MS for c in ops["swap"])
        assert all(c.at_ns == 24 * MS for c in ops["cleanup"])
        assert len({c.tag for c in schedule if c.tag}) == 1
        [wave] = schedule.waves
        assert wave.verdict_at_ns == 22 * MS  # the commit instant

    def test_compose_numbers_waves(self):
        plan = (TimedSwap(at_ns=10 * MS, routes=ROUTES)
                | TimedSwap(at_ns=40 * MS, routes=ROUTES))
        schedule = plan.compile(_ctx())
        assert [w.index for w in schedule.waves] == [0, 1]
        assert {c.wave for c in schedule} == {0, 1}

    def test_restrict_keeps_waves_filters_commands(self):
        schedule = TimedSwap(at_ns=10 * MS, routes=ROUTES).compile(_ctx())
        local = schedule.restrict({"leaf0"})
        assert [c.device for c in local] == ["leaf0"]
        assert local.waves == schedule.waves

    def test_empty_plan_compiles_to_strict_noop(self):
        # No routes -> no commands AND no waves: arming the schedule
        # must leave the event stream untouched (golden-trace guard).
        schedule = TimedSwap(at_ns=10 * MS, routes=()).compile(_ctx())
        assert len(schedule) == 0
        assert schedule.waves == []
