"""Tests pinning the pipeline inventory to the Table 1 compute rows."""

import pytest

from repro.resources import (PIPELINE, REGISTERS, Variant, estimate,
                             register_bytes, tables_for, totals_for)


class TestInventoryMatchesTable1:
    """The structural inventory must sum to the published counts — the
    same numbers the calibrated model reports — for every variant."""

    @pytest.mark.parametrize("variant", list(Variant))
    def test_totals_agree_with_model(self, variant):
        totals = totals_for(variant)
        report = estimate(variant, ports=64)
        assert totals["stateless_alus"] == report.stateless_alus
        assert totals["stateful_alus"] == report.stateful_alus
        assert totals["table_ids"] == report.table_ids
        assert totals["gateways"] == report.gateways
        assert totals["stages"] == report.stages


class TestInventoryStructure:
    def test_variants_monotonically_add_tables(self):
        pc = {t.name + t.plane for t in tables_for(Variant.PACKET_COUNT)}
        wa = {t.name + t.plane for t in tables_for(Variant.WRAP_AROUND)}
        cs = {t.name + t.plane for t in tables_for(Variant.CHANNEL_STATE)}
        assert pc < wa < cs

    def test_stage_order_respects_dependencies(self):
        """The snapshot-ID comparison must see the parsed header, and
        capture must follow comparison — the sequential dependencies that
        force 10-12 physical stages (§7.1)."""
        for variant in Variant:
            tables = {(t.plane, t.name): t.stage for t in tables_for(variant)}
            assert tables[("ingress", "parse_snapshot_header")] < \
                tables[("ingress", "compare_packet_local_id")] < \
                tables[("ingress", "capture_snapshot_value")]
            assert tables[("egress", "check_header_present")] < \
                tables[("egress", "compare_packet_local_id")] < \
                tables[("egress", "capture_snapshot_value")]

    def test_ingress_precedes_egress_stages(self):
        for table in PIPELINE:
            if table.plane == "ingress":
                assert table.stage <= 4
            else:
                assert table.stage >= 5

    def test_channel_state_tables_occupy_the_two_extra_stages(self):
        extra = [t for t in PIPELINE if t.min_variant is Variant.CHANNEL_STATE]
        assert {t.stage for t in extra} == {10, 11}


class TestRegisterArrays:
    def test_channel_state_adds_last_seen(self):
        pc = {r.name for r in REGISTERS if r.included_in(Variant.PACKET_COUNT)}
        cs = {r.name for r in REGISTERS if r.included_in(Variant.CHANNEL_STATE)}
        assert "last_seen" in cs - pc
        assert "snapshot_channel_state" in cs - pc

    def test_register_bytes_grow_with_ports_and_variant(self):
        assert register_bytes(Variant.PACKET_COUNT, 64) > \
            register_bytes(Variant.PACKET_COUNT, 14)
        assert register_bytes(Variant.CHANNEL_STATE, 64) > \
            register_bytes(Variant.WRAP_AROUND, 64)

    def test_register_footprint_consistent_with_calibrated_slope(self):
        """The register inventory should explain the per-port SRAM slope
        of the calibrated model to within a factor of ~2 (match-action
        overheads account for the rest)."""
        for variant in Variant:
            raw_slope_kb = (register_bytes(variant, 64)
                            - register_bytes(variant, 14)) / 50 / 1024
            model_slope_kb = (estimate(variant, 64).sram_kb
                              - estimate(variant, 14).sram_kb) / 50
            assert 0.5 <= raw_slope_kb / model_slope_kb <= 2.0, variant

    def test_per_slot_arrays_dominate(self):
        """Snapshot value storage is the big consumer, as §7.1 implies
        ('larger register arrays ... to store the per-port statistics')."""
        value_bytes = next(r for r in REGISTERS if r.name == "snapshot_value")
        total = register_bytes(Variant.PACKET_COUNT, 64)
        assert value_bytes.bytes_for(64, 256) > 0.5 * total
