"""Tests pinning the Table 1 resource model to the paper's numbers."""

import pytest

from repro.resources import TOFINO_1, Variant, estimate


class TestPublishedNumbers:
    """Every number the paper publishes must be reproduced exactly."""

    @pytest.mark.parametrize("variant,expected", [
        (Variant.PACKET_COUNT, dict(stateless_alus=17, stateful_alus=9,
                                    table_ids=27, gateways=15, stages=10,
                                    sram_kb=606, tcam_kb=42)),
        (Variant.WRAP_AROUND, dict(stateless_alus=19, stateful_alus=9,
                                   table_ids=35, gateways=19, stages=10,
                                   sram_kb=671, tcam_kb=59)),
        (Variant.CHANNEL_STATE, dict(stateless_alus=24, stateful_alus=11,
                                     table_ids=37, gateways=19, stages=12,
                                     sram_kb=770, tcam_kb=244)),
    ])
    def test_64_port_table(self, variant, expected):
        report = estimate(variant, ports=64)
        for attr, value in expected.items():
            assert getattr(report, attr) == pytest.approx(value), attr

    def test_14_port_channel_state_configuration(self):
        report = estimate(Variant.CHANNEL_STATE, ports=14)
        assert report.sram_kb == pytest.approx(638, abs=1)
        assert report.tcam_kb == pytest.approx(90, abs=1)

    def test_under_25_percent_of_dedicated_resources(self):
        for variant in Variant:
            report = estimate(variant, ports=64)
            assert max(report.utilization(TOFINO_1).values()) < 0.25


class TestModelShape:
    def test_memory_monotone_in_ports(self):
        for variant in Variant:
            previous = 0.0
            for ports in (1, 8, 16, 32, 64):
                report = estimate(variant, ports)
                assert report.sram_kb > previous
                previous = report.sram_kb

    def test_logic_independent_of_ports(self):
        small = estimate(Variant.CHANNEL_STATE, 4)
        large = estimate(Variant.CHANNEL_STATE, 64)
        assert small.stateless_alus == large.stateless_alus
        assert small.stages == large.stages

    def test_variants_strictly_ordered_in_cost(self):
        pc = estimate(Variant.PACKET_COUNT, 64)
        wa = estimate(Variant.WRAP_AROUND, 64)
        cs = estimate(Variant.CHANNEL_STATE, 64)
        assert pc.sram_kb < wa.sram_kb < cs.sram_kb
        assert pc.tcam_kb < wa.tcam_kb < cs.tcam_kb
        assert pc.stateless_alus < wa.stateless_alus < cs.stateless_alus

    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            estimate(Variant.PACKET_COUNT, 0)
        with pytest.raises(ValueError):
            estimate(Variant.PACKET_COUNT, 65)

    def test_fits_tofino(self):
        for variant in Variant:
            assert estimate(variant, 64).fits(TOFINO_1)

    def test_fits_respects_budget(self):
        report = estimate(Variant.CHANNEL_STATE, 64)
        assert not report.fits(TOFINO_1, budget=0.01)
