"""Tests for the two-phase EWMA counters (§8 of the paper)."""

from hypothesis import given, strategies as st

from repro.counters import EwmaInterarrival, EwmaPacketRate
from repro.sim.packet import FlowKey, Packet


def _pkt():
    return Packet(flow=FlowKey("a", "b", 1, 2))


def _feed(counter, times):
    for t in times:
        counter.update(_pkt(), t)


class TestEwmaInterarrival:
    def test_idle_counter_reads_zero(self):
        assert EwmaInterarrival().read() == 0

    def test_needs_a_full_pair_before_first_value(self):
        counter = EwmaInterarrival()
        _feed(counter, [1000, 2000])  # one interarrival only
        assert counter.read() == 0
        counter.update(_pkt(), 3000)  # completes the first pair
        assert counter.read() == 1000

    def test_constant_gaps_converge_to_gap(self):
        counter = EwmaInterarrival()
        _feed(counter, range(0, 100_000, 500)[1:])
        assert counter.read() == 500

    def test_seeding_uses_first_pair_average(self):
        # A zero timestamp is the hardware "uninitialized" sentinel, so
        # sequences start at t > 0.
        counter = EwmaInterarrival()
        _feed(counter, [10, 110, 310])  # interarrivals 100, 200
        assert counter.read() == 150

    def test_decay_half_per_pair(self):
        counter = EwmaInterarrival()
        _feed(counter, [10, 110, 210])     # seeded at 100
        _feed(counter, [510, 610])         # pair avg (300 + 100)/2 = 200
        assert counter.read() == 100 // 2 + 200 // 2

    def test_two_phase_registers_exposed(self):
        counter = EwmaInterarrival()
        _feed(counter, [10, 110])
        assert counter.last_ts == 110
        assert counter.packet_count == 1
        assert counter.temp_ewma == 100

    def test_reset(self):
        counter = EwmaInterarrival()
        _feed(counter, [0, 100, 200, 300])
        counter.reset()
        assert counter.read() == 0
        assert counter.packet_count == 0

    @given(st.lists(st.integers(min_value=1, max_value=10**6),
                    min_size=4, max_size=60))
    def test_property_ewma_within_interarrival_range(self, gaps):
        """The EWMA is a convex-ish combination of observed interarrivals,
        so it must stay within [min gap - rounding, max gap]."""
        counter = EwmaInterarrival()
        t = 1
        counter.update(_pkt(), t)
        for gap in gaps:
            t += gap
            counter.update(_pkt(), t)
        if counter.read() == 0:
            return  # not enough pairs
        # Integer halving can lose at most ~2 per fold; allow small slack.
        assert counter.read() <= max(gaps)
        assert counter.read() >= min(gaps) // 2 - 2

    @given(st.integers(min_value=2, max_value=10**5))
    def test_property_constant_rate_is_fixed_point(self, gap):
        counter = EwmaInterarrival()
        t = 1
        for _ in range(21):
            counter.update(_pkt(), t)
            t += gap
        assert abs(counter.read() - gap) <= 2


class TestEwmaPacketRate:
    def test_idle_reads_zero(self):
        assert EwmaPacketRate().read() == 0

    def test_rate_is_inverse_of_gap(self):
        counter = EwmaPacketRate()
        t = 0
        for _ in range(20):
            counter.update(_pkt(), t)
            t += 1000  # 1 us gap -> 1M pps
        assert counter.read() == 1_000_000

    def test_faster_traffic_reads_higher(self):
        slow, fast = EwmaPacketRate(), EwmaPacketRate()
        for i in range(20):
            slow.update(_pkt(), i * 10_000)
            fast.update(_pkt(), i * 1_000)
        assert fast.read() > slow.read()

    def test_reset(self):
        counter = EwmaPacketRate()
        for i in range(10):
            counter.update(_pkt(), i * 1000)
        counter.reset()
        assert counter.read() == 0
