"""Tests for the counter framework and the basic counters."""

import pytest

from repro.counters import (ByteCounter, PacketCounter, QueueDepthCounter,
                            COUNTER_REGISTRY, make_counter, register_counter)
from repro.sim.packet import FlowKey, Packet


def _pkt(size=1000):
    return Packet(flow=FlowKey("a", "b", 1, 2), size_bytes=size)


class TestRegistry:
    def test_known_metrics_registered(self):
        for name in ("packet_count", "byte_count", "ewma_interarrival",
                     "ewma_packet_rate"):
            assert name in COUNTER_REGISTRY

    def test_make_counter_instantiates_fresh_objects(self):
        a = make_counter("packet_count")
        b = make_counter("packet_count")
        a.update(_pkt(), 0)
        assert a.read() == 1
        assert b.read() == 0

    def test_unknown_metric_raises_with_known_list(self):
        with pytest.raises(KeyError, match="packet_count"):
            make_counter("no_such_metric")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_counter("packet_count", PacketCounter)


class TestPacketCounter:
    def test_counts_packets(self):
        counter = PacketCounter()
        for _ in range(5):
            counter.update(_pkt(), 0)
        assert counter.read() == 5

    def test_reset(self):
        counter = PacketCounter()
        counter.update(_pkt(), 0)
        counter.reset()
        assert counter.read() == 0


class TestByteCounter:
    def test_counts_bytes(self):
        counter = ByteCounter()
        counter.update(_pkt(100), 0)
        counter.update(_pkt(250), 0)
        assert counter.read() == 350

    def test_reset(self):
        counter = ByteCounter()
        counter.update(_pkt(), 0)
        counter.reset()
        assert counter.read() == 0


class TestQueueDepthCounter:
    def test_reads_bound_gauge(self):
        depth = {"value": 3}
        counter = QueueDepthCounter(lambda: depth["value"])
        assert counter.read() == 3
        depth["value"] = 7
        assert counter.read() == 7

    def test_update_is_noop(self):
        counter = QueueDepthCounter(lambda: 1)
        counter.update(_pkt(), 0)
        assert counter.read() == 1

    def test_for_egress_unit(self, single_switch_net):
        egress = single_switch_net.switch("sw0").ports[0].egress
        pkts = QueueDepthCounter.for_egress_unit(egress)
        in_bytes = QueueDepthCounter.for_egress_unit(egress, in_bytes=True)
        assert pkts.read() == 0
        assert in_bytes.read() == 0
