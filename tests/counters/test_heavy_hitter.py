"""Tests for the count-min sketch and heavy-hitter counter."""

import pytest
from hypothesis import given, strategies as st

from repro.core import SpeedlightDeployment
from repro.counters import CountMinSketch, HeavyHitterCounter
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import FlowKey, Packet
from repro.sim.switch import Direction
from repro.topology import single_switch


def _flow(sport):
    return FlowKey("a", "b", sport, 80)


def _pkt(sport):
    return Packet(flow=_flow(sport))


class TestCountMinSketch:
    def test_single_flow_exact(self):
        sketch = CountMinSketch()
        for _ in range(50):
            sketch.update(_flow(1))
        assert sketch.estimate(_flow(1)) == 50

    def test_never_underestimates(self):
        sketch = CountMinSketch(depth=3, width=64)  # small: collisions
        truth = {}
        for sport in range(200):
            count = (sport % 5) + 1
            truth[sport] = count
            for _ in range(count):
                sketch.update(_flow(sport))
        for sport, count in truth.items():
            assert sketch.estimate(_flow(sport)) >= count

    def test_unseen_flow_small_estimate(self):
        sketch = CountMinSketch(width=2048)
        for sport in range(100):
            sketch.update(_flow(sport))
        assert sketch.estimate(_flow(99_999)) <= 2

    def test_reset(self):
        sketch = CountMinSketch()
        sketch.update(_flow(1))
        sketch.reset()
        assert sketch.estimate(_flow(1)) == 0
        assert sketch.updates == 0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)
        with pytest.raises(ValueError):
            CountMinSketch(width=4)

    @given(st.dictionaries(st.integers(min_value=0, max_value=1000),
                           st.integers(min_value=1, max_value=20),
                           min_size=1, max_size=40))
    def test_property_estimates_dominate_truth(self, truth):
        sketch = CountMinSketch(depth=3, width=256)
        for sport, count in truth.items():
            for _ in range(count):
                sketch.update(_flow(sport))
        for sport, count in truth.items():
            assert sketch.estimate(_flow(sport)) >= count


class TestHeavyHitterCounter:
    def test_identifies_dominant_flow(self):
        counter = HeavyHitterCounter()
        for sport in range(20):       # mice: 1 packet each
            counter.update(_pkt(sport), 0)
        for _ in range(100):          # the elephant
            counter.update(_pkt(777), 0)
        flow, estimate = counter.top()
        assert flow == _flow(777)
        assert estimate >= 100

    def test_read_returns_estimate(self):
        counter = HeavyHitterCounter()
        for _ in range(7):
            counter.update(_pkt(1), 0)
        assert counter.read() >= 7

    def test_reset(self):
        counter = HeavyHitterCounter()
        counter.update(_pkt(1), 0)
        counter.reset()
        assert counter.read() == 0
        assert counter.heavy_flow is None

    def test_snapshot_deployment_integration(self):
        net = Network(single_switch(num_hosts=3), NetworkConfig(seed=1))
        dep = SpeedlightDeployment(net, metric="heavy_hitter")
        # An elephant from server0 and a mouse from server1.
        net.host("server0").send_flow("server2", 200, sport=42, dport=80)
        net.host("server1").send_flow("server2", 5, sport=43, dport=80)
        epoch = dep.take_snapshot(at_wall_ns=5 * MS)
        net.run(until=300 * MS)
        snap = dep.observer.snapshot(epoch)
        assert snap.complete
        out_port = net.port_toward("sw0", "server2")
        value = snap.value_of("sw0", out_port, Direction.EGRESS)
        assert value >= 100  # the elephant dominates the victim port
        unit = net.switch("sw0").ports[out_port].egress
        hh = unit.counters.get("heavy_hitter")
        assert hh.heavy_flow.sport == 42
