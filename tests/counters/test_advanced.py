"""Tests for the watermark and flow-count sketch counters."""

import pytest
from hypothesis import given, strategies as st

from repro.counters import ActiveFlowEstimator, QueueHighWatermark
from repro.core import SpeedlightDeployment
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import FlowKey, Packet
from repro.topology import single_switch


def _pkt(sport=1, dst="b"):
    return Packet(flow=FlowKey("a", dst, sport, 80))


class TestQueueHighWatermark:
    def test_tracks_maximum(self):
        depth = {"value": 0}
        counter = QueueHighWatermark(lambda: depth["value"],
                                     clear_on_read=False)
        for value in (1, 5, 3, 2):
            depth["value"] = value
            counter.update(_pkt(), 0)
        assert counter.read() == 5

    def test_clear_on_read_resets_to_current_depth(self):
        depth = {"value": 0}
        counter = QueueHighWatermark(lambda: depth["value"])
        depth["value"] = 9
        counter.update(_pkt(), 0)
        depth["value"] = 2
        assert counter.read() == 9
        assert counter.read() == 2  # watermark restarted from live depth

    def test_reset(self):
        counter = QueueHighWatermark(lambda: 0, clear_on_read=False)
        counter._watermark = 4
        counter.reset()
        assert counter.read() == 0

    def test_deployment_binds_egress(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
        dep = SpeedlightDeployment(net, metric="queue_watermark")
        net.host("server0").send_flow("server1", 50, sport=1, dport=2)
        epoch = dep.take_snapshot(at_wall_ns=1 * MS)
        net.run(until=200 * MS)
        snap = dep.observer.snapshot(epoch)
        assert snap.complete

    def test_channel_state_rejected(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
        with pytest.raises(ValueError, match="gauge"):
            SpeedlightDeployment(net, metric="queue_watermark",
                                 channel_state=True)


class TestActiveFlowEstimator:
    def test_empty_reads_zero(self):
        assert ActiveFlowEstimator().read() == 0

    def test_single_flow_counts_once(self):
        counter = ActiveFlowEstimator()
        for _ in range(100):
            counter.update(_pkt(sport=42), 0)
        assert counter.read() == 1

    def test_estimate_tracks_distinct_flows(self):
        counter = ActiveFlowEstimator(bits=4096)
        for sport in range(300):
            counter.update(_pkt(sport=sport), 0)
        assert 250 <= counter.read() <= 350  # ~10% linear-counting error

    def test_saturation_reports_ceiling(self):
        counter = ActiveFlowEstimator(bits=8)
        for sport in range(500):
            counter.update(_pkt(sport=sport), 0)
        assert counter.saturated
        assert counter.read() == 8 * 8

    def test_reset(self):
        counter = ActiveFlowEstimator()
        counter.update(_pkt(), 0)
        counter.reset()
        assert counter.read() == 0
        assert not counter.saturated

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ActiveFlowEstimator(bits=4)

    @given(st.sets(st.integers(min_value=0, max_value=2**16), min_size=1,
                   max_size=64))
    def test_property_estimate_bounded_by_updates(self, sports):
        counter = ActiveFlowEstimator(bits=2048)
        for sport in sports:
            counter.update(_pkt(sport=sport), 0)
        # Linear counting never wildly overshoots small cardinalities.
        assert counter.read() <= 2 * len(sports) + 2
        assert counter.read() >= 1
