"""Tests for forwarding-state snapshots (§10)."""

import pytest

from repro.core import SpeedlightDeployment
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction
from repro.topology import leaf_spine, single_switch


def _net(topo=None):
    return Network(topo or single_switch(num_hosts=3), NetworkConfig(seed=2))


class TestFibVersionRegisters:
    def test_install_route_bumps_generation(self):
        net = _net()
        sw = net.switch("sw0")
        before = sw.fib_generation
        sw.install_route("server0", [0])
        assert sw.fib_generation == before + 1
        assert sw.route_version["server0"] == sw.fib_generation

    def test_forwarding_records_matched_version(self):
        net = _net()
        sw = net.switch("sw0")
        version = sw.route_version["server1"]
        net.host("server0").send_flow("server1", 1, sport=1, dport=2)
        net.run(until=1 * MS)
        in_port = net.port_toward("sw0", "server0")
        assert sw.last_matched_version[in_port] == version

    def test_route_update_changes_recorded_version(self):
        net = _net()
        sw = net.switch("sw0")
        in_port = net.port_toward("sw0", "server0")
        net.host("server0").send_flow("server1", 1, sport=1, dport=2)
        net.run(until=1 * MS)
        old = sw.last_matched_version[in_port]
        sw.install_route("server1", [net.port_toward("sw0", "server1")])
        net.host("server0").send_flow("server1", 1, sport=3, dport=4)
        net.run(until=2 * MS)
        assert sw.last_matched_version[in_port] > old


class TestFibVersionSnapshots:
    def test_snapshot_captures_versions(self):
        net = _net()
        deployment = SpeedlightDeployment(net, metric="fib_version")
        net.host("server0").send_flow("server1", 5, sport=1, dport=2)
        net.run(until=1 * MS)
        epoch = deployment.take_snapshot()
        net.run(until=200 * MS)
        snap = deployment.observer.snapshot(epoch)
        assert snap.complete
        in_port = net.port_toward("sw0", "server0")
        version = snap.value_of("sw0", in_port, Direction.INGRESS)
        assert version == net.switch("sw0").route_version["server1"]

    def test_channel_state_rejected_for_fib_version(self):
        net = _net()
        with pytest.raises(ValueError, match="gauge"):
            SpeedlightDeployment(net, metric="fib_version",
                                 channel_state=True)

    def test_mid_propagation_update_visible_across_switches(self):
        """A route update applied to one leaf but not yet the other shows
        up as mixed generations in one consistent snapshot — the §2.2 Q4
        'impossible state' made observable."""
        net = _net(leaf_spine(hosts_per_leaf=1))
        deployment = SpeedlightDeployment(net, metric="fib_version")
        # Steady traffic keeps the registers fresh.
        net.host("server0").send_flow("server1", 2000, sport=1, dport=2,
                                      gap_ns=50_000)
        net.host("server1").send_flow("server0", 2000, sport=2, dport=1,
                                      gap_ns=50_000)
        # Mid-run, only leaf0 gets a new configuration generation.
        leaf0 = net.switch("leaf0")

        def update_leaf0():
            leaf0.install_route("server1", [net.port_toward("leaf0", "spine0")])

        net.sim.schedule(20 * MS, update_leaf0)
        epoch = deployment.take_snapshot(at_wall_ns=40 * MS)
        net.run(until=300 * MS)
        snap = deployment.observer.snapshot(epoch)
        assert snap.complete
        host_in = net.port_toward("leaf0", "server0")
        leaf0_version = snap.value_of("leaf0", host_in, Direction.INGRESS)
        assert leaf0_version == leaf0.route_version["server1"]
        # leaf1 still reports its original generation.
        leaf1 = net.switch("leaf1")
        leaf1_in = net.port_toward("leaf1", "server1")
        leaf1_version = snap.value_of("leaf1", leaf1_in, Direction.INGRESS)
        assert leaf1_version == leaf1.route_version["server0"]
