"""Tests for the hardware-constrained Speedlight data-plane unit."""

import pytest

from repro.core.dataplane import SpeedlightUnit
from repro.core.ids import IdSpace
from repro.sim.packet import FlowKey, Packet, PacketType, SnapshotHeader
from repro.sim.switch import Direction, UnitId

UNIT = UnitId("sw0", 0, Direction.INGRESS)


def _pkt(sid, packet_type=PacketType.DATA, size=1000):
    pkt = Packet(flow=FlowKey("a", "b", 1, 2), size_bytes=size)
    pkt.snapshot = SnapshotHeader(sid=sid, packet_type=packet_type)
    return pkt


def _unit(value=lambda: 0, channel_state=False, max_sid=255, notify=None,
          in_flight=None):
    return SpeedlightUnit(UNIT, IdSpace(max_sid), value,
                          channel_state=channel_state, notify=notify,
                          in_flight_value_fn=in_flight)


class TestAdvance:
    def test_higher_sid_advances_and_captures(self):
        values = iter([42])
        unit = _unit(value=lambda: next(values))
        returned = unit.process_packet(_pkt(1), channel_id=0, now_ns=100)
        assert returned == 1
        assert unit.sid == 1
        slot = unit.read_slot(1)
        assert slot.valid
        assert slot.value == 42
        assert slot.captured_ns == 100

    def test_equal_sid_is_noop(self):
        unit = _unit()
        unit.process_packet(_pkt(1), 0, 10)
        count = unit.notifications_emitted
        unit.process_packet(_pkt(1), 0, 20)
        assert unit.sid == 1
        assert unit.notifications_emitted == count  # no change, no notify

    def test_skip_leaves_intermediate_slots_invalid(self):
        unit = _unit(value=lambda: 7)
        unit.process_packet(_pkt(3), 0, 10)  # jump 0 -> 3
        assert unit.sid == 3
        assert unit.read_slot(3).valid
        assert not unit.read_slot(1).valid  # no line-rate loop (§5.3)
        assert not unit.read_slot(2).valid

    def test_capture_resets_channel_state(self):
        unit = _unit(channel_state=True)
        unit.process_packet(_pkt(1), 0, 10)
        unit.process_packet(_pkt(0), 0, 20)  # in-flight credit
        assert unit.read_slot(1).channel_state == 1
        unit.process_packet(_pkt(2), 0, 30)
        assert unit.read_slot(2).channel_state == 0


class TestInFlight:
    def test_in_flight_credits_current_slot(self):
        unit = _unit(channel_state=True)
        unit.process_packet(_pkt(2), 0, 10)
        unit.process_packet(_pkt(1), 0, 20)
        unit.process_packet(_pkt(1), 0, 30)
        assert unit.read_slot(2).channel_state == 2

    def test_in_flight_ignored_without_channel_state(self):
        unit = _unit(channel_state=False)
        unit.process_packet(_pkt(2), 0, 10)
        unit.process_packet(_pkt(1), 0, 20)
        assert unit.read_slot(2).channel_state == 0

    def test_initiations_never_counted_as_in_flight(self):
        unit = _unit(channel_state=True)
        unit.process_packet(_pkt(2), 0, 10)
        unit.process_packet(_pkt(1, PacketType.INITIATION), -1, 20)
        assert unit.read_slot(2).channel_state == 0

    def test_custom_in_flight_contribution(self):
        unit = _unit(channel_state=True, in_flight=lambda p: p.size_bytes)
        unit.process_packet(_pkt(1), 0, 10)
        unit.process_packet(_pkt(0, size=700), 0, 20)
        assert unit.read_slot(1).channel_state == 700

    def test_old_packet_still_stamped_with_current_sid(self):
        unit = _unit(channel_state=True)
        unit.process_packet(_pkt(3), 0, 10)
        returned = unit.process_packet(_pkt(1), 0, 20)
        assert returned == 3


class TestLastSeen:
    def test_tracked_per_channel(self):
        unit = _unit(channel_state=True)
        unit.process_packet(_pkt(2), channel_id=0, now_ns=10)
        unit.process_packet(_pkt(1), channel_id=5, now_ns=20)
        assert unit.read_last_seen(0) == 2
        assert unit.read_last_seen(5) == 1
        assert unit.read_last_seen(99) == 0  # untouched channels read 0

    def test_never_moves_backwards(self):
        unit = _unit(channel_state=True)
        unit.process_packet(_pkt(3), 0, 10)
        unit.process_packet(_pkt(1), 0, 20)
        assert unit.read_last_seen(0) == 3

    def test_not_tracked_without_channel_state(self):
        unit = _unit(channel_state=False)
        unit.process_packet(_pkt(2), 0, 10)
        assert unit.last_seen == {}


class TestNotifications:
    def test_sid_change_notifies_with_old_and_new(self):
        log = []
        unit = _unit(notify=log.append)
        unit.process_packet(_pkt(2), 0, 55)
        assert len(log) == 1
        n = log[0]
        assert (n.old_sid, n.new_sid, n.timestamp_ns) == (0, 2, 55)
        assert n.unit == UNIT
        assert n.channel is None  # no channel state configured

    def test_last_seen_change_notifies_with_channel_values(self):
        log = []
        unit = _unit(channel_state=True, notify=log.append)
        unit.process_packet(_pkt(1), channel_id=3, now_ns=10)
        n = log[0]
        assert n.channel == 3
        assert (n.old_last_seen, n.new_last_seen) == (0, 1)
        assert n.sid_changed and n.last_seen_changed

    def test_no_notification_when_nothing_changes(self):
        log = []
        unit = _unit(channel_state=True, notify=log.append)
        unit.process_packet(_pkt(1), 0, 10)
        unit.process_packet(_pkt(1), 0, 20)  # same sid, same last seen
        assert len(log) == 1

    def test_in_flight_only_notifies_if_last_seen_moves(self):
        log = []
        unit = _unit(channel_state=True, notify=log.append)
        unit.process_packet(_pkt(2), 0, 10)
        log.clear()
        unit.process_packet(_pkt(1), 0, 20)   # ls 2 -> no move
        assert log == []


class TestWraparound:
    def test_sid_rolls_over(self):
        unit = _unit(max_sid=7)
        for epoch in range(1, 10):
            unit.process_packet(_pkt(epoch % 8), 0, epoch)
        assert unit.sid == 9 % 8

    def test_cleared_slot_reusable_after_rollover(self):
        unit = _unit(max_sid=7, value=lambda: 99)
        unit.process_packet(_pkt(1), 0, 10)
        unit.clear_slot(1)
        assert not unit.read_slot(1).valid
        # Epoch 9 wraps to slot 1 again.
        for epoch in range(2, 8):
            unit.process_packet(_pkt(epoch), 0, epoch)
        unit.process_packet(_pkt(0), 0, 100)  # epoch 8
        unit.process_packet(_pkt(1), 0, 101)  # epoch 9 -> slot 1
        assert unit.read_slot(1).valid


class TestRegisterAccess:
    def test_poll_state_exposes_registers(self):
        unit = _unit(channel_state=True)
        unit.process_packet(_pkt(2), channel_id=1, now_ns=10)
        state = unit.poll_state()
        assert state["sid"] == 2
        assert state["last_seen[1]"] == 2

    def test_headerless_packet_asserts(self):
        unit = _unit()
        with pytest.raises(AssertionError):
            unit.process_packet(Packet(flow=FlowKey("a", "b", 1, 2)), 0, 0)
