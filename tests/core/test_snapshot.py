"""Tests for global snapshot assembly."""

import pytest

from repro.core.control_plane import UnitSnapshotRecord
from repro.core.snapshot import GlobalSnapshot
from repro.sim.switch import Direction, UnitId


def _unit(device="sw0", port=0, direction=Direction.INGRESS):
    return UnitId(device, port, direction)


def _record(unit, epoch=1, value=10, channel=None, consistent=True,
            captured=100):
    return UnitSnapshotRecord(unit=unit, epoch=epoch, value=value,
                              channel_state=channel, consistent=consistent,
                              captured_ns=captured, read_ns=captured + 50)


def _snapshot(units):
    return GlobalSnapshot(epoch=1, requested_wall_ns=0,
                          expected_units=set(units))


class TestAssembly:
    def test_complete_when_all_expected_reported(self):
        units = [_unit(port=p) for p in range(3)]
        snap = _snapshot(units)
        assert not snap.complete
        for u in units:
            assert snap.add_record(_record(u))
        assert snap.complete
        assert snap.missing_units == set()

    def test_unexpected_record_rejected(self):
        snap = _snapshot([_unit()])
        stray = _record(_unit(device="ghost"))
        assert snap.add_record(stray) is False
        assert stray.unit not in snap.records

    def test_consistency_requires_every_record(self):
        units = [_unit(port=p) for p in range(2)]
        snap = _snapshot(units)
        snap.add_record(_record(units[0], consistent=True))
        snap.add_record(_record(units[1], consistent=False))
        assert not snap.consistent
        assert not snap.usable

    def test_exclude_device_removes_expectations_and_records(self):
        units = [_unit("a"), _unit("b")]
        snap = _snapshot(units)
        snap.add_record(_record(units[0]))
        snap.exclude_device("a")
        assert units[0] not in snap.records
        assert snap.expected_units == {units[1]}
        assert not snap.usable  # an excluded device taints the snapshot


class TestAnalysisHelpers:
    def test_capture_spread(self):
        units = [_unit(port=p) for p in range(3)]
        snap = _snapshot(units)
        for u, t in zip(units, (100, 150, 130)):
            snap.add_record(_record(u, captured=t))
        assert snap.capture_spread_ns == 50

    def test_empty_spread_is_zero(self):
        assert _snapshot([_unit()]).capture_spread_ns == 0

    def test_total_value_with_channel_state(self):
        units = [_unit(port=p) for p in range(2)]
        snap = _snapshot(units)
        snap.add_record(_record(units[0], value=10, channel=2))
        snap.add_record(_record(units[1], value=5, channel=1))
        assert snap.total_value() == 18
        assert snap.total_value(include_channel_state=False) == 15

    def test_value_of_lookup(self):
        snap = _snapshot([_unit(port=4)])
        snap.add_record(_record(_unit(port=4), value=77))
        assert snap.value_of("sw0", 4, Direction.INGRESS) == 77
        with pytest.raises(KeyError):
            snap.value_of("sw0", 5, Direction.INGRESS)

    def test_device_records_sorted(self):
        units = [_unit(port=1, direction=Direction.EGRESS),
                 _unit(port=0, direction=Direction.INGRESS),
                 _unit(device="other")]
        snap = _snapshot(units)
        for u in units:
            snap.add_record(_record(u))
        records = snap.device_records("sw0")
        assert [(r.unit.port, r.unit.direction) for r in records] == [
            (0, Direction.INGRESS), (1, Direction.EGRESS)]

    def test_total_value_property_on_record(self):
        assert _record(_unit(), value=3, channel=4).total_value == 7
        assert _record(_unit(), value=3, channel=None).total_value == 3
