"""Tests for RecoveryPolicy: the §6 liveness knobs as one spec."""

import pytest

from repro.core import (RECOVERY_PRESETS, DeploymentConfig, RecoveryPolicy,
                        SpeedlightDeployment, recovery_preset)
from repro.core.control_plane import ControlPlaneConfig
from repro.core.observer import ObserverConfig
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.topology import linear


class TestRecoveryPolicy:
    def test_default_is_paper_neutral(self):
        """RecoveryPolicy() overlays must reproduce the stock configs —
        the policy layer is behaviourally invisible until tuned."""
        policy = RecoveryPolicy()
        assert policy.control_plane_config() == ControlPlaneConfig()
        assert policy.observer_config() == ObserverConfig()

    def test_json_round_trip(self):
        for policy in RECOVERY_PRESETS.values():
            assert RecoveryPolicy.from_jsonable(policy.to_jsonable()) == policy

    def test_validation(self):
        with pytest.raises(ValueError, match="probe_delay_ns"):
            RecoveryPolicy(probe_delay_ns=-1)
        with pytest.raises(ValueError, match="max_retries"):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="retry_timeout_ns"):
            RecoveryPolicy(retry_timeout_ns=0)

    def test_overlay_preserves_non_recovery_fields(self):
        policy = recovery_preset("eager")
        base_cp = ControlPlaneConfig(notification_service_ns=99 * US,
                                     buffer_capacity=7,
                                     notification_transport="digest")
        cp = policy.control_plane_config(base_cp)
        assert cp.notification_service_ns == 99 * US
        assert cp.buffer_capacity == 7
        assert cp.notification_transport == "digest"
        assert cp.reinitiation_timeout_ns == policy.reinitiation_timeout_ns
        assert cp.register_poll_interval_ns == policy.register_poll_interval_ns

        base_obs = ObserverConfig(lead_time_ns=9 * MS)
        obs = policy.observer_config(base_obs)
        assert obs.lead_time_ns == 9 * MS
        assert obs.retry_timeout_ns == policy.retry_timeout_ns
        assert obs.device_timeout_ns == policy.device_timeout_ns

    def test_presets_named_consistently(self):
        for name, policy in RECOVERY_PRESETS.items():
            assert policy.name == name
            assert recovery_preset(name) == policy

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown recovery preset"):
            recovery_preset("yolo")


class TestDeploymentThreading:
    def _deploy(self, **kwargs):
        network = Network(linear(num_switches=2, hosts_per_switch=1),
                          NetworkConfig(seed=1))
        return network, SpeedlightDeployment(
            network, DeploymentConfig(metric="packet_count", **kwargs))

    def test_policy_threads_into_both_configs(self):
        policy = recovery_preset("eager")
        _, deployment = self._deploy(recovery=policy)
        assert (deployment.config.control_plane
                == policy.control_plane_config(ControlPlaneConfig()))
        assert (deployment.config.observer
                == policy.observer_config(ObserverConfig()))
        for cp in deployment.control_planes.values():
            assert (cp.config.reinitiation_timeout_ns
                    == policy.reinitiation_timeout_ns)
        assert (deployment.observer.config.retry_timeout_ns
                == policy.retry_timeout_ns)

    def test_no_policy_leaves_configs_untouched(self):
        _, deployment = self._deploy()
        assert deployment.config.control_plane == ControlPlaneConfig()
        assert deployment.config.observer == ObserverConfig()

    def test_register_polls_only_when_enabled(self):
        rounds, interval = 2, 5 * MS
        horizon = rounds * interval + 120 * MS

        network, silent = self._deploy(recovery=RecoveryPolicy())
        silent.schedule_campaign(rounds, interval)
        network.run(until=horizon)
        assert all(cp.polls_performed == 0
                   for cp in silent.control_planes.values())

        network, polling = self._deploy(recovery=recovery_preset("polling"))
        polling.schedule_campaign(rounds, interval)
        network.run(until=horizon)
        assert any(cp.polls_performed > 0
                   for cp in polling.control_planes.values())

    def test_device_timeout_gates_exclusion(self):
        """A silent device is excluded only after the policy's device
        timeout — the grace period keeps slow devices in the epoch."""
        def run_with(policy, until_ns):
            network, deployment = self._deploy(recovery=policy)
            # sw1's CPU never hears from its ASIC: it will never ship.
            network.switch("sw1").notification_sink = lambda n: None
            epoch = deployment.take_snapshot()
            network.run(until=until_ns)
            return deployment.observer.snapshot(epoch)

        impatient = RecoveryPolicy(name="fast-exclude",
                                   retry_timeout_ns=10 * MS, max_retries=1,
                                   device_timeout_ns=30 * MS)
        assert "sw1" in run_with(impatient, 200 * MS).excluded_devices

        patient = RecoveryPolicy(name="slow-exclude",
                                 retry_timeout_ns=10 * MS, max_retries=1,
                                 device_timeout_ns=500 * MS)
        # Same wall-clock horizon: retries are long exhausted, but the
        # patient policy's grace period is still running.
        assert "sw1" not in run_with(patient, 200 * MS).excluded_devices
        # Once the grace elapses, the device is excluded after all.
        assert "sw1" in run_with(patient, 700 * MS).excluded_devices
