"""Tests for snapshot-ID arithmetic with wraparound."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ids import IdSpace


class TestUnbounded:
    def test_wrap_is_identity(self):
        ids = IdSpace(None)
        assert ids.wrap(12345) == 12345

    def test_cmp_is_plain_comparison(self):
        ids = IdSpace(None)
        assert ids.cmp(3, 5) == -1
        assert ids.cmp(5, 5) == 0
        assert ids.cmp(9, 5) == 1

    def test_unwrap_is_identity(self):
        ids = IdSpace(None)
        assert ids.unwrap_onto(7, 1000) == 7

    def test_window_effectively_unbounded(self):
        assert IdSpace(None).window > 10**18


class TestWrapped:
    def test_min_max_sid(self):
        with pytest.raises(ValueError):
            IdSpace(2)
        IdSpace(3)  # smallest valid

    def test_wrap(self):
        ids = IdSpace(7)  # size 8
        assert ids.wrap(0) == 0
        assert ids.wrap(7) == 7
        assert ids.wrap(8) == 0
        assert ids.wrap(19) == 3

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            IdSpace(7).wrap(-1)

    def test_cmp_without_rollover(self):
        ids = IdSpace(7)
        assert ids.cmp(2, 1) == 1
        assert ids.cmp(1, 2) == -1
        assert ids.cmp(4, 4) == 0

    def test_cmp_across_rollover(self):
        ids = IdSpace(7)  # window 3
        # Epoch 8 wraps to 0 and follows epoch 7.
        assert ids.cmp(0, 7) == 1
        assert ids.cmp(7, 0) == -1
        assert ids.cmp(1, 6) == 1  # 9 vs 6

    def test_cmp_out_of_range_rejected(self):
        ids = IdSpace(7)
        with pytest.raises(ValueError):
            ids.cmp(8, 0)

    def test_succ_wraps(self):
        ids = IdSpace(7)
        assert ids.succ(6) == 7
        assert ids.succ(7) == 0

    def test_forward_distance(self):
        ids = IdSpace(7)
        assert ids.forward_distance(3, 5) == 2
        assert ids.forward_distance(6, 1) == 3
        assert ids.forward_distance(4, 4) == 0

    def test_unwrap_onto_forward(self):
        ids = IdSpace(7)
        # Reference epoch 13 (wraps to 5); wrapped 6 -> 14.
        assert ids.unwrap_onto(6, 13) == 14

    def test_unwrap_onto_backward(self):
        ids = IdSpace(7)
        # Reference 13 (5); wrapped 4 -> nearest is 12.
        assert ids.unwrap_onto(4, 13) == 12

    def test_unwrap_never_negative(self):
        ids = IdSpace(7)
        assert ids.unwrap_onto(7, 0) >= 0


class TestWrappedProperties:
    @given(st.integers(min_value=3, max_value=1000),
           st.integers(min_value=0, max_value=10**6))
    def test_property_wrap_within_range(self, max_sid, epoch):
        ids = IdSpace(max_sid)
        assert 0 <= ids.wrap(epoch) <= max_sid

    @given(st.integers(min_value=3, max_value=255),
           st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=0, max_value=10**6))
    def test_property_cmp_matches_truth_within_window(self, max_sid, a, b):
        ids = IdSpace(max_sid)
        if abs(a - b) > ids.window:
            return  # outside the guarantee
        expected = (a > b) - (a < b)
        assert ids.cmp(ids.wrap(a), ids.wrap(b)) == expected

    @given(st.integers(min_value=3, max_value=255),
           st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=-100, max_value=100))
    def test_property_unwrap_recovers_epoch_within_window(self, max_sid,
                                                          reference, delta):
        ids = IdSpace(max_sid)
        true_epoch = reference + delta
        if true_epoch < 0 or abs(delta) > ids.window:
            return
        assert ids.unwrap_onto(ids.wrap(true_epoch), reference) == true_epoch

    @given(st.integers(min_value=3, max_value=255),
           st.integers(min_value=0, max_value=10**6))
    def test_property_succ_agrees_with_unwrapped_increment(self, max_sid, a):
        ids = IdSpace(max_sid)
        assert ids.succ(ids.wrap(a)) == ids.wrap(a + 1)
