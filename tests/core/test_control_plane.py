"""Tests for the switch control plane (Figure 7 + liveness)."""

import random

import pytest

from repro.core.control_plane import (ControlPlaneConfig, NotificationChannel,
                                      SwitchControlPlane)
from repro.core.dataplane import SpeedlightUnit
from repro.core.ids import IdSpace
from repro.core.notifications import Notification
from repro.sim.clock import Clock
from repro.sim.engine import MS, Simulator, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import FlowKey, Packet, SnapshotHeader
from repro.sim.switch import Direction, UnitId
from repro.topology import single_switch

UNIT_A = UnitId("sw0", 0, Direction.INGRESS)


def _pkt(sid):
    pkt = Packet(flow=FlowKey("a", "b", 1, 2))
    pkt.snapshot = SnapshotHeader(sid=sid)
    return pkt


def _fast_cp_config(**overrides):
    defaults = dict(notification_service_ns=1000, notification_jitter_ns=0,
                    initiation_cpu_ns=100, initiation_jitter_ns=0,
                    wakeup_median_ns=100, wakeup_tail_probability=0.0,
                    reinitiation_timeout_ns=0, probe_delay_ns=0)
    defaults.update(overrides)
    return ControlPlaneConfig(**defaults)


def _bench(channel_state=False, max_sid=255, cp_config=None, ship=None):
    """A control plane over a real single-switch network, with one unit
    registered manually for white-box driving."""
    net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
    switch = net.switch("sw0")
    shipped = []
    cp = SwitchControlPlane(switch, Clock(), IdSpace(max_sid),
                            channel_state=channel_state,
                            config=cp_config or _fast_cp_config(),
                            ship=ship or shipped.append)
    agent = SpeedlightUnit(UNIT_A, cp.ids, lambda: 7,
                           channel_state=channel_state,
                           notify=switch.send_notification)
    switch.ports[0].ingress.snapshot_agent = agent
    cp.register_unit(agent, gating_channels=[0] if channel_state else [])
    return net, cp, agent, shipped


class TestNotificationChannel:
    def _channel(self, capacity=4, service=1000):
        sim = Simulator()
        handled = []
        channel = NotificationChannel(
            sim, random.Random(1),
            _fast_cp_config(buffer_capacity=capacity,
                            notification_service_ns=service),
            handled.append)
        return sim, channel, handled

    def _notification(self, i=0):
        return Notification(unit=UNIT_A, old_sid=i, new_sid=i + 1,
                            timestamp_ns=i)

    def test_serial_service(self):
        sim, channel, handled = self._channel()
        channel.deliver(self._notification(0))
        channel.deliver(self._notification(1))
        sim.run(until=1500)
        assert len(handled) == 1  # second still queued behind the first
        sim.run()
        assert len(handled) == 2

    def test_overflow_drops(self):
        sim, channel, handled = self._channel(capacity=2)
        for i in range(5):
            channel.deliver(self._notification(i))
        sim.run()
        # One in service + two buffered; the rest dropped.
        assert channel.dropped == 2
        assert len(handled) == 3

    def test_backlog_tracking(self):
        sim, channel, _handled = self._channel(capacity=100)
        for i in range(10):
            channel.deliver(self._notification(i))
        assert channel.backlog == 10
        sim.run()
        assert channel.backlog == 0
        assert channel.max_backlog == 10


class TestNoChannelState:
    def test_record_shipped_on_advance(self):
        net, cp, agent, shipped = _bench()
        agent.process_packet(_pkt(1), 0, now_ns=5)
        net.run(until=1 * MS)
        assert len(shipped) == 1
        record = shipped[0]
        assert record.epoch == 1
        assert record.value == 7
        assert record.consistent
        assert record.channel_state is None

    def test_skipped_epochs_inferred_from_above(self):
        net, cp, agent, shipped = _bench()
        agent.process_packet(_pkt(3), 0, now_ns=5)  # jump 0 -> 3
        net.run(until=1 * MS)
        assert [r.epoch for r in shipped] == [1, 2, 3]
        # Figure 7 lines 19-21: uninitialized slots take the value of the
        # nearest initialized slot above.
        assert all(r.value == 7 for r in shipped)
        assert all(r.consistent for r in shipped)

    def test_progress_log_filled(self):
        net, cp, agent, _ = _bench()
        agent.process_packet(_pkt(1), 0, now_ns=5)
        net.run(until=1 * MS)
        assert [(e, u) for (e, u, _t) in cp.progress_log] == [(1, UNIT_A)]

    def test_rollover_handled_via_unwrap(self):
        net, cp, agent, shipped = _bench(max_sid=7)
        for epoch in range(1, 12):  # crosses the wrap at 8
            agent.process_packet(_pkt(epoch % 8), 0, now_ns=net.sim.now + 1)
            # Let the CP digest each epoch: the no-lapping window (the
            # observer's out-of-band duty) caps how far the data plane
            # may run ahead of the control plane's reads.
            net.run(until=net.sim.now + 1 * MS)
        assert [r.epoch for r in shipped] == list(range(1, 12))

    def test_lapping_loses_epochs_as_documented(self):
        # Anti-test: if the data plane races a full wrap ahead of the CP
        # (violating the observer-enforced window), register reuse makes
        # old epochs unrecoverable.  This pins the documented failure
        # mode rather than silently relying on it.
        net, cp, agent, shipped = _bench(max_sid=7)
        for epoch in range(1, 12):
            agent.process_packet(_pkt(epoch % 8), 0, now_ns=epoch)
        net.run(until=5 * MS)
        assert len(shipped) < 11


class TestChannelState:
    def test_completion_gated_on_last_seen(self):
        net, cp, agent, shipped = _bench(channel_state=True)
        agent.process_packet(_pkt(1), channel_id=0, now_ns=5)
        net.run(until=1 * MS)
        # Advance and last-seen move together on a single channel, so the
        # epoch finalizes immediately.
        assert [r.epoch for r in shipped] == [1]
        assert shipped[0].channel_state == 0

    def test_in_flight_credit_included(self):
        net, cp, agent, shipped = _bench(channel_state=True)
        agent.process_packet(_pkt(1), 0, 5)
        agent.process_packet(_pkt(0), 0, 6)   # in-flight for epoch 1
        agent.process_packet(_pkt(2), 0, 7)
        net.run(until=1 * MS)
        by_epoch = {r.epoch: r for r in shipped}
        assert by_epoch[2].consistent
        # The credit was folded into epoch... the credit lands in the
        # current slot at arrival time, which was epoch 1.
        assert by_epoch[1].channel_state == 1

    def test_skip_marks_intermediate_epochs_inconsistent(self):
        net, cp, agent, shipped = _bench(channel_state=True)
        agent.process_packet(_pkt(4), 0, 5)  # jump 0 -> 4
        net.run(until=1 * MS)
        by_epoch = {r.epoch: r for r in shipped}
        assert set(by_epoch) == {1, 2, 3, 4}
        assert not by_epoch[1].consistent
        assert not by_epoch[2].consistent
        assert not by_epoch[3].consistent
        assert by_epoch[4].consistent  # the landing epoch keeps its state

    def test_multiple_gating_channels_gate_on_minimum(self):
        net = Network(single_switch(num_hosts=3), NetworkConfig(seed=1))
        switch = net.switch("sw0")
        shipped = []
        cp = SwitchControlPlane(switch, Clock(), IdSpace(255),
                                channel_state=True,
                                config=_fast_cp_config(),
                                ship=shipped.append)
        agent = SpeedlightUnit(UNIT_A, cp.ids, lambda: 7, channel_state=True,
                               notify=switch.send_notification)
        switch.ports[0].ingress.snapshot_agent = agent
        cp.register_unit(agent, gating_channels=[0, 1])
        agent.process_packet(_pkt(1), channel_id=0, now_ns=5)
        net.run(until=1 * MS)
        assert shipped == []  # channel 1 still at 0
        agent.process_packet(_pkt(1), channel_id=1, now_ns=10)
        net.run(until=2 * MS)
        assert [r.epoch for r in shipped] == [1]

    def test_exclude_channel_unblocks_completion(self):
        net = Network(single_switch(num_hosts=3), NetworkConfig(seed=1))
        switch = net.switch("sw0")
        shipped = []
        cp = SwitchControlPlane(switch, Clock(), IdSpace(255),
                                channel_state=True,
                                config=_fast_cp_config(),
                                ship=shipped.append)
        agent = SpeedlightUnit(UNIT_A, cp.ids, lambda: 7, channel_state=True,
                               notify=switch.send_notification)
        switch.ports[0].ingress.snapshot_agent = agent
        cp.register_unit(agent, gating_channels=[0, 1])
        agent.process_packet(_pkt(1), channel_id=0, now_ns=5)
        net.run(until=1 * MS)
        assert shipped == []
        cp.exclude_channel(UNIT_A, 1)  # operator removes the idle neighbor
        assert [r.epoch for r in shipped] == [1]


class TestDropRecovery:
    def test_poll_registers_recovers_lost_notifications(self):
        # Tiny buffer: most notifications drop.
        net, cp, agent, shipped = _bench(
            cp_config=_fast_cp_config(buffer_capacity=1,
                                      notification_service_ns=500 * US))
        for epoch in range(1, 6):
            agent.process_packet(_pkt(epoch), 0, now_ns=epoch)
        net.run(until=10 * MS)
        assert cp.channel.dropped > 0
        assert len(shipped) < 5
        cp.poll_registers()
        assert {r.epoch for r in shipped} == {1, 2, 3, 4, 5}

    def test_notification_gap_marks_conservatively(self):
        net, cp, agent, shipped = _bench(channel_state=True)
        # Simulate a dropped notification by delivering epoch 2's
        # notification with old values claiming a prior unseen advance.
        cp.channel.deliver(Notification(unit=UNIT_A, old_sid=1, new_sid=2,
                                        timestamp_ns=5, channel=0,
                                        old_last_seen=1, new_last_seen=2))
        net.run(until=1 * MS)
        by_epoch = {r.epoch: r for r in shipped}
        # Epochs 1 and 2 are suspect: the CP missed epoch 1's notification
        # (and the data-plane state backing it), so both ship inconsistent.
        assert not by_epoch[1].consistent
        assert not by_epoch[2].consistent


class TestInitiation:
    def test_initiation_reaches_units_and_ships_records(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
        from repro.core import DeploymentConfig, SpeedlightDeployment
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=False))
        cp = deployment.control_planes["sw0"]
        cp.schedule_initiation(epoch=1, at_wall_ns=1 * MS)
        net.run(until=50 * MS)
        assert cp.local_epoch_complete(1)
        assert cp.initiations_sent == 1

    def test_initiation_at_local_clock_time(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
        switch = net.switch("sw0")
        clock = Clock(offset_ns=-2 * MS)  # local clock runs behind
        cp = SwitchControlPlane(switch, clock, IdSpace(255),
                                channel_state=False,
                                config=_fast_cp_config())
        agent = SpeedlightUnit(UNIT_A, cp.ids, lambda: 0,
                               notify=switch.send_notification)
        switch.ports[0].ingress.snapshot_agent = agent
        switch.ports[0].egress.snapshot_agent = SpeedlightUnit(
            UnitId("sw0", 0, Direction.EGRESS), cp.ids, lambda: 0)
        cp.register_unit(agent, [])
        cp.schedule_initiation(epoch=1, at_wall_ns=5 * MS)
        net.run(until=4 * MS)
        assert agent.sid == 0  # local clock hasn't reached 5 ms yet
        net.run(until=10 * MS)
        assert agent.sid == 1  # fires at true time 7 ms (5 ms local)

    def test_reinitiation_after_timeout(self):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
        from repro.core import DeploymentConfig, SpeedlightDeployment
        from repro.core import ControlPlaneConfig
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=False,
            control_plane=ControlPlaneConfig(
                reinitiation_timeout_ns=5 * MS, max_reinitiations=2)))
        cp = deployment.control_planes["sw0"]
        # Sabotage: disconnect the notification sink so completion is
        # never observed locally -> retries must fire.
        net.switch("sw0").notification_sink = lambda n: None
        cp.schedule_initiation(epoch=1, at_wall_ns=1 * MS)
        net.run(until=100 * MS)
        assert cp.reinitiations_sent == 2

    def test_duplicate_registration_rejected(self):
        net, cp, agent, _ = _bench()
        with pytest.raises(ValueError):
            cp.register_unit(agent, [])


def _port_facing(net, switch_name, peer_name):
    """Index of ``switch_name``'s port whose link peer is ``peer_name``."""
    switch = net.switch(switch_name)
    for port_index in switch.connected_ports():
        peer, _kind = net.peer_of_port(switch_name, port_index)
        if peer == peer_name:
            return port_index
    raise AssertionError(f"{switch_name} has no port facing {peer_name}")


class TestCrashRecovery:
    """Crash/restart semantics used by the fault injector (repro.faults)."""

    def _two_switch(self, channel_state=True):
        from repro.core import DeploymentConfig, SpeedlightDeployment
        from repro.topology import linear
        net = Network(linear(num_switches=2, hosts_per_switch=1),
                      NetworkConfig(seed=5))
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=channel_state))
        return net, deployment

    def test_crash_is_idempotent_and_goes_offline(self):
        net, deployment = self._two_switch()
        cp = deployment.control_planes["sw0"]
        cp.crash()
        cp.crash()
        assert cp.crashes == 1
        assert not cp.channel.online

    def test_crash_flushes_queued_notifications(self):
        net, deployment = self._two_switch()
        cp = deployment.control_planes["sw0"]
        deployment.schedule_campaign(count=1, interval_ns=5 * MS)
        # Stop just after the initiation fires, while notifications from
        # the data plane are still queued for CPU service.
        net.run(until=int(1.05 * MS))
        queued = len(cp.channel._queue) + (1 if cp.channel._busy else 0)
        cp.crash()
        assert cp.notifications_lost_to_crash >= queued
        assert not cp.channel._queue

    def test_epochs_crossed_while_dead_ship_inconsistent(self):
        net, deployment = self._two_switch()
        cp = deployment.control_planes["sw0"]
        epochs = deployment.schedule_campaign(count=3, interval_ns=5 * MS)
        # Dead from before the first initiation until after the last.
        net.sim.schedule_at(MS // 2, cp.crash)
        net.sim.schedule_at(20 * MS, cp.restart)
        net.run(until=60 * MS)
        for epoch in epochs:
            snap = deployment.observer.snapshot(epoch)
            records = [r for unit, r in snap.records.items()
                       if unit.device == "sw0"]
            assert records, "restart recovery must still ship the epochs"
            assert not any(r.consistent for r in records)
        # The peer switch was healthy the whole time.
        healthy = [r for r in deployment.observer.snapshot(epochs[0])
                   .records.values() if r.unit.device == "sw1"]
        assert healthy and all(r.consistent for r in healthy)

    def test_restart_without_crash_is_a_noop(self):
        net, deployment = self._two_switch()
        cp = deployment.control_planes["sw0"]
        cp.restart()
        assert cp.crashes == 0
        assert cp.channel.online


class TestProbeLiveness:
    """§6 "Ensuring liveness": probes must complete snapshots on idle
    links — without spoofing the external channel's Last Seen."""

    def _idle_two_switch(self):
        from repro.core import DeploymentConfig, SpeedlightDeployment
        from repro.topology import linear
        net = Network(linear(num_switches=2, hosts_per_switch=1),
                      NetworkConfig(seed=5))
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True))
        return net, deployment

    def test_idle_link_snapshot_completes_via_probes(self):
        net, deployment = self._idle_two_switch()  # zero traffic
        epoch = deployment.take_snapshot(at_wall_ns=1 * MS)
        net.run(until=50 * MS)
        snap = deployment.observer.snapshot(epoch)
        assert snap.complete
        assert snap.consistent

    def test_local_probe_never_spoofs_external_last_seen(self):
        net, deployment = self._idle_two_switch()
        # Stall the sw0 -> sw1 direction: nothing (not even sw0's wire
        # probes) crosses, so sw1's external Last Seen must stay put even
        # though sw1's own CPU injects probes into that very ingress.
        sw0_egress = net.switch("sw0").ports[
            _port_facing(net, "sw0", "sw1")].egress
        sw0_egress.queue.pause()
        agent = net.switch("sw1").ports[
            _port_facing(net, "sw1", "sw0")].ingress.snapshot_agent
        epoch = deployment.take_snapshot(at_wall_ns=1 * MS)
        net.run(until=10 * MS)
        assert agent.sid == 1                     # CPU initiation arrived
        assert agent.read_last_seen(0) == 0       # wire saw nothing: no spoof
        assert not deployment.observer.snapshot(epoch).complete
        # Un-stall: the queued probe crosses and completion follows.
        sw0_egress.queue.resume()
        net.run(until=60 * MS)
        snap = deployment.observer.snapshot(epoch)
        assert agent.read_last_seen(0) >= 1
        assert snap.complete
