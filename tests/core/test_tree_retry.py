"""Tree-aware retry routing (repro.core.observer satellite).

When an aggregation tree is wired and a relay goes silent, a retry
round must cost O(fan-out) — one fabric re-initiation for the healthy
subtrees plus a unicast and per-child subtree re-send around each
culprit — never the flat O(devices) unicast sweep.  Without a tree the
legacy sweep must be untouched (golden traces depend on it).
"""

from __future__ import annotations

from repro.core import (AggregationConfig, DeploymentConfig, ObserverConfig,
                        SpeedlightDeployment)
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import fat_tree, leaf_spine


def _deploy(agg, seed=7, topo=None, **config_kwargs):
    network = Network(topo or fat_tree(k=4), NetworkConfig(seed=seed))
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", aggregation=agg, **config_kwargs))
    return network, deployment


# retry_timeout must outlast the partial-flush cascade (records from
# healthy subtrees reach the observer about one flush_timeout after
# initiation) or the retry round sees *nothing* reported and correctly
# declines the tree path; device_timeout must outlast the retry round.
_OBSERVER = dict(lead_time_ns=5 * MS, retry_timeout_ns=25 * MS,
                 max_retries=1, device_timeout_ns=70 * MS)


def _crashed_relay_run(degree=2):
    """Crash a mid-tree relay before the snapshot; run to resolution."""
    network, deployment = _deploy(
        AggregationConfig(degree=degree, flush_timeout_ns=10 * MS),
        observer=ObserverConfig(**_OBSERVER))
    tree = deployment.aggregation.tree
    relay = next(n for n in tree.order
                 if tree.children[n] and tree.parent[n] is not None)
    deployment.control_planes[relay].crash()
    epoch = deployment.take_snapshot()
    network.run(until=1 * S)
    return network, deployment, tree, relay, epoch


class TestTreeAwareRetry:
    def test_retry_cost_is_fanout_not_devices(self):
        network, deployment, tree, relay, epoch = _crashed_relay_run()
        observer = deployment.observer
        assert observer.retry_rounds >= 1
        # Each round: one fabric send covering every healthy subtree...
        assert observer.retry_fabric_sends == observer.retry_rounds
        # ...one unicast to the single culprit (the crashed relay)...
        assert observer.retry_unicasts == observer.retry_rounds
        # ...and one subtree re-initiation per tree child of the culprit.
        fan_out = len(tree.children[relay])
        assert (observer.retry_subtree_sends
                == observer.retry_rounds * fan_out)
        # O(fan-out), not O(devices): the whole round costs a constant
        # plus the culprit's fan-out, far below the flat sweep's cost.
        per_round = (observer.retry_fabric_sends + observer.retry_unicasts
                     + observer.retry_subtree_sends) / observer.retry_rounds
        assert per_round == 2 + fan_out
        assert per_round < len(deployment.control_planes)

    def test_stranded_descendants_are_not_unicast(self):
        network, deployment, tree, relay, epoch = _crashed_relay_run()
        snapshot = deployment.observer.snapshot(epoch)
        # The relay's whole subtree went silent with it, yet only the
        # culprit itself drew a unicast (one per round).
        stranded = [d for d in snapshot.excluded_devices if d != relay]
        assert stranded, "crash should strand the relay's subtree"
        assert (deployment.observer.retry_unicasts
                == deployment.observer.retry_rounds)

    def test_exclusion_outcome_matches_flat_attribution(self):
        network, deployment, tree, relay, epoch = _crashed_relay_run()
        snapshot = deployment.observer.snapshot(epoch)
        # Routing around the relay changes the message bill, not the
        # verdict: the relay is silent, its subtree stranded.
        assert snapshot.exclusion_reasons[relay] == "silent"
        assert set(snapshot.excluded_devices) >= {relay}

    def test_flat_deployment_keeps_legacy_unicast_sweep(self):
        network, deployment = _deploy(
            None, topo=leaf_spine(hosts_per_leaf=1),
            observer=ObserverConfig(**_OBSERVER))
        network.switch("leaf1").notification_sink = lambda n: None
        deployment.take_snapshot()
        network.run(until=1 * S)
        observer = deployment.observer
        assert observer.retry_rounds >= 1
        assert observer.retry_fabric_sends == 0
        assert observer.retry_subtree_sends == 0
        assert (observer.retry_unicasts
                == observer.retry_rounds * len(deployment.control_planes))

    def test_tree_with_nothing_silent_falls_back_to_sweep(self):
        # A device that is slow-but-reporting leaves no silent set; the
        # tree path declines and the full sweep runs as before.
        network, deployment = _deploy(
            AggregationConfig(degree=2, flush_timeout_ns=10 * MS),
            observer=ObserverConfig(**_OBSERVER))
        snapshot_epoch = deployment.take_snapshot()
        network.run(until=1 * S)
        observer = deployment.observer
        # Healthy run: no retries at all is the common case; if a retry
        # did fire, it must not have used the tree path spuriously.
        if observer.retry_rounds:
            assert observer.retry_fabric_sends <= observer.retry_rounds
        assert deployment.observer.snapshot(snapshot_epoch).status.value in (
            "complete", "partial")
