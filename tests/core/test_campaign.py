"""Tests for the consistent-campaign driver."""

import pytest

from repro.core import (CampaignConfig, ConsistentCampaign,
                        ControlPlaneConfig, DeploymentConfig,
                        ObserverConfig, SpeedlightDeployment)
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine, single_switch
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


def _deploy(topo=None, **dep_kwargs):
    net = Network(topo or single_switch(num_hosts=2), NetworkConfig(seed=3))
    dep_kwargs.setdefault("metric", "packet_count")
    dep = SpeedlightDeployment(net, DeploymentConfig(**dep_kwargs))
    return net, dep


class TestHappyPath:
    def test_collects_target_without_retries(self):
        net, dep = _deploy()
        campaign = ConsistentCampaign(net.sim, dep.observer,
                                      CampaignConfig(target=5,
                                                     interval_ns=5 * MS))
        campaign.start()
        net.run(until=1 * S)
        assert campaign.done
        assert len(campaign.usable) == 5
        assert campaign.attempts == 5
        assert campaign.discarded == []

    def test_done_callback_fires_once(self):
        net, dep = _deploy()
        campaign = ConsistentCampaign(net.sim, dep.observer,
                                      CampaignConfig(target=3,
                                                     interval_ns=5 * MS))
        calls = []
        campaign.on_done(lambda c: calls.append(len(c.usable)))
        campaign.start()
        net.run(until=1 * S)
        assert calls == [3]

    def test_start_idempotent(self):
        net, dep = _deploy()
        campaign = ConsistentCampaign(net.sim, dep.observer,
                                      CampaignConfig(target=2,
                                                     interval_ns=5 * MS))
        campaign.start()
        campaign.start()
        net.run(until=1 * S)
        assert campaign.attempts == 2

    def test_target_validated(self):
        net, dep = _deploy()
        with pytest.raises(ValueError):
            ConsistentCampaign(net.sim, dep.observer, CampaignConfig(target=0))


class TestRetries:
    def test_inconsistent_snapshots_replaced(self):
        """A switch that misses most initiations produces inconsistent
        channel-state epochs; the campaign must keep scheduling until the
        usable target is met anyway."""
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=8))
        duration = 3 * S
        wl = PoissonWorkload(net, PoissonConfig(
            seed=9, rate_pps=20_000, stop_ns=duration, sport_churn=True))
        wl.start()
        dep = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True,
            control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS),
            observer=ObserverConfig(retry_timeout_ns=30 * MS, max_retries=1)))
        # Sabotage leaf1's initiation scheduling for every other epoch.
        cp = dep.control_planes["leaf1"]
        original = cp.schedule_initiation
        state = {"n": 0}

        def flaky(epoch, at_wall_ns):
            state["n"] += 1
            if state["n"] % 2 == 0:
                return  # dropped registration
            original(epoch, at_wall_ns)

        cp.schedule_initiation = flaky
        campaign = ConsistentCampaign(net.sim, dep.observer,
                                      CampaignConfig(target=6,
                                                     interval_ns=10 * MS,
                                                     deadline_ns=80 * MS))
        campaign.start()
        net.run(until=duration)
        assert campaign.done
        assert len(campaign.usable) == 6
        assert all(s.usable for s in campaign.usable)
        assert campaign.attempts > 6  # replacements actually happened

    def test_max_attempts_bounds_runaway(self):
        net, dep = _deploy()
        # Break the deployment entirely: nothing ever completes.
        net.switch("sw0").notification_sink = lambda n: None
        campaign = ConsistentCampaign(
            net.sim, dep.observer,
            CampaignConfig(target=3, interval_ns=5 * MS, max_attempts=5,
                           deadline_ns=20 * MS))
        campaign.start()
        net.run(until=2 * S)
        assert not campaign.done
        assert campaign.exhausted
        assert campaign.attempts == 5
