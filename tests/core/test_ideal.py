"""Tests for the idealised Figure 3 protocol, including differential
tests against the hardware-constrained unit."""

from hypothesis import given, settings, strategies as st

from repro.core.dataplane import SpeedlightUnit
from repro.core.ideal import IdealUnit
from repro.core.ids import IdSpace
from repro.sim.packet import FlowKey, Packet, PacketType, SnapshotHeader
from repro.sim.switch import Direction, UnitId

UNIT = UnitId("sw0", 0, Direction.INGRESS)


def _pkt(sid, packet_type=PacketType.DATA):
    pkt = Packet(flow=FlowKey("a", "b", 1, 2))
    pkt.snapshot = SnapshotHeader(sid=sid, packet_type=packet_type)
    return pkt


def _ideal(value=lambda: 0, channel_state=True):
    return IdealUnit(UNIT, value, channel_state=channel_state)


class TestIdealCapture:
    def test_jump_fills_every_intermediate_epoch(self):
        values = iter([10, 10, 10])
        unit = _ideal(value=lambda: 10)
        unit.process_packet(_pkt(3), 0, 50)
        for epoch in (1, 2, 3):
            assert unit.snaps[epoch].value == 10
            assert unit.snaps[epoch].captured_ns == 50

    def test_in_flight_updates_every_straddled_epoch(self):
        unit = _ideal()
        unit.process_packet(_pkt(3), 0, 10)
        unit.process_packet(_pkt(1), 0, 20)  # in flight for epochs 2 and 3
        assert unit.snaps[2].channel_state == 1
        assert unit.snaps[3].channel_state == 1
        assert unit.snaps[1].channel_state == 0

    def test_initiation_not_in_flight(self):
        unit = _ideal()
        unit.process_packet(_pkt(2), 0, 10)
        unit.process_packet(_pkt(0, PacketType.INITIATION), -1, 20)
        assert unit.snaps[1].channel_state == 0
        assert unit.snaps[2].channel_state == 0

    def test_completed_through(self):
        unit = _ideal()
        unit.process_packet(_pkt(2), channel_id=0, now_ns=10)
        unit.process_packet(_pkt(1), channel_id=1, now_ns=20)
        assert unit.completed_through([0, 1]) == 1
        assert unit.completed_through([0]) == 2
        assert unit.completed_through([]) == 2

    def test_completed_through_without_channel_state(self):
        unit = _ideal(channel_state=False)
        unit.process_packet(_pkt(4), 0, 10)
        assert unit.completed_through([0]) == 4

    def test_snapshot_value_with_and_without_channel(self):
        unit = _ideal(value=lambda: 5)
        unit.process_packet(_pkt(1), 0, 10)
        unit.process_packet(_pkt(0), 0, 20)
        assert unit.snapshot_value(1) == 6
        assert unit.snapshot_value(1, include_channel_state=False) == 5

    def test_register_api_compatibility(self):
        unit = _ideal(value=lambda: 5)
        unit.process_packet(_pkt(1), 0, 10)
        assert unit.read_slot(1).valid
        assert not unit.read_slot(99).valid
        unit.clear_slot(1)
        assert not unit.read_slot(1).valid
        assert unit.read_last_seen(0) == 1


# Strategy: sequences of (carried sid delta, channel) events with
# nondecreasing per-channel sids and skips allowed.
_events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),   # sid advance
              st.integers(min_value=0, max_value=2)),  # channel
    min_size=1, max_size=40)


@settings(max_examples=60)
@given(_events)
def test_property_speedlight_matches_ideal_when_no_skips(events):
    """Differential test: when every ID advance the unit observes is by
    exactly one (the common case the hardware handles), the constrained
    unit's slot contents must equal the ideal protocol's."""
    counter = {"v": 0}
    ideal = IdealUnit(UNIT, lambda: counter["v"], channel_state=True)
    speed = SpeedlightUnit(UNIT, IdSpace(1023), lambda: counter["v"],
                           channel_state=True)
    sid = 0
    now = 0
    for advance, channel in events:
        # Constrain to single-step advances (advance in {0, 1}): collapse
        # 2 -> 1 so the no-skip precondition holds.
        sid += min(advance, 1)
        now += 10
        ideal.process_packet(_pkt(sid), channel, now)
        speed.process_packet(_pkt(sid), channel, now)
        counter["v"] += 1  # the counter ticks after snapshot processing
    assert speed.sid == ideal.sid
    for epoch in range(1, sid + 1):
        islot = ideal.snaps.get(epoch)
        sslot = speed.read_slot(epoch)
        assert islot is not None and sslot.valid
        assert sslot.value == islot.value
        assert sslot.channel_state == islot.channel_state


@settings(max_examples=60)
@given(_events)
def test_property_current_epoch_matches_ideal_even_with_skips(events):
    """Even under ID skips, the *latest* epoch's local value matches the
    ideal protocol (only intermediate epochs are sacrificed)."""
    counter = {"v": 0}
    ideal = IdealUnit(UNIT, lambda: counter["v"], channel_state=False)
    speed = SpeedlightUnit(UNIT, IdSpace(1023), lambda: counter["v"],
                           channel_state=False)
    sid = 0
    now = 0
    for advance, channel in events:
        sid += advance
        now += 10
        ideal.process_packet(_pkt(sid), channel, now)
        speed.process_packet(_pkt(sid), channel, now)
        counter["v"] += 1
    if sid == 0:
        return
    assert speed.read_slot(speed.ids.wrap(sid)).value == \
        ideal.snaps[sid].value
