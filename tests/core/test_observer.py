"""Tests for the snapshot observer."""

import pytest

from repro.core import (DeploymentConfig, ObserverConfig, SpeedlightDeployment,
                        SnapshotStatus)
from repro.core.control_plane import UnitSnapshotRecord
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction, UnitId
from repro.topology import leaf_spine, single_switch


def _deploy(topo=None, seed=1, **dep_kwargs):
    net = Network(topo or single_switch(num_hosts=2), NetworkConfig(seed=seed))
    dep_kwargs.setdefault("metric", "packet_count")
    deployment = SpeedlightDeployment(net, DeploymentConfig(**dep_kwargs))
    return net, deployment


class TestBasicOperation:
    def test_take_snapshot_completes(self):
        net, dep = _deploy()
        epoch = dep.take_snapshot()
        net.run(until=200 * MS)
        snap = dep.observer.snapshot(epoch)
        assert snap.status is SnapshotStatus.COMPLETE
        assert len(snap.records) == 4  # 2 ports x 2 directions

    def test_epochs_increment(self):
        net, dep = _deploy()
        assert dep.take_snapshot() == 1
        assert dep.take_snapshot() == 2

    def test_campaign_schedules_at_cadence(self):
        net, dep = _deploy()
        epochs = dep.schedule_campaign(count=3, interval_ns=10 * MS)
        walls = [dep.observer.snapshot(e).requested_wall_ns for e in epochs]
        assert walls[1] - walls[0] == 10 * MS
        assert walls[2] - walls[1] == 10 * MS
        net.run(until=300 * MS)
        assert len(dep.observer.completed_snapshots()) == 3

    def test_campaign_count_validated(self):
        _net, dep = _deploy()
        with pytest.raises(ValueError):
            dep.schedule_campaign(count=0, interval_ns=1 * MS)

    def test_completion_callback_fires(self):
        net, dep = _deploy()
        seen = []
        dep.observer.on_complete(lambda snap: seen.append(snap.epoch))
        epoch = dep.take_snapshot()
        net.run(until=200 * MS)
        assert seen == [epoch]

    def test_completed_snapshots_ordered_and_filtered(self):
        net, dep = _deploy()
        dep.schedule_campaign(count=3, interval_ns=5 * MS)
        net.run(until=300 * MS)
        snaps = dep.observer.completed_snapshots(require_consistent=True)
        assert [s.epoch for s in snaps] == [1, 2, 3]


class TestWindowEnforcement:
    def test_stale_pending_snapshots_abandoned_at_initiation(self):
        # Tiny ID space: window = (8 - 1) // 2 = 3.
        net, dep = _deploy(max_sid=7,
                           observer=ObserverConfig(retry_timeout_ns=10 * S))
        # Break completion so snapshots stay pending.
        for sw in net.switches.values():
            sw.notification_sink = lambda n: None
        epochs = [dep.take_snapshot() for _ in range(6)]
        # Nothing is abandoned until initiations actually circulate.
        assert all(dep.observer.snapshot(e).status is SnapshotStatus.PENDING
                   for e in epochs)
        net.run(until=1 * S)
        statuses = [dep.observer.snapshot(e).status for e in epochs]
        assert statuses[0] is SnapshotStatus.ABANDONED
        assert statuses[1] is SnapshotStatus.ABANDONED
        assert statuses[-1] is not SnapshotStatus.ABANDONED

    def test_keeping_pace_never_abandons(self):
        # A long campaign on a tiny space is fine when completion keeps
        # up with the cadence.
        net, dep = _deploy(max_sid=7)
        epochs = dep.schedule_campaign(count=12, interval_ns=10 * MS)
        net.run(until=2 * S)
        statuses = {dep.observer.snapshot(e).status for e in epochs}
        assert statuses == {SnapshotStatus.COMPLETE}


class TestRetriesAndExclusion:
    def test_silent_device_excluded_and_snapshot_partial_or_complete(self):
        net, dep = _deploy(
            topo=leaf_spine(hosts_per_leaf=1),
            observer=ObserverConfig(retry_timeout_ns=10 * MS, max_retries=1))
        # leaf1's CPU never hears from its ASIC: it will never ship.
        net.switch("leaf1").notification_sink = lambda n: None
        epoch = dep.take_snapshot()
        net.run(until=1 * S)
        snap = dep.observer.snapshot(epoch)
        assert "leaf1" in snap.excluded_devices
        assert snap.status is SnapshotStatus.COMPLETE  # of remaining devices
        assert all(u.device != "leaf1" for u in snap.records)

    def test_retry_resends_initiations(self):
        net, dep = _deploy(
            observer=ObserverConfig(retry_timeout_ns=10 * MS, max_retries=2))
        cp = dep.control_planes["sw0"]
        net.switch("sw0").notification_sink = lambda n: None  # never done
        dep.take_snapshot()
        net.run(until=1 * S)
        assert cp.initiations_sent >= 3  # original + 2 retries


class TestRecordIntake:
    def test_unknown_epoch_ignored(self):
        _net, dep = _deploy()
        record = UnitSnapshotRecord(
            unit=UnitId("sw0", 0, Direction.INGRESS), epoch=999, value=1,
            channel_state=None, consistent=True, captured_ns=0, read_ns=0)
        dep.observer.on_unit_record(record)  # must not raise
        assert 999 not in dep.observer.snapshots

    def test_unexpected_unit_ignored(self):
        net, dep = _deploy()
        epoch = dep.take_snapshot()
        stray = UnitSnapshotRecord(
            unit=UnitId("ghost", 0, Direction.INGRESS), epoch=epoch, value=1,
            channel_state=None, consistent=True, captured_ns=0, read_ns=0)
        dep.observer.on_unit_record(stray)
        assert stray.unit not in dep.observer.snapshot(epoch).records


class TestNodeAttachment:
    def test_device_registered_later_joins_next_snapshot(self):
        net = Network(leaf_spine(hosts_per_leaf=1), NetworkConfig(seed=1))
        # Deploy on three of the four switches initially.
        deployment = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count",
            switches=["leaf0", "spine0", "spine1"]))
        first = deployment.take_snapshot()
        net.run(until=150 * MS)
        assert deployment.observer.snapshot(first).complete
        n_first = len(deployment.observer.snapshot(first).records)

        # Attach leaf1 at runtime: build a deployment over the remaining
        # switch via the public API, then point its shipping at the
        # original observer.
        extra = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", switches=["leaf1"]))
        # Merge: the new device reports to the original observer.
        cp = extra.control_planes["leaf1"]
        cp.ship = lambda record: net.mgmt.send(
            deployment.observer.on_unit_record, record)
        units = {u for u in extra.agents if u.device == "leaf1"}
        deployment.observer.register_device("leaf1", cp, units)
        net.refresh_header_stripping()

        second = deployment.take_snapshot()
        net.run(until=400 * MS)
        snap = deployment.observer.snapshot(second)
        assert snap.complete
        assert len(snap.records) == n_first + len(units)

    def test_duplicate_device_rejected(self):
        _net, dep = _deploy()
        cp = dep.control_planes["sw0"]
        with pytest.raises(ValueError):
            dep.observer.register_device("sw0", cp, set())

    def test_remove_device(self):
        _net, dep = _deploy()
        dep.observer.remove_device("sw0")
        assert dep.observer.control_planes == {}
