"""Tests for deployment wiring."""

import pytest

from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.core.dataplane import SpeedlightUnit
from repro.core.ideal import IdealUnit
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction, EXTERNAL_CHANNEL, UnitId
from repro.topology import leaf_spine, single_switch


def _net(topo=None, seed=1):
    return Network(topo or leaf_spine(), NetworkConfig(seed=seed))


class TestWiring:
    def test_agents_on_every_connected_unit(self):
        net = _net()
        dep = SpeedlightDeployment(net, metric="packet_count")
        expected = sum(2 * len(sw.connected_ports())
                       for sw in net.switches.values())
        assert len(dep.agents) == expected
        assert all(isinstance(a, SpeedlightUnit) for a in dep.agents.values())

    def test_counters_installed_under_metric_name(self):
        net = _net()
        SpeedlightDeployment(net, metric="byte_count")
        for sw in net.switches.values():
            for port_index in sw.connected_ports():
                assert "byte_count" in sw.ports[port_index].ingress.counters

    def test_config_and_kwargs_mutually_exclusive(self):
        net = _net()
        with pytest.raises(TypeError):
            SpeedlightDeployment(net, DeploymentConfig(), metric="byte_count")

    def test_gauge_metric_rejects_channel_state(self):
        net = _net()
        with pytest.raises(ValueError, match="gauge"):
            SpeedlightDeployment(net, metric="queue_depth",
                                 channel_state=True)

    def test_unknown_in_flight_rule_rejected(self):
        net = _net()
        from repro.counters.base import register_counter
        from repro.counters.basic import PacketCounter
        try:
            register_counter("custom_metric", PacketCounter)
        except ValueError:
            pass
        with pytest.raises(ValueError, match="in-flight"):
            SpeedlightDeployment(net, metric="custom_metric",
                                 channel_state=True)

    def test_ideal_units_selected(self):
        net = _net()
        dep = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", ideal_units=True))
        assert all(isinstance(a, IdealUnit) for a in dep.agents.values())
        assert dep.ids.max_sid is None

    def test_queue_depth_binds_egress_gauge(self):
        net = _net(single_switch(num_hosts=2))
        dep = SpeedlightDeployment(net, metric="queue_depth")
        sw = net.switch("sw0")
        ingress = sw.ports[0].ingress.counters.get("queue_depth")
        assert ingress.read() == 0  # ingress units have no queue


class TestGating:
    def test_no_gating_without_channel_state(self):
        net = _net()
        dep = SpeedlightDeployment(net, metric="packet_count",
                                   channel_state=False)
        for cp in dep.control_planes.values():
            for tracker in cp.trackers.values():
                assert tracker.gating == []

    def test_host_facing_ingress_not_gated(self):
        net = _net()
        dep = SpeedlightDeployment(net, metric="packet_count",
                                   channel_state=True)
        cp = dep.control_planes["leaf0"]
        host_port = net.port_toward("leaf0", "server0")
        tracker = cp.trackers[UnitId("leaf0", host_port, Direction.INGRESS)]
        assert tracker.gating == []

    def test_switch_facing_ingress_gated_on_external(self):
        net = _net()
        dep = SpeedlightDeployment(net, metric="packet_count",
                                   channel_state=True)
        cp = dep.control_planes["leaf0"]
        uplink = net.port_toward("leaf0", "spine0")
        tracker = cp.trackers[UnitId("leaf0", uplink, Direction.INGRESS)]
        assert tracker.gating == [EXTERNAL_CHANNEL]

    def test_egress_gating_excludes_infeasible_channels(self):
        net = _net()
        dep = SpeedlightDeployment(net, metric="packet_count",
                                   channel_state=True)
        cp = dep.control_planes["leaf0"]
        spine0_port = net.port_toward("leaf0", "spine0")
        spine1_port = net.port_toward("leaf0", "spine1")
        tracker = cp.trackers[UnitId("leaf0", spine0_port, Direction.EGRESS)]
        # Valley channel spine1 -> spine0 can never carry routed traffic.
        assert spine1_port not in tracker.gating
        assert 0 in tracker.gating  # server0's ingress can

    def test_gate_host_channels_opt_in(self):
        net = _net()
        dep = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", channel_state=True,
            gate_host_channels=True))
        cp = dep.control_planes["leaf0"]
        host_port = net.port_toward("leaf0", "server0")
        tracker = cp.trackers[UnitId("leaf0", host_port, Direction.INGRESS)]
        assert tracker.gating == [EXTERNAL_CHANNEL]


class TestPartialDeployment:
    def test_only_selected_switches_enabled(self):
        net = _net()
        dep = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", switches=["leaf0", "leaf1"]))
        assert set(dep.control_planes) == {"leaf0", "leaf1"}
        assert all(u.device in ("leaf0", "leaf1") for u in dep.agents)
        for spine in ("spine0", "spine1"):
            assert net.switch(spine).snapshot_units() == []

    def test_boundary_stripping_set(self):
        net = _net()
        SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", switches=["leaf0", "spine0"]))
        leaf0 = net.switch("leaf0")
        to_spine0 = net.port_toward("leaf0", "spine0")
        to_spine1 = net.port_toward("leaf0", "spine1")
        assert not leaf0.ports[to_spine0].egress.strip_header_for_peer
        assert leaf0.ports[to_spine1].egress.strip_header_for_peer

    def test_partial_deployment_end_to_end(self):
        net = _net()
        dep = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count", switches=["leaf0", "leaf1"]))
        epoch = dep.take_snapshot()
        net.run(until=200 * MS)
        snap = dep.observer.snapshot(epoch)
        assert snap.complete
        assert {u.device for u in snap.records} == {"leaf0", "leaf1"}


class TestConvenience:
    def test_notification_stats_aggregates(self):
        net = _net(single_switch(num_hosts=2))
        dep = SpeedlightDeployment(net, metric="packet_count")
        dep.take_snapshot()
        net.run(until=200 * MS)
        stats = dep.notification_stats()
        assert stats["received"] == 4
        assert stats["processed"] == 4
        assert stats["dropped"] == 0

    def test_sync_spread_requires_two_timestamps(self):
        net = _net(single_switch(num_hosts=2))
        dep = SpeedlightDeployment(net, metric="packet_count")
        assert dep.sync_spread_ns(1) is None
        dep.take_snapshot()
        net.run(until=200 * MS)
        assert dep.sync_spread_ns(1) >= 0
