"""Tests for the digest notification transport."""

import random

import pytest

from repro.core import ControlPlaneConfig, DeploymentConfig, SpeedlightDeployment
from repro.core.control_plane import DigestChannel
from repro.core.notifications import Notification
from repro.sim.engine import MS, Simulator, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction, UnitId
from repro.topology import single_switch

UNIT = UnitId("sw0", 0, Direction.INGRESS)


def _config(**overrides):
    defaults = dict(digest_batch=4, digest_timeout_ns=200 * US,
                    digest_service_ns=50 * US, digest_per_record_ns=10 * US,
                    buffer_capacity=64)
    defaults.update(overrides)
    return ControlPlaneConfig(**defaults)


def _channel(config=None):
    sim = Simulator()
    handled = []
    channel = DigestChannel(sim, random.Random(1), config or _config(),
                            handled.append)
    return sim, channel, handled


def _notification(i):
    return Notification(unit=UNIT, old_sid=i, new_sid=i + 1, timestamp_ns=i)


class TestBatching:
    def test_full_batch_ships_immediately(self):
        sim, channel, handled = _channel()
        for i in range(4):
            channel.deliver(_notification(i))
        # Shipped without waiting for the 200 us flush timer.
        sim.run(until=150 * US)
        assert len(handled) == 4
        assert channel.digests_shipped == 1

    def test_partial_batch_waits_for_flush_timer(self):
        sim, channel, handled = _channel()
        channel.deliver(_notification(0))
        sim.run(until=100 * US)
        assert handled == []  # still buffered on the ASIC
        sim.run(until=400 * US)
        assert len(handled) == 1

    def test_records_preserve_order_across_digests(self):
        sim, channel, handled = _channel()
        for i in range(10):
            channel.deliver(_notification(i))
        sim.run()
        assert [n.old_sid for n in handled] == list(range(10))

    def test_per_digest_cost_amortised(self):
        # 8 records at batch 4 = 2 wakeups; the serial socket channel
        # would pay 8 wakeups.
        sim, channel, handled = _channel()
        for i in range(8):
            channel.deliver(_notification(i))
        sim.run()
        assert channel.digests_shipped == 2
        assert channel.processed == 8

    def test_overflow_drops(self):
        sim, channel, handled = _channel(_config(buffer_capacity=3))
        for i in range(6):
            channel.deliver(_notification(i))
        sim.run()
        assert channel.dropped == 3


class TestTransportSelection:
    def _deploy(self, transport):
        net = Network(single_switch(num_hosts=2), NetworkConfig(seed=1))
        dep = SpeedlightDeployment(net, DeploymentConfig(
            metric="packet_count",
            control_plane=ControlPlaneConfig(
                notification_transport=transport)))
        return net, dep

    def test_digest_transport_completes_snapshots(self):
        net, dep = self._deploy("digest")
        assert isinstance(dep.control_planes["sw0"].channel, DigestChannel)
        epoch = dep.take_snapshot()
        net.run(until=300 * MS)
        assert dep.observer.snapshot(epoch).complete

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            self._deploy("carrier-pigeon")
