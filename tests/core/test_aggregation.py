"""The hierarchical snapshot fabric (repro.core.aggregation).

Covers the tentpole's contract from the outside in: deterministic tree
construction, record-conservation across every fabric mode (off / flat-
modeled / tree), the gating-min reduction, crash coupling with
silent-relay attribution at the observer, and composition with the
space-parallel sharded deployment.
"""

from __future__ import annotations

import pytest

from repro.core import (AggregationConfig, AggregationTree, DeploymentConfig,
                        ObserverConfig, SpeedlightDeployment)
from repro.core.sharded import OBSERVER_SHARD, ShardedSpeedlightDeployment
from repro.core.snapshot import SnapshotStatus
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.sim.shard import InProcessShardRunner
from repro.topology import fat_tree, leaf_spine


def _deploy(agg, seed=7, topo=None, **config_kwargs):
    network = Network(topo or fat_tree(k=4), NetworkConfig(seed=seed))
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", aggregation=agg, **config_kwargs))
    return network, deployment


def _campaign(network, deployment, count=4, interval_ns=10 * MS):
    epochs = deployment.schedule_campaign(count, interval_ns)
    network.run(until=1 * S)
    return [deployment.observer.snapshot(e) for e in epochs]


class TestTreeConstruction:
    def test_spans_participants_within_degree(self):
        topo = fat_tree(k=4)
        for degree in (1, 2, 4, 8):
            tree = AggregationTree.build(topo, sorted(topo.switches), degree)
            assert set(tree.order) == set(topo.switches)
            assert tree.parent[tree.root] is None
            for node, kids in tree.children.items():
                assert len(kids) <= degree, (node, kids)
            # Every non-root node's parent links back to it.
            for node in tree.order:
                if node != tree.root:
                    assert node in tree.children[tree.parent[node]]

    def test_deterministic_and_input_order_independent(self):
        topo = fat_tree(k=4)
        names = sorted(topo.switches)
        a = AggregationTree.build(topo, names, degree=3)
        b = AggregationTree.build(topo, list(reversed(names)), degree=3)
        assert a.root == b.root
        assert a.parent == b.parent
        assert a.children == b.children
        assert a.order == b.order

    def test_non_adjacent_participants_attach_as_leftovers(self):
        # Two leaves of a leaf-spine are only connected through spines;
        # with the spines excluded, BFS cannot reach the second leaf and
        # the leftover pass must still produce a spanning tree.
        topo = leaf_spine()
        leaves = [s for s in sorted(topo.switches) if s.startswith("leaf")]
        assert len(leaves) >= 2
        tree = AggregationTree.build(topo, leaves, degree=2)
        assert set(tree.order) == set(leaves)
        assert tree.parent[leaves[1]] in leaves

    def test_rejects_degenerate_inputs(self):
        topo = fat_tree(k=4)
        with pytest.raises(ValueError, match="degree"):
            AggregationTree.build(topo, sorted(topo.switches), degree=0)
        with pytest.raises(ValueError, match="zero"):
            AggregationTree.build(topo, [], degree=2)

    def test_config_rejects_negative_degree(self):
        with pytest.raises(ValueError, match="degree"):
            AggregationConfig(degree=-1)


class TestRecordConservation:
    def test_all_modes_complete_with_equal_totals(self):
        baseline = None
        for agg in (None, AggregationConfig(degree=0),
                    AggregationConfig(degree=4)):
            network, deployment = _deploy(agg)
            snaps = _campaign(network, deployment)
            assert all(s.usable for s in snaps), agg
            values = [s.values_by_unit() for s in snaps]
            if baseline is None:
                baseline = values
            else:
                assert values == baseline, agg

    def test_tree_collapses_observer_intake(self):
        _, flat = _deploy(AggregationConfig(degree=0))
        network_f = flat.network
        _campaign(network_f, flat)
        _, tree = _deploy(AggregationConfig(degree=4))
        _campaign(tree.network, tree)
        flat_stats = flat.aggregation.stats()
        tree_stats = tree.aggregation.stats()
        # 4 epochs x 160 units, one message each, vs O(1) per epoch.
        assert flat_stats["intake_processed"] == 4 * 160
        assert tree_stats["intake_processed"] < 4 * 160 / 10
        assert tree_stats["records_lost"] == 0
        assert tree_stats["dropped"] == 0

    def test_aggregation_off_wires_nothing(self):
        _, deployment = _deploy(None)
        assert deployment.aggregation is None
        assert deployment.observer.initiate_via_fabric is None
        assert deployment.observer.relay_tree is None

    def test_tree_run_is_deterministic(self):
        runs = []
        for _ in range(2):
            network, deployment = _deploy(AggregationConfig(degree=4))
            snaps = _campaign(network, deployment)
            runs.append((network.sim.events_run,
                         [s.values_by_unit() for s in snaps],
                         deployment.aggregation.stats()))
        assert runs[0] == runs[1]


class TestGatingMinReduction:
    def test_progress_floor_reaches_observer(self):
        network, deployment = _deploy(AggregationConfig(degree=4))
        epochs = deployment.schedule_campaign(3, 10 * MS)
        assert deployment.observer.fabric_min_epoch == 0
        network.run(until=1 * S)
        floor = deployment.observer.fabric_min_epoch
        assert 1 <= floor <= epochs[-1] + 1

    def test_unheard_child_caps_the_floor(self):
        network, deployment = _deploy(AggregationConfig(degree=2))
        tree = deployment.aggregation.tree
        relay = next(n for n in tree.order if tree.children[n])
        agent = deployment.aggregation.agents[relay]
        # Before any child reports, the subtree floor must stay at 0 no
        # matter how far the local control plane has advanced.
        assert agent.min_finalized() == 0


class TestCrashCouplingAndAttribution:
    def _crash_relay_setup(self):
        # device_timeout must outlast the partial-flush cascade (one
        # flush_timeout after initiation) or every device looks silent.
        observer = ObserverConfig(lead_time_ns=5 * MS,
                                  retry_timeout_ns=10 * MS, max_retries=1,
                                  device_timeout_ns=40 * MS)
        network, deployment = _deploy(
            AggregationConfig(degree=2, flush_timeout_ns=10 * MS),
            observer=observer)
        tree = deployment.aggregation.tree
        # A mid-tree relay: not the root, and has children to strand.
        relay = next(n for n in tree.order
                     if tree.children[n] and tree.parent[n] is not None)
        subtree = list(tree.children[relay])
        frontier = list(subtree)
        while frontier:
            node = frontier.pop()
            frontier.extend(tree.children[node])
            if node not in subtree:
                subtree.append(node)
        return network, deployment, relay, subtree

    def test_silent_relay_subtree_attributed_not_blamed(self):
        network, deployment, relay, subtree = self._crash_relay_setup()
        deployment.control_planes[relay].crash()
        epoch = deployment.take_snapshot()
        network.run(until=200 * MS)
        snapshot = deployment.observer.snapshot(epoch)
        assert snapshot.status is not SnapshotStatus.PENDING
        # Exactly the crashed relay and its stranded subtree dropped out;
        # every device outside it reported.
        assert snapshot.excluded_devices == set(subtree) | {relay}
        # The crashed relay itself is the genuinely silent device...
        assert snapshot.exclusion_reasons[relay] == "silent"
        # ...and every stranded descendant is attributed to it instead
        # of being marked silent (satellite: no unattributed timeout).
        for device in subtree:
            assert snapshot.exclusion_reasons[device] == f"relay:{relay}", (
                device, snapshot.exclusion_reasons)

    def test_restarted_relay_carries_later_epochs(self):
        network, deployment, relay, _subtree = self._crash_relay_setup()
        cp = deployment.control_planes[relay]
        network.sim.schedule_at(1 * MS, cp.crash)
        network.sim.schedule_at(40 * MS, cp.restart)
        first = deployment.take_snapshot()          # lost behind the crash
        network.run(until=60 * MS)
        second = deployment.take_snapshot()         # after the restart
        network.run(until=300 * MS)
        assert deployment.observer.snapshot(first).excluded_devices
        assert deployment.observer.snapshot(second).usable

    def test_crash_takes_agent_offline_and_back(self):
        network, deployment, relay, _subtree = self._crash_relay_setup()
        agent = deployment.aggregation.agents[relay]
        cp = deployment.control_planes[relay]
        assert agent.online
        cp.crash()
        assert not agent.online and not agent.channel.online
        cp.restart()
        assert agent.online and agent.channel.online


def _sharded_setup(worker, agg_degree):
    agg = (None if agg_degree is None
           else AggregationConfig(degree=agg_degree))
    deployment = ShardedSpeedlightDeployment(worker, DeploymentConfig(
        metric="packet_count", aggregation=agg))
    epochs = []
    if deployment.is_observer_shard:
        epochs.extend(deployment.schedule_campaign(3, 10 * MS))

    def finish():
        out = {"agg": (deployment.aggregation.stats()
                       if deployment.aggregation else None)}
        if deployment.is_observer_shard:
            snaps = [deployment.observer.snapshot(e) for e in epochs]
            out["usable"] = sum(s.usable for s in snaps)
            out["values"] = [sorted((str(u), v)
                                    for u, v in s.values_by_unit().items())
                             for s in snaps]
        return out

    return finish


class TestShardedComposition:
    @pytest.mark.parametrize("degree", [0, 4])
    def test_sharded_matches_single_process(self, degree):
        results = {}
        for shards in (1, 3):
            runner = InProcessShardRunner(
                fat_tree(k=4), NetworkConfig(seed=7), shards=shards,
                setup=_sharded_setup, setup_args=(degree,))
            out = runner.run(until=1 * S)
            results[shards] = out[OBSERVER_SHARD]
        assert results[1]["usable"] == results[3]["usable"] == 3
        assert results[1]["values"] == results[3]["values"]

    def test_tree_collapses_cross_shard_intake_too(self):
        runner = InProcessShardRunner(
            fat_tree(k=4), NetworkConfig(seed=7), shards=3,
            setup=_sharded_setup, setup_args=(4,))
        out = runner.run(until=1 * S)
        merged = {}
        for shard in out:
            for key, value in shard["agg"].items():
                merged[key] = merged.get(key, 0) + value
        assert merged["records_lost"] == 0
        assert merged["dropped"] == 0
        # Only the observer shard hosts an intake; O(1) per epoch.
        assert 0 < merged["intake_processed"] < 3 * 160 / 10
