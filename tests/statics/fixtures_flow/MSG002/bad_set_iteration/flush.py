"""BAD: set-ordered iteration in a function that sends across the
actor boundary — delivery order varies with PYTHONHASHSEED."""

from actors import Worker


def wire(worker: Worker) -> None:
    worker.register_mailbox("inbox", print)


def flush(worker: Worker, pending: set[str]) -> None:
    for name in pending:
        worker.send_ctrl("inbox", name)
