"""GOOD: set iteration in a function that never feeds another actor —
a local aggregate is order-insensitive and stays per-file territory."""


def census(names: set[str]) -> int:
    total = 0
    for name in names:
        total += len(name)
    return total
