"""BAD: hash()-keyed sort two calls above a boundary send — the
per-file DET004 scope would miss it, the call graph does not."""

from actors import Worker


def wire(worker: Worker) -> None:
    worker.register_mailbox("inbox", print)


def _ship(worker: Worker, batch: list[str]) -> None:
    for name in batch:
        worker.send_ctrl("inbox", name)


def flush(worker: Worker, names: list[str]) -> None:
    ordered = sorted(names, key=hash)
    _ship(worker, ordered)
