"""GOOD: the boundary send walks a sorted list — deterministic."""

from actors import Worker


def wire(worker: Worker) -> None:
    worker.register_mailbox("inbox", print)


def flush(worker: Worker, pending: set[str]) -> None:
    for name in sorted(pending):
        worker.send_ctrl("inbox", name)
