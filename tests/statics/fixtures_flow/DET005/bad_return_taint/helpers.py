"""Helper whose return value is float-tainted (ms -> ns via true
division)."""


def settle_delay(budget_ns: int) -> float:
    return budget_ns / 4
