"""BAD: a float-returning helper feeds schedule() — SIM001 cannot see
it (the sink expression is a clean-looking name), DET005 can."""

from helpers import settle_delay


def arm(sim, budget_ns: int) -> None:
    delay = settle_delay(budget_ns)
    sim.schedule(delay, print)
