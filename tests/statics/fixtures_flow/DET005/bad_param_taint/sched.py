"""The sink function itself is innocent: the taint arrives through a
parameter."""


def arm(sim, delay: int) -> None:
    sim.schedule(delay, print)
