"""BAD: a caller passes a float literal into a parameter that flows
into schedule() one frame down."""

from sched import arm


def kick(sim) -> None:
    arm(sim, 1.5)
