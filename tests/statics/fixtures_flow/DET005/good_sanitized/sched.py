"""GOOD: int() at the helper's return edge sanitizes the taint before
it ever starts flowing toward schedule()."""

from helpers import settle_delay


def arm(sim, budget_ns: int) -> None:
    sim.schedule(settle_delay(budget_ns), print)
