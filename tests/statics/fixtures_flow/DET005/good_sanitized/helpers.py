"""Helper with a float intermediate, laundered to int at the edge."""


def settle_delay(budget_ns: int) -> int:
    raw = budget_ns / 4
    return int(raw)
