"""GOOD: integer helper through an intermediate local and on into
schedule() — no float anywhere on the path."""

from helpers import settle_delay


def arm(sim, budget_ns: int) -> None:
    delay = settle_delay(budget_ns)
    sim.schedule(delay, print)
