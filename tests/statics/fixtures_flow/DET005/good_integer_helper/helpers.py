"""Helper in pure integer arithmetic — floor division stays exact."""


def settle_delay(budget_ns: int) -> int:
    return budget_ns // 4
