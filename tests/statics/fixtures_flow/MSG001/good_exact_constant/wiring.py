"""GOOD: send and registration share one module constant."""

from actors import Worker

OBSERVER_MAILBOX = "observer"


def wire(worker: Worker) -> None:
    worker.register_mailbox(OBSERVER_MAILBOX, print)


def ship(worker: Worker, record: object) -> None:
    worker.send_ctrl(OBSERVER_MAILBOX, record)
