"""GOOD: per-switch mailboxes under one f-string scheme — the
registration and the send both resolve to the agg: prefix."""

from actors import Worker
from mailboxes import agg_mailbox


def wire(worker: Worker, switches: list[str]) -> None:
    for name in switches:
        worker.register_mailbox(agg_mailbox(name), print)


def send_up(worker: Worker, parent: str, payload: object) -> None:
    mailbox = agg_mailbox(parent)
    worker.send_ctrl(mailbox, payload)
