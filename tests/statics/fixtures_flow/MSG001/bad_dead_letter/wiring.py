"""BAD: sends to a mailbox nothing ever registers (dead letter), and
registers a mailbox nothing ever sends to (dead mailbox)."""

from actors import Worker


def wire(worker: Worker) -> None:
    worker.register_mailbox("inbox", print)


def publish(worker: Worker, value: int) -> None:
    worker.send_ctrl("outbox", value)
