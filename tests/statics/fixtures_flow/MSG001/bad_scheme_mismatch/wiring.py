"""BAD: registrations use the agg: scheme but sends use agx: — a
typo'd namespace means every aggregation message is a dead letter."""

from actors import Worker
from mailboxes import agg_mailbox, agx_mailbox


def wire(worker: Worker, name: str) -> None:
    worker.register_mailbox(agg_mailbox(name), print)


def send_up(worker: Worker, parent: str, payload: object) -> None:
    worker.send_ctrl(agx_mailbox(parent), payload)
