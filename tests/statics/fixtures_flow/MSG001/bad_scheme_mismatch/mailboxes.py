"""Mailbox-name helpers (mirrors the deployment's _agg_mailbox)."""


def agg_mailbox(switch: str) -> str:
    return f"agg:{switch}"


def agx_mailbox(switch: str) -> str:
    return f"agx:{switch}"
