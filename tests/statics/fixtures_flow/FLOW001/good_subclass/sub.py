"""GOOD: a subclass shares its base's state — inheritance is not a
cross-actor boundary."""

from actors import Worker


class BatchWorker(Worker):
    def absorb(self, other: Worker) -> None:
        self._state += other._state
        other._flush()
