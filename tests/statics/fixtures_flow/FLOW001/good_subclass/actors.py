"""Minimal actor stub: owning register_mailbox + send_ctrl makes
Worker an actor, so its underscore state is mailbox-protected."""


class Worker:
    def __init__(self):
        self._state = 0
        self._mailboxes = {}

    def register_mailbox(self, name, handler):
        self._mailboxes[name] = handler

    def send_ctrl(self, name, payload):
        self._mailboxes[name](payload)

    def _flush(self):
        self._state = 0
