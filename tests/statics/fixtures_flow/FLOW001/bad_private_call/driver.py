"""BAD: calls a private method on an actor from outside it."""

from actors import Worker


def tick(workers: list[Worker]) -> None:
    for worker in workers:
        worker._flush()
