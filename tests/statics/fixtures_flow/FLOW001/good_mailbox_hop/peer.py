"""GOOD: state crosses the actor boundary through a mailbox send."""

from actors import Worker


def wire(worker: Worker) -> None:
    worker.register_mailbox("inbox", print)


def handle(worker: Worker, value: int) -> None:
    worker.send_ctrl("inbox", value)
