"""BAD: stores straight into another actor's private state."""

from actors import Worker


def handle(worker: Worker, value: int) -> None:
    worker._state = value
