"""Every statics rule against its fixture corpus.

Each ``tests/statics/fixtures/<RULE>/bad_*.py`` must produce at least
one finding of exactly its directory's rule (and of no other rule);
each ``good_*.py`` must be completely clean.  The fixture's first line
declares the scope it should be checked under
(``# statics-fixture-scope: sim``), because scoped rules deliberately
ignore the ``tests`` scope the fixture physically lives in.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.statics import ALL_RULE_IDS, ALL_RULES, check_file, check_source

FIXTURES = Path(__file__).parent / "fixtures"

_SCOPE_RE = re.compile(r"#\s*statics-fixture-scope:\s*(\w+)")


def _fixture_cases():
    cases = []
    for rule_dir in sorted(FIXTURES.iterdir()):
        if rule_dir.is_dir():
            for path in sorted(rule_dir.glob("*.py")):
                cases.append(pytest.param(rule_dir.name, path,
                                          id=f"{rule_dir.name}-{path.stem}"))
    return cases


def _check(path: Path):
    source = path.read_text()
    match = _SCOPE_RE.search(source)
    assert match, f"{path} must declare # statics-fixture-scope: <scope>"
    return check_source(source, str(path), ALL_RULES,
                        scope=match.group(1))


class TestFixtureCorpus:
    def test_corpus_covers_every_rule(self):
        dirs = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
        assert dirs == set(ALL_RULE_IDS)
        for rule_dir in FIXTURES.iterdir():
            if rule_dir.is_dir():
                names = [p.name for p in rule_dir.glob("*.py")]
                assert any(n.startswith("bad_") for n in names), rule_dir
                assert any(n.startswith("good_") for n in names), rule_dir

    @pytest.mark.parametrize("rule_id, path", _fixture_cases())
    def test_fixture(self, rule_id, path):
        report = _check(path)
        rules_found = {f.rule for f in report.findings}
        if path.name.startswith("bad_"):
            assert rules_found == {rule_id}, (
                f"{path} expected only {rule_id}, got "
                f"{[f.render() for f in report.findings]}")
        else:
            assert not report.findings, (
                f"{path} expected clean, got "
                f"{[f.render() for f in report.findings]}")


class TestRuleBehaviour:
    """Targeted semantics beyond the corpus: abstentions and scoping."""

    def test_det001_ignores_out_of_scope(self):
        src = "import random\nx = random.random()\n"
        assert check_source(src, "x.py", ALL_RULES, scope="analysis").ok

    def test_det001_seeded_instance_ok_in_scope(self):
        src = ("import random\n"
               "rng = random.Random(7)\n"
               "x = rng.random()\n")
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_det002_allows_runtime_and_perf(self):
        src = "import time\nt = time.perf_counter()\n"
        for scope in ("runtime", "perf"):
            assert check_source(src, "x.py", ALL_RULES, scope=scope).ok
        assert not check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_det003_sorted_wrapper_is_clean(self):
        src = "s = {1, 2}\nout = [x for x in sorted(s)]\n"
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_det003_order_insensitive_builtin_is_clean(self):
        # min/max/sum/len do not depend on iteration order.
        src = "s = {1, 2}\nm = min(s)\nn = len(s)\nt = sum(s)\n"
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_det003_propagates_through_set_ops(self):
        src = ("a = {1}\nb = {2}\n"
               "for x in a | b:\n    print(x)\n")
        report = check_source(src, "x.py", ALL_RULES, scope="core")
        assert {f.rule for f in report.findings} == {"DET003"}

    def test_det004_plain_hash_use_is_not_flagged(self):
        # hash() as a cache key is fine; only ordering keys are flagged.
        src = "cache[hash(key)] = value\n"
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_sim001_only_first_argument_is_time(self):
        src = "sim.schedule(delay, fn, 0.5)\n"
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_sim001_keyword_delay(self):
        src = "sim.schedule(delay=t / 2, fn=cb)\n"
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert {f.rule for f in report.findings} == {"SIM001"}

    def test_sim002_unresolvable_base_is_skipped(self):
        src = ("from elsewhere import Base\n"
               "class C(Base):\n"
               "    __slots__ = ('x',)\n"
               "    def f(self):\n"
               "        self.y = 1\n")
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_sim002_inherited_slots_allowed(self):
        src = ("class B:\n"
               "    __slots__ = ('x',)\n"
               "class C(B):\n"
               "    __slots__ = ('y',)\n"
               "    def f(self):\n"
               "        self.x = 1\n"
               "        self.y = 2\n")
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_sim002_property_setter_allowed(self):
        src = ("class C:\n"
               "    __slots__ = ('_x',)\n"
               "    @property\n"
               "    def x(self):\n"
               "        return self._x\n"
               "    @x.setter\n"
               "    def x(self, v):\n"
               "        self._x = v\n"
               "    def reset(self):\n"
               "        self.x = 0\n")
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_sim003_out_of_scope_is_ignored(self):
        src = "port.ingress.handle_packet(packet)\n"
        assert check_source(src, "x.py", ALL_RULES, scope="tests").ok

    def test_sim003_egress_delivery_is_clean(self):
        src = "port.egress.handle_packet(packet)\n"
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_sim003_tracked_name_is_flagged(self):
        src = ("ing = port.ingress\n"
               "ing.handle_packet(packet)\n")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert {f.rule for f in report.findings} == {"SIM003"}

    def test_sim003_inject_at_callback_is_flagged(self):
        src = "sim.inject_at(t_ns, node.receive_from_link, packet)\n"
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert {f.rule for f in report.findings} == {"SIM003"}

    def test_sim003_scheduled_egress_callback_is_clean(self):
        src = "sim.schedule(delay_ns, port.egress.handle_packet, packet)\n"
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_sim003_handler_with_non_ingress_argument_is_clean(self):
        src = ("def deliver(unit, packet):\n"
               "    unit.handle_packet(packet)\n"
               "deliver(port.egress, packet)\n")
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_sim003_pragma_suppresses(self):
        src = ("# statics: allow[SIM003] modeled CPU port, not a link\n"
               "port.ingress.handle_packet(packet)\n")
        assert check_source(src, "x.py", ALL_RULES, scope="sim").ok

    def test_trial001_local_shadow_is_clean(self):
        src = ("from repro.runtime import trial\n"
               "CACHE = {}\n"
               "@trial('x')\n"
               "def f(spec):\n"
               "    CACHE = {}\n"
               "    CACHE['k'] = 1\n"
               "    return CACHE\n")
        assert check_source(src, "x.py", ALL_RULES, scope="experiments").ok

    def test_trial001_undecorated_function_ignored(self):
        src = ("STATE = {}\n"
               "def helper(spec):\n"
               "    STATE['k'] = 1\n")
        assert check_source(src, "x.py", ALL_RULES, scope="experiments").ok

    def test_trial001_reads_are_clean(self):
        src = ("from repro.runtime import trial\n"
               "DEFAULTS = {'a': 1}\n"
               "@trial('x')\n"
               "def f(spec):\n"
               "    return DEFAULTS['a']\n")
        assert check_source(src, "x.py", ALL_RULES, scope="experiments").ok


class TestAggregationModuleIsClean:
    """The hierarchical snapshot fabric against the real rule set.

    The fabric is exactly the kind of code the DET/SIM rules exist for
    (unordered child sets, __slots__ epoch state, per-epoch timers), so
    it must pass every rule in its own ``core`` scope — with zero
    pragmas, not suppressed findings.
    """

    MODULE = (Path(__file__).parents[2] / "src" / "repro" / "core" /
              "aggregation.py")

    def test_passes_every_rule_without_pragmas(self):
        report = check_file(str(self.MODULE), ALL_RULES)
        assert report.ok, [f"{f.rule}:{f.line} {f.message}"
                           for f in report.findings]
        assert report.suppressed == 0


class TestServicePackageIsClean:
    """Every snapshot-service module against the real rule set.

    The service is simulation-pure by design (wall-clock throughput
    lives in ``repro.runtime.streaming``, a scope DET002 exempts), so
    each module must pass every rule in its own ``service`` scope —
    with zero pragmas, not suppressed findings.
    """

    PACKAGE = Path(__file__).parents[2] / "src" / "repro" / "service"

    @pytest.mark.parametrize(
        "module", sorted(p.name for p in (Path(__file__).parents[2] / "src"
                                          / "repro" / "service").glob("*.py")))
    def test_passes_every_rule_without_pragmas(self, module):
        report = check_file(str(self.PACKAGE / module), ALL_RULES)
        assert report.ok, [f"{f.rule}:{f.line} {f.message}"
                           for f in report.findings]
        assert report.suppressed == 0
