"""Whole-program (``--flow``) layer: fixtures, graphs, taint, caching.

The fixture corpus under ``tests/statics/fixtures_flow/`` is organised
per rule family, one *directory per case*: each case is a mini
multi-file program, because whole-program rules are exactly the ones a
single file cannot witness.  ``bad_*`` cases must produce at least one
finding of their family and nothing else; ``good_*`` cases must be
completely clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.statics import FLOW_RULE_IDS, load_program, run_flow
from repro.statics.project import (FileSummary, content_key,
                                   summarize_file, summarize_source)
from repro.statics.taint import TaintAnalysis

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures_flow"


def _fixture_cases():
    cases = []
    for family_dir in sorted(FIXTURES.iterdir()):
        if family_dir.is_dir():
            for case_dir in sorted(family_dir.iterdir()):
                if case_dir.is_dir():
                    cases.append(pytest.param(
                        family_dir.name, case_dir,
                        id=f"{family_dir.name}-{case_dir.name}"))
    return cases


class TestFixtureCorpus:
    def test_corpus_covers_every_family(self):
        dirs = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
        assert dirs == set(FLOW_RULE_IDS)
        for family_dir in FIXTURES.iterdir():
            if not family_dir.is_dir():
                continue
            names = [p.name for p in family_dir.iterdir() if p.is_dir()]
            assert sum(n.startswith("bad_") for n in names) >= 2, family_dir
            assert sum(n.startswith("good_") for n in names) >= 2, family_dir

    def test_corpus_has_a_mailbox_scheme_case(self):
        # The agg:<switch> namespace from core/sharded must be mirrored.
        schemes = [p for p in FIXTURES.rglob("*.py")
                   if "agg:" in p.read_text()]
        assert schemes, "no fixture exercises an f-string mailbox scheme"

    @pytest.mark.parametrize("family, case_dir", _fixture_cases())
    def test_fixture(self, family, case_dir):
        report, _ = run_flow((str(case_dir),))
        rules_found = {f.rule for f in report.findings}
        rendered = [f.render() for f in report.findings]
        if case_dir.name.startswith("bad_"):
            assert rules_found == {family}, (
                f"{case_dir} expected only {family}, got {rendered}")
        else:
            assert not report.findings, (
                f"{case_dir} expected clean, got {rendered}")


class TestProgramGraphs:
    """Symbol-table / call-graph resolution on in-memory programs."""

    def _program(self, tmp_path, files):
        for name, source in files.items():
            (tmp_path / name).write_text(source)
        return load_program((str(tmp_path),))[0]

    def test_imported_function_call_resolves(self, tmp_path):
        program = self._program(tmp_path, {
            "a.py": "def helper():\n    return 1\n",
            "b.py": "from a import helper\n"
                    "def use():\n    return helper()\n",
        })
        use = program.functions["b:use"]
        assert program.callees(use) == ["a:helper"]

    def test_constructor_resolves_to_init(self, tmp_path):
        program = self._program(tmp_path, {
            "a.py": "class Box:\n"
                    "    def __init__(self, x):\n        self.x = x\n",
            "b.py": "from a import Box\n"
                    "def make():\n    return Box(1)\n",
        })
        make = program.functions["b:make"]
        assert program.callees(make) == ["a:Box.__init__"]

    def test_self_call_resolves_through_base_class(self, tmp_path):
        program = self._program(tmp_path, {
            "a.py": "class Base:\n"
                    "    def ping(self):\n        return 1\n",
            "b.py": "from a import Base\n"
                    "class Child(Base):\n"
                    "    def go(self):\n        return self.ping()\n",
        })
        go = program.functions["b:Child.go"]
        assert program.callees(go) == ["a:Base.ping"]

    def test_annotated_receiver_resolves_method(self, tmp_path):
        program = self._program(tmp_path, {
            "a.py": "class W:\n"
                    "    def poke(self):\n        return 1\n",
            "b.py": "from a import W\n"
                    "def drive(w: W):\n    w.poke()\n",
        })
        drive = program.functions["b:drive"]
        assert program.callees(drive) == ["a:W.poke"]

    def test_builtin_method_names_never_resolve_by_uniqueness(
            self, tmp_path):
        # `out.append(...)` on a local list must not link to the one
        # project class that happens to define `append`.
        program = self._program(tmp_path, {
            "a.py": "class Store:\n"
                    "    def append(self, x):\n        return x\n",
            "b.py": "def collect(xs):\n"
                    "    out = []\n"
                    "    for x in xs:\n        out.append(x)\n"
                    "    return out\n",
        })
        collect = program.functions["b:collect"]
        assert program.callees(collect) == []

    def test_actor_detection_requires_both_methods(self, tmp_path):
        program = self._program(tmp_path, {
            "a.py": "class Full:\n"
                    "    def register_mailbox(self, n, h):\n        pass\n"
                    "    def send_ctrl(self, n, p):\n        pass\n"
                    "class Half:\n"
                    "    def send_ctrl(self, n, p):\n        pass\n",
        })
        assert [c.name for c in program.actor_classes()] == ["Full"]

    def test_boundary_send_propagates_up_call_graph(self, tmp_path):
        program = self._program(tmp_path, {
            "a.py": "def leaf(w):\n    w.send_ctrl('m', 1)\n"
                    "def mid(w):\n    leaf(w)\n"
                    "def top(w):\n    mid(w)\n"
                    "def bystander(w):\n    return 0\n",
        })
        assert program.reaches_boundary_send(program.functions["a:top"])
        assert not program.reaches_boundary_send(
            program.functions["a:bystander"])

    def test_graph_dump_is_deterministic(self, tmp_path):
        files = {
            "a.py": "def helper():\n    return 1\n",
            "b.py": "from a import helper\n"
                    "def use():\n    return helper()\n",
        }
        first = self._program(tmp_path, files).dump()
        second = load_program((str(tmp_path),))[0].dump()
        assert first == second
        assert "call graph" in first


class TestMessageResolution:
    def test_helper_scheme_resolves_through_import(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "def box(s):\n    return f'agg:{s}'\n")
        (tmp_path / "w.py").write_text(
            "from m import box\n"
            "def go(w, s):\n    w.send_ctrl(box(s), 1)\n")
        program = load_program((str(tmp_path),))[0]
        specs = [program.resolved_spec(fn, site)
                 for fn, site in program.iter_msg_sites()]
        assert specs == [("scheme", "agg:")]

    def test_local_constant_resolves_exact(self, tmp_path):
        (tmp_path / "w.py").write_text(
            "NAME = 'observer'\n"
            "def go(w):\n    w.send_ctrl(NAME, 1)\n")
        program = load_program((str(tmp_path),))[0]
        specs = [program.resolved_spec(fn, site)
                 for fn, site in program.iter_msg_sites()]
        assert specs == [("exact", "observer")]


class TestTaintLayer:
    def _analysis(self, tmp_path, files):
        for name, source in files.items():
            (tmp_path / name).write_text(source)
        return TaintAnalysis(load_program((str(tmp_path),))[0])

    def test_return_taint_crosses_modules(self, tmp_path):
        analysis = self._analysis(tmp_path, {
            "h.py": "def bad():\n    return 1 / 2\n",
            "s.py": "from h import bad\n"
                    "def go(sim):\n"
                    "    d = bad()\n"
                    "    sim.schedule(d, print)\n",
        })
        hits = analysis.sink_findings()
        assert len(hits) == 1
        assert "division" in hits[0].sources[0]

    def test_sanitizer_stops_taint(self, tmp_path):
        analysis = self._analysis(tmp_path, {
            "h.py": "def ok():\n    return int(1 / 2)\n",
            "s.py": "from h import ok\n"
                    "def go(sim):\n    sim.schedule(ok(), print)\n",
        })
        assert analysis.sink_findings() == []

    def test_param_obligation_walks_to_caller(self, tmp_path):
        analysis = self._analysis(tmp_path, {
            "s.py": "def arm(sim, delay):\n"
                    "    sim.schedule(delay, print)\n",
            "c.py": "from s import arm\n"
                    "def kick(sim):\n    arm(sim, 2.5)\n",
        })
        hits = analysis.sink_findings()
        assert len(hits) == 1
        assert hits[0].path.endswith("s.py")  # anchored at the sink
        assert hits[0].chain  # and names the tainting caller

    def test_direct_sinks_are_left_to_sim001(self, tmp_path):
        analysis = self._analysis(tmp_path, {
            "s.py": "def go(sim):\n    sim.schedule(1 / 2, print)\n",
        })
        assert analysis.sink_findings() == []


# Function-reordering property: a module is a *set* of definitions, so
# shuffling top-level function order must not change taint verdicts.
_HELPERS = st.permutations([
    "def tainted():\n    return 0.5\n",
    "def clean():\n    return 7\n",
    "def launder():\n    return int(tainted())\n",
    "def arm(sim):\n    sim.schedule(tainted(), print)\n",
    "def arm_ok(sim):\n    sim.schedule(clean(), print)\n",
])


class TestReorderingProperty:
    @settings(max_examples=25, deadline=None)
    @given(order=_HELPERS)
    def test_taint_verdicts_stable_under_reordering(self, order,
                                                    tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("reorder")
        (tmp_path / "m.py").write_text("".join(order))
        analysis = TaintAnalysis(load_program((str(tmp_path),))[0])
        verdicts = {(h.fn_qualname, tuple(h.sources))
                    for h in analysis.sink_findings()}
        assert verdicts == {
            ("m:arm", ("float literal 0.5",)),
        }


class TestSummaryCache:
    def test_cache_round_trip_is_equivalent(self, tmp_path):
        source = ("def f(sim, d):\n    sim.schedule(d, print)\n")
        target = tmp_path / "m.py"
        target.write_text(source)
        cache = tmp_path / "cache"
        cold = summarize_file(str(target), cache_dir=str(cache))
        assert list(cache.glob("*.json")), "cache entry must be written"
        warm = summarize_file(str(target), cache_dir=str(cache))
        assert warm.to_dict() == cold.to_dict()

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        source = "def f():\n    return 1\n"
        target = tmp_path / "m.py"
        target.write_text(source)
        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / f"{content_key(source)}.json").write_text("{not json")
        summary = summarize_file(str(target), cache_dir=str(cache))
        assert summary.functions[0].name == "f"

    def test_content_key_changes_with_source(self):
        assert content_key("x = 1\n") != content_key("x = 2\n")

    def test_summary_survives_json_round_trip(self):
        source = ("M = 'observer'\n"
                  "class W:\n"
                  "    def send_ctrl(self, n, p):\n        pass\n"
                  "def go(w: W, sim, d):\n"
                  "    w.send_ctrl(M, 1)\n"
                  "    sim.schedule(d, print)\n"
                  "def order(w, xs):\n"
                  "    for x in set(xs):\n"
                  "        w.send_ctrl(M, x)\n")
        summary = summarize_source(source, "m.py")
        clone = FileSummary.from_dict(
            json.loads(json.dumps(summary.to_dict())))
        assert clone.to_dict() == summary.to_dict()


class TestFlowPragmas:
    def test_pragma_suppresses_flow_finding(self, tmp_path):
        (tmp_path / "actors.py").write_text(
            "class Worker:\n"
            "    def register_mailbox(self, n, h):\n        pass\n"
            "    def send_ctrl(self, n, p):\n        pass\n"
            "    def _flush(self):\n        pass\n")
        (tmp_path / "peer.py").write_text(
            "from actors import Worker\n"
            "def tick(w: Worker):\n"
            "    w._flush()  # statics: allow[FLOW001] test-only poke\n")
        report, _ = run_flow((str(tmp_path),))
        assert report.ok
        assert report.suppressed == 1

    def test_unused_flow_pragma_is_reported(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "# statics: allow[MSG001] nothing here needs this\n"
            "x = 1\n")
        report, _ = run_flow((str(tmp_path),))
        assert [f.rule for f in report.findings] == ["PRAGMA002"]

    def test_per_file_rule_pragmas_are_not_audited_by_flow(self, tmp_path):
        # allow[DET003] can only be judged by the per-file pass; the
        # flow pass must leave it alone rather than call it unused.
        (tmp_path / "m.py").write_text(
            "def f(xs):\n"
            "    for x in set(xs):  # statics: allow[DET003] reasoned\n"
            "        print(x)\n")
        report, _ = run_flow((str(tmp_path),))
        assert report.ok, [f.render() for f in report.findings]


class TestFlowCli:
    def _run(self, *argv, cwd=REPO):
        return subprocess.run(
            [sys.executable, "-m", "repro", "statics", *argv],
            cwd=cwd, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"),
                 "PATH": "/usr/bin:/bin"})

    def test_flow_clean_over_actor_packages(self):
        proc = self._run(
            "--flow", "--no-cache", "--forbid-pragmas",
            "src/repro/sim/shard.py", "src/repro/core/sharded.py",
            "src/repro/core/aggregation.py", "src/repro/service")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_flow_finds_fixture_bugs(self):
        proc = self._run(
            "--flow", "--no-cache",
            str(FIXTURES / "MSG001" / "bad_dead_letter"))
        assert proc.returncode == 1
        assert "MSG001" in proc.stdout

    def test_graph_dump_requires_flow(self):
        proc = self._run("--graph-dump")
        assert proc.returncode == 2
        assert "requires --flow" in proc.stderr

    def test_flow_rules_subset(self):
        proc = self._run(
            "--flow", "--no-cache", "--rules", "DET005",
            str(FIXTURES / "MSG001" / "bad_dead_letter"))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_flow_rejects_non_flow_rule_ids(self):
        proc = self._run("--flow", "--rules", "DET001", "src")
        assert proc.returncode == 2
        assert "not flow rule" in proc.stderr

    def test_forbid_pragmas_fails_on_suppression(self, tmp_path):
        (tmp_path / "actors.py").write_text(
            "class Worker:\n"
            "    def register_mailbox(self, n, h):\n        pass\n"
            "    def send_ctrl(self, n, p):\n        pass\n"
            "    def _flush(self):\n        pass\n")
        (tmp_path / "peer.py").write_text(
            "from actors import Worker\n"
            "def tick(w: Worker):\n"
            "    w._flush()  # statics: allow[FLOW001] poke\n")
        proc = self._run("--flow", "--no-cache", "--forbid-pragmas",
                         str(tmp_path))
        assert proc.returncode == 1
        assert "forbid-pragmas" in proc.stderr

    def test_graph_dump_lists_actors_and_mailboxes(self):
        proc = self._run(
            "--flow", "--no-cache", "--graph-dump",
            "src/repro/sim/shard.py", "src/repro/core/sharded.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ShardWorker" in proc.stdout
        assert "scheme:'cp:'" in proc.stdout
