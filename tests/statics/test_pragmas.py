"""Pragma semantics: suppression is per-rule, per-line, and audited."""

from __future__ import annotations

from repro.statics import ALL_RULES, check_source

BAD_LINE = "import random\nx = random.random(){pragma}\n"


class TestSuppression:
    def test_trailing_pragma_suppresses_named_rule(self):
        src = BAD_LINE.format(
            pragma="  # statics: allow[DET001] fixture exercises suppression")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert report.ok
        assert report.suppressed == 1

    def test_standalone_pragma_targets_next_line(self):
        src = ("import random\n"
               "# statics: allow[DET001] seeded upstream, audited\n"
               "x = random.random()\n")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert report.ok
        assert report.suppressed == 1

    def test_pragma_suppresses_exactly_its_named_rule(self):
        # Two different violations on one line; only the named rule is
        # suppressed, the other still fires.
        src = ("import random\n"
               "sim.schedule(random.random() / 2, fn)"
               "  # statics: allow[SIM001] testing per-rule suppression\n")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        rules = {f.rule for f in report.findings}
        assert rules == {"DET001"}
        assert report.suppressed >= 1

    def test_multi_rule_pragma(self):
        src = ("import random\n"
               "sim.schedule(random.random() / 2, fn)"
               "  # statics: allow[SIM001,DET001] both sides audited\n")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert report.ok

    def test_pragma_on_other_line_does_not_suppress(self):
        src = ("import random\n"
               "y = 1  # statics: allow[DET001] wrong line\n"
               "\n"
               "x = random.random()\n")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        rules = {f.rule for f in report.findings}
        # The violation still fires and the stray pragma is unused.
        assert rules == {"DET001", "PRAGMA002"}


class TestPragmaAuditing:
    def test_reasonless_pragma_is_reported_and_inert(self):
        src = BAD_LINE.format(pragma="  # statics: allow[DET001]")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["DET001", "PRAGMA001"]
        assert report.suppressed == 0

    def test_unknown_rule_pragma_is_reported(self):
        src = BAD_LINE.format(
            pragma="  # statics: allow[NOPE999] not a rule")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["DET001", "PRAGMA001"]

    def test_unused_pragma_is_reported(self):
        src = "x = 1  # statics: allow[DET001] nothing to suppress here\n"
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert [f.rule for f in report.findings] == ["PRAGMA002"]

    def test_rule_subset_audits_only_active_rules(self):
        # A partial --rules run must not misreport pragmas for rules it
        # did not execute — but it *does* audit pragmas for rules that
        # ran.  The DET001 allow is neither used nor unused here,
        # because DET001 never ran.
        subset = [r for r in ALL_RULES if r.id == "SIM001"]
        src = BAD_LINE.format(
            pragma="  # statics: allow[DET001] suppressed under full set")
        report = check_source(src, "x.py", subset, scope="sim",
                              known_rules={r.id for r in ALL_RULES})
        assert report.ok

    def test_rule_subset_still_flags_unused_active_pragma(self):
        subset = [r for r in ALL_RULES if r.id == "SIM001"]
        src = "x = 1  # statics: allow[SIM001] nothing here\n"
        report = check_source(src, "x.py", subset, scope="sim",
                              known_rules={r.id for r in ALL_RULES})
        assert [f.rule for f in report.findings] == ["PRAGMA002"]

    def test_multi_rule_pragma_audited_per_rule_id(self):
        # allow[DET001,DET004] where only DET001 fires: the pragma is
        # not wholesale-unused — exactly the DET004 half is.
        src = BAD_LINE.format(
            pragma="  # statics: allow[DET001,DET004] one half is stale")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert report.suppressed == 1
        assert [f.rule for f in report.findings] == ["PRAGMA002"]
        assert "DET004" in report.findings[0].message
        assert "DET001" not in report.findings[0].message

    def test_multi_rule_pragma_fully_used_is_silent(self):
        src = ("import random\n"
               "sim.schedule(random.random() / 2, fn)"
               "  # statics: allow[SIM001,DET001] both fire\n")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        assert report.ok
        assert report.suppressed == 2

    def test_docstring_pragma_examples_are_inert(self):
        src = ('"""Docs.\n'
               "\n"
               "    x = 1  # statics: allow[DET001] example only\n"
               '"""\n'
               "import random\n"
               "x = random.random()\n")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        # The docstring example neither suppresses nor counts as unused.
        assert [f.rule for f in report.findings] == ["DET001"]
