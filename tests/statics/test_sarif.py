"""Machine-readable output: SARIF 2.1.0 shape and stable finding ids."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.statics import ALL_RULES, check_source
from repro.statics.sarif import (enriched_dict, severity_of, stable_id,
                                 to_sarif)
from repro.statics.findings import Finding

REPO = Path(__file__).resolve().parents[2]

BAD = ("import random\n"
       "import time\n"
       "a = random.random()\n"
       "b = time.time()\n")


def _report():
    return check_source(BAD, "src/repro/sim/x.py", ALL_RULES, scope="sim")


class TestStableIds:
    def test_id_is_independent_of_line_numbers(self):
        a = Finding(rule="DET001", path="p.py", line=3, col=1,
                    message="m", hint="h")
        b = Finding(rule="DET001", path="p.py", line=99, col=7,
                    message="m", hint="h")
        assert stable_id(a, 0) == stable_id(b, 0)

    def test_id_distinguishes_rule_path_message_occurrence(self):
        base = Finding(rule="DET001", path="p.py", line=1, col=1,
                       message="m", hint="h")
        ids = {
            stable_id(base, 0),
            stable_id(base, 1),
            stable_id(Finding(rule="DET002", path="p.py", line=1, col=1,
                              message="m", hint="h"), 0),
            stable_id(Finding(rule="DET001", path="q.py", line=1, col=1,
                              message="m", hint="h"), 0),
            stable_id(Finding(rule="DET001", path="p.py", line=1, col=1,
                              message="other", hint="h"), 0),
        }
        assert len(ids) == 5

    def test_enriched_json_carries_id_and_severity(self):
        data = enriched_dict(_report())
        assert data["findings"], "fixture must produce findings"
        for row in data["findings"]:
            assert len(row["id"]) == 16
            assert row["severity"] in ("error", "warning")

    def test_severity_map(self):
        assert severity_of("DET001") == "error"
        assert severity_of("FLOW001") == "error"
        assert severity_of("PRAGMA002") == "warning"


class TestSarifDocument:
    def test_minimal_valid_shape(self):
        doc = to_sarif(_report())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-statics"
        assert len(run["results"]) == len(_report().findings)
        result = run["results"][0]
        assert result["ruleId"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(".py")
        assert location["region"]["startLine"] >= 1
        assert result["partialFingerprints"]["reproStaticsId/v1"]

    def test_rule_metadata_covers_reported_rules(self):
        doc = to_sarif(_report())
        run = doc["runs"][0]
        meta_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert meta_ids == {r["ruleId"] for r in run["results"]}

    def test_clean_report_serializes(self):
        report = check_source("x = 1\n", "x.py", ALL_RULES, scope="sim")
        doc = to_sarif(report)
        assert doc["runs"][0]["results"] == []
        json.dumps(doc)  # must be pure-JSON serializable


class TestSarifCli:
    def test_cli_writes_sarif_file(self, tmp_path):
        out = tmp_path / "statics.sarif"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "statics",
             "src/repro/statics", "--sarif", str(out)],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"

    def test_flow_cli_writes_sarif_with_findings(self, tmp_path):
        bad = (Path(__file__).parent / "fixtures_flow" / "MSG001"
               / "bad_dead_letter")
        out = tmp_path / "flow.sarif"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "statics", "--flow",
             "--no-cache", str(bad), "--sarif", str(out)],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 1
        doc = json.loads(out.read_text())
        assert {r["ruleId"] for r in doc["runs"][0]["results"]} == \
            {"MSG001"}
