# statics-fixture-scope: experiments
from repro.runtime import trial

DEFAULTS = {"duration_ns": 1000}


@trial("fixture-good-pure")
def run_trial(spec: object) -> dict:
    params = dict(DEFAULTS)
    params["spec"] = spec
    return params
