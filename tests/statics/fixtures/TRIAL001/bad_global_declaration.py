# statics-fixture-scope: experiments
from repro.runtime import trial

COUNTER = 0


@trial("fixture-bad-global")
def run_trial(spec: object) -> None:
    global COUNTER
    COUNTER = 1
