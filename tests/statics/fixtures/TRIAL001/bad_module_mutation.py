# statics-fixture-scope: experiments
from repro.runtime import trial

RESULTS: list = []


@trial("fixture-bad-mutation")
def run_trial(spec: object) -> None:
    RESULTS.append(spec)
