# statics-fixture-scope: sim
def deliver(unit: object, packet: object) -> None:
    unit.handle_packet(packet)


def shortcut(port: object, packet: object) -> None:
    deliver(port.ingress, packet)
