# statics-fixture-scope: sim
def forward(port: object, packet: object) -> None:
    port.egress.handle_packet(packet)


def transmit(link: object, packet: object) -> None:
    link.send(packet)


def arm(sim: object, port: object, delay_ns: int, packet: object) -> None:
    sim.schedule(delay_ns, port.egress.handle_packet, packet)


def deliver(unit: object, packet: object) -> None:
    unit.handle_packet(packet)


def shortcut(port: object, packet: object) -> None:
    deliver(port.egress, packet)
