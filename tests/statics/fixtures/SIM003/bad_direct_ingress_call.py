# statics-fixture-scope: sim
def shortcut(port: object, packet: object) -> None:
    port.ingress.handle_packet(packet)


def shortcut_via_name(port: object, packet: object) -> None:
    ing = port.ingress
    ing.handle_packet(packet)
