# statics-fixture-scope: sim
def arm(sim: object, port: object, delay_ns: int, packet: object) -> None:
    sim.schedule(delay_ns, port.ingress.handle_packet, packet)


def arm_fast(sim: object, node: object, delay_ns: int, packet: object) -> None:
    sim.schedule_fast(delay_ns, node.receive_from_link, packet)
