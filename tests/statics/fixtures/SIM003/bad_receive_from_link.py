# statics-fixture-scope: core
def force_delivery(switch: object, packet: object, link: object) -> None:
    switch.receive_from_link(packet, link)
