# statics-fixture-scope: sim
import random


def jitter_ns() -> int:
    return int(random.random() * 100)
