# statics-fixture-scope: faults
from random import shuffle


def scramble(targets: list) -> None:
    shuffle(targets)
