# statics-fixture-scope: sim
import random


def jitter_ns(rng: random.Random) -> int:
    return int(rng.random() * 100)


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)
