# statics-fixture-scope: experiments
def arm(sim: object, fn: object) -> None:
    sim.schedule_fast(1.5, fn)
