# statics-fixture-scope: sim
def arm(sim: object, interval_ns: int, fn: object) -> None:
    sim.schedule(interval_ns / 2, fn)
