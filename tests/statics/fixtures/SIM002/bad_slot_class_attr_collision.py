# statics-fixture-scope: sim
class Token:
    __slots__ = ("value",)

    value = 0
