# statics-fixture-scope: sim
class Token:
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value
        self.extra = value + 1
