# statics-fixture-scope: core
import time


def stamp() -> float:
    return time.perf_counter()
