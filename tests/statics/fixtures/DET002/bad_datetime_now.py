# statics-fixture-scope: analysis
import datetime


def today() -> str:
    return datetime.datetime.now().isoformat()
