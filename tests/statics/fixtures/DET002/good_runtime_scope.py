# statics-fixture-scope: runtime
import time


def stamp() -> float:
    return time.perf_counter()
