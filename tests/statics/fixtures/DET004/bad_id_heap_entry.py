# statics-fixture-scope: core
import heapq


def enqueue(heap: list, item: object) -> None:
    heapq.heappush(heap, (id(item), item))
