# statics-fixture-scope: experiments
def order(nodes: list) -> list:
    return sorted(nodes, key=lambda node: hash(node.name))
