# statics-fixture-scope: core
def devices(records: list) -> list:
    names = {record.device for record in records}
    return [name for name in names]
