# statics-fixture-scope: core
# The aggregation-fabric idiom: relays hold unordered child/record sets
# but every iteration that touches simulation state goes through
# sorted(), so fan-in order is independent of the hash seed.
def flush_pending(agents: dict, pending: set) -> int:
    floor = 0
    for name in sorted(pending):
        floor = min(floor, agents[name].min_finalized())
    for name in sorted(agents):
        agents[name].forward(floor)
    return floor
