# statics-fixture-scope: sim
def drain(pending: set) -> None:
    for unit in pending:
        unit.flush()
