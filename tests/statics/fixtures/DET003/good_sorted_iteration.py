# statics-fixture-scope: sim
def drain(pending: set) -> None:
    for unit in sorted(pending):
        unit.flush()
