# statics-fixture-scope: core
def label(parts: frozenset) -> str:
    return ",".join(parts)
