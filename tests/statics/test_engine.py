"""Engine mechanics: scoping, walking, parse errors, output shape."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.statics import (ALL_RULES, Finding, check_source,
                           iter_python_files, run_paths, scope_of)

REPO = Path(__file__).resolve().parents[2]


class TestScopeDerivation:
    def test_repro_packages(self):
        assert scope_of("src/repro/sim/engine.py") == "sim"
        assert scope_of("src/repro/core/observer.py") == "core"
        assert scope_of("src/repro/faults/injector.py") == "faults"
        assert scope_of("src/repro/statics/rules.py") == "statics"

    def test_repro_top_level_modules(self):
        assert scope_of("src/repro/cli.py") == "cli"

    def test_non_package_trees(self):
        assert scope_of("tests/sim/test_engine.py") == "tests"
        assert scope_of("benchmarks/perf/test_bench.py") == "benchmarks"
        assert scope_of("examples/quickstart.py") == "examples"


class TestWalker:
    def test_skip_marker_prunes_directory(self, tmp_path):
        keep = tmp_path / "keep"
        skip = tmp_path / "skip"
        keep.mkdir()
        skip.mkdir()
        (keep / "a.py").write_text("x = 1\n")
        (skip / "b.py").write_text("x = 1\n")
        (skip / ".statics-skip").write_text("")
        found = list(iter_python_files([str(tmp_path)]))
        assert [Path(p).name for p in found] == ["a.py"]

    def test_walk_order_is_deterministic(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("x = 1\n")
        first = list(iter_python_files([str(tmp_path)]))
        second = list(iter_python_files([str(tmp_path)]))
        assert first == second == sorted(first)

    def test_fixture_corpus_is_skipped(self):
        files = list(iter_python_files([str(REPO / "tests" / "statics")]))
        assert files, "the statics tests themselves must be walked"
        assert not any("fixtures" in f for f in files)


class TestEngineOutput:
    def test_syntax_error_yields_parse_finding(self):
        report = check_source("def broken(:\n", "x.py", ALL_RULES)
        assert [f.rule for f in report.findings] == ["PARSE001"]

    def test_findings_are_sorted_and_jsonable(self):
        src = ("import random\n"
               "import time\n"
               "b = time.time()\n"
               "a = random.random()\n")
        report = check_source(src, "x.py", ALL_RULES, scope="sim")
        keys = [f.sort_key() for f in report.findings]
        assert keys == sorted(keys)
        payload = json.dumps(report.to_dict())
        assert json.loads(payload)["ok"] is False

    def test_finding_render_mentions_location_and_rule(self):
        finding = Finding(rule="DET001", path="p.py", line=3, col=7,
                          message="msg", hint="fix it")
        text = finding.render()
        assert "p.py:3:7" in text and "DET001" in text and "fix it" in text


class TestParallelParse:
    """--jobs N must change wall-clock only, never the report."""

    def _render(self, report):
        lines = [f.render() for f in report.findings]
        lines.append(f"{report.files_checked}:{report.suppressed}")
        return "\n".join(lines)

    def test_parallel_report_is_byte_identical_to_serial(self):
        paths = [str(REPO / "src" / "repro" / "statics"),
                 str(REPO / "src" / "repro" / "sim")]
        serial = run_paths(paths, ALL_RULES)
        parallel = run_paths(paths, ALL_RULES, jobs=4)
        assert self._render(parallel) == self._render(serial)
        assert json.dumps(parallel.to_dict(), sort_keys=True) == \
            json.dumps(serial.to_dict(), sort_keys=True)

    def test_parallel_report_with_findings_matches(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "def f(xs):\n    return sorted(xs, key=hash)\n")
        (tmp_path / "b.py").write_text(
            "def g(xs):\n    return sorted(xs, key=lambda x: id(x))\n")
        (tmp_path / "c.py").write_text("x = 1\n")
        serial = run_paths([str(tmp_path)], ALL_RULES)
        parallel = run_paths([str(tmp_path)], ALL_RULES, jobs=3)
        assert not serial.ok
        assert self._render(parallel) == self._render(serial)

    def test_cli_jobs_flag_matches_serial_output(self):
        env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"}
        argv = [sys.executable, "-m", "repro", "statics",
                "src/repro/statics"]
        serial = subprocess.run(argv, cwd=REPO, capture_output=True,
                                text=True, env=env)
        parallel = subprocess.run(argv + ["--jobs", "4"], cwd=REPO,
                                  capture_output=True, text=True, env=env)
        assert serial.returncode == parallel.returncode == 0
        assert serial.stdout == parallel.stdout


class TestSelfRun:
    """The acceptance gate: the tree itself is clean under all rules."""

    def test_src_is_clean(self):
        report = run_paths([str(REPO / "src")], ALL_RULES)
        assert report.ok, "\n".join(f.render() for f in report.findings)
        assert report.files_checked > 80

    def test_src_and_tests_are_clean_via_cli(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "statics", "src", "tests"],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_cli_json_output(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "statics", "--json",
             "src/repro/statics"],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["ok"] is True
        assert payload["files_checked"] >= 5

    def test_cli_nonzero_on_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs):\n"
                       "    return sorted(xs, key=lambda x: hash(x))\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "statics", str(bad)],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 1
        assert "DET004" in proc.stdout

    def test_cli_missing_path_is_usage_error(self, tmp_path):
        # A typo'd path must not let the CI gate pass vacuously.
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "statics",
             str(tmp_path / "no_such_dir")],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 2
        assert "no such path" in proc.stderr


class TestExternalProfile:
    """``--profile external``: portable rules only, forced 'sim' scope."""

    def _run(self, *argv, cwd=REPO):
        return subprocess.run(
            [sys.executable, "-m", "repro", "statics", *argv],
            cwd=cwd, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"),
                 "PATH": "/usr/bin:/bin"})

    def test_repo_convention_rules_are_dropped(self, tmp_path):
        # Wall-clock reads (DET002) and trial-global mutation (TRIAL001)
        # are our layering conventions, not portable contracts.
        model = tmp_path / "model.py"
        model.write_text("import time\n"
                         "def now():\n"
                         "    return time.time()\n")
        proc = self._run("--profile", "external", str(model))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_portable_rules_apply_under_forced_sim_scope(self, tmp_path):
        # Path-derived scoping would put tmp_path files in a no-op
        # scope; the profile forces 'sim' so DET001 still fires.
        model = tmp_path / "model.py"
        model.write_text("import random\n"
                         "def jitter():\n"
                         "    return random.random()\n")
        proc = self._run("--profile", "external", str(model))
        assert proc.returncode == 1
        assert "DET001" in proc.stdout

    def test_unused_pragmas_are_not_reported(self, tmp_path):
        model = tmp_path / "model.py"
        model.write_text("# statics: allow[DET001] not actually needed\n"
                         "x = 1\n")
        proc = self._run("--profile", "external", str(model))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_requires_explicit_paths(self):
        proc = self._run("--profile", "external")
        assert proc.returncode == 2
        assert "explicit paths" in proc.stderr

    def test_rejects_rules_combination(self, tmp_path):
        proc = self._run("--profile", "external", "--rules", "DET001",
                         str(tmp_path))
        assert proc.returncode == 2
        assert "mutually exclusive" in proc.stderr
