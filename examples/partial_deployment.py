#!/usr/bin/env python3
"""Use case: partial deployment (paper §10).

Only the leaf switches are snapshot-enabled — the spines are legacy
boxes that cannot parse the snapshot header.  Speedlight still works:
headers are pushed at the first enabled ingress and stripped at the last
enabled egress before a legacy device or host, and causal consistency is
maintained across the multi-path legacy core.

Run:  python examples/partial_deployment.py
"""

from repro.analysis import ConsistencyChecker
from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


def main() -> None:
    network = Network(leaf_spine(),
                      NetworkConfig(seed=21, enable_tracing=True))
    workload = PoissonWorkload(network, PoissonConfig(
        rate_pps=15_000, stop_ns=1 * S, sport_churn=True))
    workload.start()

    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count",
        switches=["leaf0", "leaf1"]))  # spines stay legacy
    print("snapshot-enabled devices:", sorted(deployment.control_planes))

    epochs = deployment.schedule_campaign(count=8, interval_ns=20 * MS)
    network.run(until=1 * S)

    snaps = deployment.observer.completed_snapshots()
    print(f"completed {len(snaps)}/{len(epochs)} snapshots over the "
          "partial deployment")

    # The simulator's ground-truth trace proves the cuts are still
    # causally consistent even though packets crossed legacy spines.
    checker = ConsistencyChecker(deployment.ids)
    checker.ingest(network.trace_log)
    validated = checker.check_all(snaps, channel_state=False)
    print(f"consistency checker validated {validated} per-unit records "
          "against the ground-truth event trace")

    last = snaps[-1]
    print(f"\nsnapshot {last.epoch} covers only the enabled devices:")
    for device in sorted({u.device for u in last.records}):
        print(f"  {device}: {len(last.device_records(device))} unit records")
    print("\nspines were traversed transparently; no spine state appears "
          "in the snapshot, exactly as §10 describes.")


if __name__ == "__main__":
    main()
