#!/usr/bin/env python3
"""Use case: localizing a lossy link from one snapshot.

Classically, finding a silently lossy link needs network tomography:
statistics over many end-to-end paths, solved as an inference problem
(§2.1: "a total path-level drop count in combination with network
tomography to pinpoint lossy components").  With causally consistent
snapshots of packet counts *with channel state*, the problem becomes
arithmetic: for each link, the sender's count (plus in-flight credits)
minus the receiver's count is exactly that link's loss so far — no
inference, no long averaging window.

The script degrades one fabric link, runs traffic, takes channel-state
snapshots, and lets :class:`repro.analysis.LinkAudit` point at the
culprit.

Run:  python examples/loss_localization.py
"""

from repro.analysis import LinkAudit
from repro.core import ControlPlaneConfig, DeploymentConfig, SpeedlightDeployment
from repro.sim.channel import BernoulliLoss, NoLoss
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

BAD_LINK = ("leaf0", "spine1")  # the silently lossy cable
LOSS_RATE = 0.02


def main() -> None:
    def loss_factory(spec, rng):
        if {spec.a, spec.b} == set(BAD_LINK):
            return BernoulliLoss(LOSS_RATE, rng)
        return NoLoss()

    net = Network(leaf_spine(hosts_per_leaf=1),
                  NetworkConfig(seed=17, loss_factory=loss_factory))
    wl = PoissonWorkload(net, PoissonConfig(
        rate_pps=40_000, stop_ns=1 * S, sport_churn=True))
    wl.start()
    deployment = SpeedlightDeployment(net, DeploymentConfig(
        metric="packet_count", channel_state=True,
        control_plane=ControlPlaneConfig(probe_delay_ns=2 * MS)))
    epochs = deployment.schedule_campaign(count=6, interval_ns=30 * MS)
    net.run(until=1 * S)

    snaps = deployment.observer.completed_snapshots(require_consistent=True)
    print(f"{len(snaps)} consistent snapshots collected; auditing links "
          "from the last one…\n")
    audit = LinkAudit(net)
    reports = audit.audit(snaps[-1])
    print(f"{'link':<22} {'sent':>8} {'received':>9} {'lost':>6} {'rate':>7}")
    worst = None
    for report in sorted(reports, key=lambda r: -r.discrepancy):
        name = f"{report.sender.device}->{report.receiver.device}"
        rate = report.discrepancy / report.sent if report.sent else 0.0
        print(f"{name:<22} {report.sent:>8} {report.received:>9} "
              f"{report.discrepancy:>6} {rate:>6.2%}")
        if worst is None:
            worst = (name, rate)

    print(f"\nculprit: {worst[0]} at {worst[1]:.2%} "
          f"(injected: {'-'.join(BAD_LINK)} at {LOSS_RATE:.0%})")
    print("one consistent cut replaces a tomography campaign: the "
          "discrepancy column *is* the per-link loss.")
    assert audit.violations(snaps[-1]) == []


if __name__ == "__main__":
    main()
