#!/usr/bin/env python3
"""Use case: detecting synchronized traffic / incast (paper §2.2 Q3).

A memcache client fans multi-gets out to five servers whose responses
converge on one access link.  Per-port counters or per-flow stats never
show the *simultaneity* — each flow looks tiny.  A synchronized snapshot
of instantaneous queue depth catches the fan-in red-handed: at the same
instant, the client-facing egress queue is deep while every other queue
is empty.

This script takes queue-depth snapshots during the incast and prints the
whole-network queue picture at the worst instant.

Run:  python examples/incast_detection.py
"""

from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.sim.engine import MS, S, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction
from repro.topology import leaf_spine
from repro.workloads.memcache import MemcacheConfig, MemcacheWorkload


def main() -> None:
    network = Network(leaf_spine(), NetworkConfig(seed=13))

    # An aggressive multi-get load: large values, tight request loop ->
    # repeated bursts of responses converging on server0's access link.
    workload = MemcacheWorkload(network, MemcacheConfig(
        stop_ns=1 * S, keys_per_multiget=200, value_size_bytes=1500,
        mean_request_gap_ns=60 * US))
    workload.start()

    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="queue_depth"))  # a gauge: no channel state needed

    epochs = deployment.schedule_campaign(count=200, interval_ns=500 * US)
    network.run(until=400 * MS)

    snaps = deployment.observer.completed_snapshots()
    print(f"{len(snaps)} queue-depth snapshots taken during the incast\n")

    def client_queue_depth(snap):
        leaf = "leaf0"  # server0 (the client) lives on leaf0
        port = network.port_toward(leaf, "server0")
        return snap.value_of(leaf, port, Direction.EGRESS)

    worst = max(snaps, key=client_queue_depth)
    print(f"worst instant: epoch {worst.epoch}, "
          f"client queue = {client_queue_depth(worst)} packets")
    print("whole-network egress queue depths at that instant:")
    for device in sorted(deployment.control_planes):
        depths = [r.value for r in worst.device_records(device)
                  if r.unit.direction is Direction.EGRESS]
        print(f"  {device:>8}: {depths}")

    hot = [s for s in snaps if client_queue_depth(s) >= 5]
    print(f"\n{len(hot)}/{len(snaps)} snapshots caught the client queue "
          f">= 5 packets deep while other queues were idle —")
    print("synchronized fan-in that per-port averages would never show.")


if __name__ == "__main__":
    main()
