#!/usr/bin/env python3
"""Quickstart: take your first synchronized network snapshot.

Builds the paper's testbed topology (2 leaves x 2 spines x 6 servers),
runs some background traffic, deploys Speedlight with per-port packet
counters, and takes a handful of snapshots — printing, for each, its
consistency, how tightly synchronized the capture was, and the
network-wide packet total it certifies.

Run:  python examples/quickstart.py
"""

from repro.core import ControlPlaneConfig, DeploymentConfig, SpeedlightDeployment
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


def main() -> None:
    # 1. A simulated network from a declarative topology.
    topology = leaf_spine()  # the paper's Figure 8 testbed
    network = Network(topology, NetworkConfig(seed=42))
    print(f"built {topology.name}: switches={topology.switches} "
          f"hosts={len(topology.hosts)}")

    # 2. Background traffic: all-to-all Poisson with connection churn.
    workload = PoissonWorkload(network, PoissonConfig(
        rate_pps=20_000, stop_ns=1 * S, sport_churn=True))
    workload.start()

    # 3. Deploy Speedlight: per-unit packet counters with channel state,
    #    so in-flight packets are credited to the snapshot they belong to.
    #    Liveness probes are disabled: the churned all-to-all traffic
    #    keeps every channel hot, so snapshots complete from traffic
    #    alone and the sync column shows pure measurement spread.
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", channel_state=True,
        control_plane=ControlPlaneConfig(probe_delay_ns=0)))

    # 4. Schedule a measurement campaign and run the simulation.
    epochs = deployment.schedule_campaign(count=10, interval_ns=20 * MS)
    network.run(until=1 * S)

    # 5. Inspect the results.
    print(f"\n{'epoch':>5} {'status':>10} {'consistent':>10} "
          f"{'sync (us)':>10} {'total pkts':>11}")
    for epoch in epochs:
        snap = deployment.observer.snapshot(epoch)
        sync = deployment.sync_spread_ns(epoch) or 0
        print(f"{epoch:>5} {snap.status.value:>10} "
              f"{str(snap.consistent):>10} {sync / 1e3:>10.1f} "
              f"{snap.total_value():>11}")

    last = deployment.observer.snapshot(epochs[-1])
    print("\nper-device totals of the last snapshot:")
    for device in sorted(deployment.control_planes):
        total = sum(r.total_value for r in last.device_records(device))
        print(f"  {device:>8}: {total} packets (+ in-flight credits)")


if __name__ == "__main__":
    main()
