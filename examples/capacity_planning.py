#!/usr/bin/env python3
"""Use case: where should we add capacity? (paper §2.2, question 2)

An operator sees congestion toward the spine layer.  Should she buy a
per-link capacity upgrade, or would a parallel path (or better
balancing) fix it?  The paper: "Balanced load among existing paths would
indicate the former, while localized hotspots would indicate the
latter" — and only contemporaneous measurements can tell these apart.

The script creates the classic pathology: two elephant flows whose ECMP
hashes collide on the same leaf uplink.  Synchronized queue-depth
snapshots show one uplink saturated while its equal-cost sibling sits
idle at the very same instants — a localized hotspot, so the verdict is
"rebalance, don't buy".  Re-running under flowlet switching confirms it:
the same offered load spreads and the hotspot disappears.

Run:  python examples/capacity_planning.py
"""

from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.experiments.campaigns import make_balancer_factory
from repro.lb import flow_hash
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import FlowKey
from repro.sim.switch import Direction, SwitchConfig
from repro.topology import leaf_spine


def _colliding_sports(salt: int, srcs, dst: str, members: int = 2):
    """One source port per sender such that every flow ECMP-hashes to
    the same group member (the elephant-collision pathology)."""
    chosen = {}
    for src in srcs:
        sport = 20_000
        while True:
            member = flow_hash(FlowKey(src, dst, sport, 5001),
                               salt) % members
            if member == 0:
                chosen[src] = sport
                break
            sport += 1
    return chosen


def run_study(balancer: str):
    topo = leaf_spine(hosts_per_leaf=3, host_bw_bps=25 * 10**9,
                      fabric_bw_bps=25 * 10**9)  # uplinks match host rate
    net = Network(topo, NetworkConfig(
        seed=3, lb_factory=make_balancer_factory(balancer),
        # Realistic shallow buffers: the hotspot saturates and drops
        # instead of queueing unboundedly.
        switch_config=SwitchConfig(queue_capacity_packets=1024)))
    # leaf0 is switch index 0 in sorted order -> ECMP salt 0.
    sports = _colliding_sports(salt=0, srcs=("server0", "server1"),
                               dst="server3")
    # Two elephants from different leaf0 hosts toward leaf1; under ECMP
    # both hash onto the same uplink and together oversubscribe it 2:1.
    for host, sport in sports.items():
        net.host(host).send_flow("server3", 40_000, sport=sport, dport=5001,
                                 size_bytes=1500, gap_ns=0)

    deployment = SpeedlightDeployment(net, DeploymentConfig(
        metric="queue_depth"))
    epochs = deployment.schedule_campaign(count=25, interval_ns=1 * MS)
    net.run(until=60 * MS)

    uplinks = net.uplink_ports("leaf0")
    depths = {port: [] for port in uplinks}
    for epoch in epochs:
        snap = deployment.observer.snapshot(epoch)
        if not snap.complete:
            continue
        for port in uplinks:
            depths[port].append(snap.value_of("leaf0", port,
                                              Direction.EGRESS))
    return uplinks, depths


def main() -> None:
    print("congestion reported toward the spine; snapshotting leaf0's "
          "uplink queues…\n")
    for balancer in ("ecmp", "flowlet"):
        uplinks, depths = run_study(balancer)
        print(f"[{balancer}]")
        means = {}
        for port in uplinks:
            series = depths[port]
            means[port] = sum(series) / max(len(series), 1)
            print(f"  uplink port {port}: mean depth "
                  f"{means[port]:7.1f} pkts, max {max(series):5d}")
        hot = max(means.values())
        cold = min(means.values())
        if hot > 10 * max(cold, 0.5):
            print("  -> localized hotspot while the sibling path idles:\n"
                  "     capacity is NOT the problem — rebalance instead.\n")
        else:
            print("  -> load is spread across the equal-cost paths:\n"
                  "     if queues are still deep, buy capacity.\n")


if __name__ == "__main__":
    main()
