#!/usr/bin/env python3
"""Use case: detecting a transient forwarding loop (paper §2.2 Q4).

"Forwarding loops are the canonical example of an undesirable network
state that is difficult to detect" — asynchronous counters can't
distinguish a loop from ordinary transit traffic, because measurements
taken at different times can double-count or miss packets.  Causally
consistent snapshots make the evidence unambiguous: across consecutive
snapshots, switch-to-switch traffic keeps growing while *no new traffic
enters the network* — a conservation violation only a loop can produce.

This script misconfigures a 4-switch ring so a phantom destination's
route points clockwise at every hop, injects a small burst, and lets
synchronized packet-count snapshots expose the loop.

Run:  python examples/forwarding_loop_detection.py
"""

from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction
from repro.topology import ring
from repro.topology.graph import NodeKind


def main() -> None:
    # Slow ring links so each lap of the loop is visible across snapshots.
    topology = ring(num_switches=4, hosts_per_switch=1)
    network = Network(topology, NetworkConfig(seed=5))
    for link in network.links:
        if "server" not in link.name:
            link.propagation_ns = 100 * US

    # The misconfiguration: every switch forwards "phantom" clockwise.
    switches = [f"sw{i}" for i in range(4)]
    for i, name in enumerate(switches):
        next_hop = switches[(i + 1) % 4]
        port = network.port_toward(name, next_hop)
        network.switch(name).install_route("phantom", [port])

    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count"))

    # A short burst toward the phantom destination enters at server0.
    network.host("server0").send_flow("phantom", 20, sport=1, dport=2,
                                      gap_ns=10 * US)

    epochs = deployment.schedule_campaign(count=6, interval_ns=3 * MS)
    network.run(until=200 * MS)

    def ingress_counts(snap):
        """(packets entering from hosts, packets arriving switch-to-switch)."""
        from_hosts = transit = 0
        for unit, record in snap.records.items():
            if unit.direction is not Direction.INGRESS:
                continue
            peer, kind = network.peer_of_port(unit.device, unit.port)
            if kind is NodeKind.HOST:
                from_hosts += record.value
            else:
                transit += record.value
        return from_hosts, transit

    print("epoch | pkts entered from hosts | switch-to-switch arrivals")
    history = []
    for epoch in epochs:
        snap = deployment.observer.snapshot(epoch)
        if not snap.complete:
            continue
        entered, transit = ingress_counts(snap)
        history.append((epoch, entered, transit))
        print(f"{epoch:>5} | {entered:>23} | {transit:>25}")

    (_, e0, t0), (_, e1, t1) = history[0], history[-1]
    print(f"\nbetween the first and last snapshot: host traffic grew by "
          f"{e1 - e0}, transit grew by {t1 - t0}.")
    if t1 - t0 > 4 * max(e1 - e0, 1):
        print("transit grows without new input — packets are circulating: "
              "FORWARDING LOOP detected.")
        print("(each consistent snapshot is a legal cut, so this growth "
              "cannot be an artifact of measurement timing.)")


if __name__ == "__main__":
    main()
