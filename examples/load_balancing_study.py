#!/usr/bin/env python3
"""Use case: is my load balancer actually balancing? (paper §8.3)

An operator deploys flowlet switching hoping it beats ECMP.  This script
answers the question the way Figure 12 does: take synchronized snapshots
of the EWMA of packet interarrival on every leaf uplink, and compare the
standard deviation across same-switch uplinks under both algorithms —
then shows what the traditional polling answer would have claimed.

Run:  python examples/load_balancing_study.py  [workload]
      workload in {hadoop, graphx, memcache}; default hadoop
"""

import sys

from repro.analysis.stats import Cdf, balance_stddevs
from repro.experiments.campaigns import (CampaignSpec, polling_campaign,
                                         rounds_to_balance_input,
                                         snapshot_campaign,
                                         uplink_egress_targets)
from repro.sim.engine import MS


def measure(workload: str, balancer: str, method: str) -> Cdf:
    spec = CampaignSpec(workload=workload, balancer=balancer,
                        metric="ewma_interarrival", rounds=30,
                        interval_ns=5 * MS, seed=7)
    campaign = snapshot_campaign if method == "snapshots" else polling_campaign
    rounds = campaign(spec, uplink_egress_targets)
    return Cdf(balance_stddevs(rounds_to_balance_input(rounds)))


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "hadoop"
    print(f"evaluating ECMP vs flowlet under the {workload} workload")
    print("(lower stddev across a switch's uplinks = better balanced)\n")

    results = {}
    for balancer in ("ecmp", "flowlet"):
        for method in ("snapshots", "polling"):
            results[(balancer, method)] = measure(workload, balancer, method)
            cdf = results[(balancer, method)]
            print(f"  {balancer:>7} / {method:<9}: "
                  f"p50={cdf.median / 1e3:8.2f}us  "
                  f"p90={cdf.percentile(90) / 1e3:8.2f}us")

    snap_gain = (results[("ecmp", "snapshots")].median /
                 max(results[("flowlet", "snapshots")].median, 1e-9))
    poll_gain = (results[("ecmp", "polling")].median /
                 max(results[("flowlet", "polling")].median, 1e-9))
    print(f"\nflowlet improvement (median imbalance ratio):")
    print(f"  ground truth via snapshots : {snap_gain:5.1f}x")
    print(f"  what polling would report  : {poll_gain:5.1f}x")
    if snap_gain > poll_gain:
        print("\npolling understates the flowlet gain — exactly the Figure"
              " 12 lesson: asynchronous measurements cannot answer"
              " whole-network questions.")


if __name__ == "__main__":
    main()
