"""Benchmark: regenerate Figure 10 (max snapshot rate vs. port count).

Paper targets: rate falls inversely with port count; >70 Hz sustained at
64 ports (a full linecard), ~1 kHz at 4 ports.
"""

from repro.experiments import fig10


def test_fig10(benchmark, report_sink, trial_runner):
    config = fig10.Fig10Config(port_counts=[4, 8, 16, 32, 64], burst=25,
                               search_iterations=8)
    result = benchmark.pedantic(fig10.run, args=(config,),
                                kwargs={"runner": trial_runner}, rounds=1,
                                iterations=1)
    report_sink(result.report())
    rates = result.max_rate_hz
    # Inverse scaling in port count (each doubling roughly halves rate).
    assert rates[4] > rates[8] > rates[16] > rates[32] > rates[64]
    assert rates[64] > 60          # paper: >70 Hz at a full linecard
    assert rates[4] > 900          # paper: ~1.1 kHz at 4 ports
    assert 6 < rates[4] / rates[32] < 12
