"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index) at its "quick" configuration and prints the same
rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

Trials execute through the shared trial runner; set ``REPRO_JOBS=4`` to
fan each experiment's trials across worker processes (results are
bit-identical to serial — wall-clock changes, assertions don't), and
``REPRO_CACHE_DIR=/tmp/repro-cache`` to reuse results across runs.

Reports print at the end of the session so they survive pytest's output
capture.
"""

from __future__ import annotations

import os

import pytest

_REPORTS: list = []


@pytest.fixture
def report_sink():
    """Collect a rendered experiment report for end-of-run printing."""
    def sink(text: str) -> None:
        _REPORTS.append(text)

    return sink


@pytest.fixture
def trial_runner():
    """A TrialRunner configured from REPRO_JOBS / REPRO_CACHE_DIR.

    Defaults to serial and uncached, so benchmark timings measure the
    experiment itself unless the environment opts in.
    """
    from repro.runtime import TrialCache, TrialRunner

    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    cache = TrialCache(cache_dir) if cache_dir else None
    return TrialRunner(jobs=jobs, cache=cache)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction reports")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
