"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index) at its "quick" configuration and prints the same
rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

Reports print at the end of the session so they survive pytest's output
capture.
"""

from __future__ import annotations

import pytest

_REPORTS: list = []


@pytest.fixture
def report_sink():
    """Collect a rendered experiment report for end-of-run printing."""
    def sink(text: str) -> None:
        _REPORTS.append(text)

    return sink


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction reports")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
