"""Micro-benchmarks of the discrete-event core's hot paths.

The pytest-benchmark twin of :mod:`repro.perf.bench` — same four
workloads, but with statistical rounds for local A/B work::

    pytest benchmarks/perf/ --benchmark-only

(`make bench` runs the standalone suite instead, which writes
``BENCH_core.json``; this file is for interactive comparisons via
``--benchmark-compare``.)
"""

from repro.perf import bench


def test_event_loop(benchmark):
    result = benchmark.pedantic(bench.bench_event_loop,
                                kwargs={"events": 150_000},
                                rounds=3, iterations=1)
    assert result["events"] == 150_000


def test_timer_churn(benchmark):
    result = benchmark.pedantic(bench.bench_timer_churn,
                                kwargs={"timers": 60_000},
                                rounds=3, iterations=1)
    # 1 in 4 timers survives cancellation and fires.
    assert result["events"] == 15_000


def test_snapshot_round(benchmark):
    result = benchmark.pedantic(bench.bench_snapshot_round,
                                kwargs={"snapshots": 2},
                                rounds=2, iterations=1)
    assert result["events"] > 10_000


def test_fig10_knee(benchmark):
    result = benchmark.pedantic(
        bench.bench_fig10_knee,
        kwargs={"ports": 8, "burst": 15, "search_iterations": 5},
        rounds=2, iterations=1)
    assert result["max_rate_hz"] > 0
