"""Benchmark: regenerate Figure 13 (traffic-correlation discovery).

Paper targets: under GraphX, snapshots find substantially more
statistically significant port-pair correlations than polling (+43% in
the paper); the master server's port shows no significant correlations;
ECMP next-hop uplink pairs correlate positively under snapshots.
"""

from repro.experiments import fig13


def test_fig13(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(fig13.run, args=(fig13.Fig13Config(),),
                                kwargs={"runner": trial_runner},
                                rounds=1, iterations=1)
    report_sink(result.report())
    # Snapshots recover more significant pairs than polling.
    assert result.significant_fraction("snapshots") > \
        result.significant_fraction("polling")
    assert result.extra_pairs_found() > 0.15
    # Ground truth 1: master port quiet (allow alpha-level noise).
    assert result.master_significant("snapshots") <= 1
    # Ground truth 2: ECMP uplink pairs positive under snapshots.
    statuses = result.ecmp_pair_status("snapshots")
    assert statuses.count("positive") >= len(statuses) - 1
    assert "negative" not in statuses
