"""Ablation benchmark: notification transport (raw socket vs P4 digest).

§7.2: "There are alternatives to this approach, e.g., a P4 digest
stream, but we found that raw sockets made the implementation
straightforward and offered significantly better performance."  The
ablation quantifies the tradeoff: digests batch CPU wakeups (slightly
higher bulk snapshot rate) but hold every sparse notification for the
flush window, hurting exactly the latency snapshot progress tracking
depends on.
"""

from repro.experiments.ablations import (TransportConfig,
                                         run_notification_transports)


def test_ablation_notification_transport(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(run_notification_transports,
                                args=(TransportConfig(),),
                                kwargs={"runner": trial_runner},
                                rounds=1, iterations=1)
    report_sink(result.report())
    # Digests sustain at least as high a bulk rate...
    assert result.max_rate_hz["digest"] >= result.max_rate_hz["socket"]
    # ...but sparse completion is meaningfully slower than the socket's.
    assert result.completion_ns["digest"] > 1.2 * result.completion_ns["socket"]
