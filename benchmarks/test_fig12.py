"""Benchmark: regenerate Figure 12 (load-balance stddev CDFs).

Paper shapes reproduced (absolute scales differ — simulation-bounded
traffic rates; see EXPERIMENTS.md):

* flowlet switching balances better than ECMP when measured with
  synchronized snapshots, across all three workloads;
* Hadoop: polling understates the flowlet gain;
* memcache: polling overestimates the (tiny) imbalance.
"""

from repro.experiments import fig12


def test_fig12(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(fig12.run, args=(fig12.Fig12Config.quick(),),
                                kwargs={"runner": trial_runner},
                                rounds=1, iterations=1)
    report_sink(result.report())

    # Flowlets beat ECMP under snapshots, for every workload.
    for workload in result.config.workloads:
        assert result.median(workload, "flowlet", "snapshots") < \
            result.median(workload, "ecmp", "snapshots"), workload

    # Hadoop: the flowlet gain visible to snapshots shrinks under polling.
    gain_snap = (result.median("hadoop", "ecmp", "snapshots") /
                 max(result.median("hadoop", "flowlet", "snapshots"), 1e-9))
    gain_poll = (result.median("hadoop", "ecmp", "polling") /
                 max(result.median("hadoop", "flowlet", "polling"), 1e-9))
    assert gain_snap > gain_poll

    # memcache: polling overestimates the imbalance for flowlets.
    assert result.median("memcache", "flowlet", "polling") > \
        result.median("memcache", "flowlet", "snapshots")
