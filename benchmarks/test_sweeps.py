"""Benchmark: calibration sensitivity sweeps.

Not a paper figure — these make EXPERIMENTS.md's calibration story
executable: how the Figure 10 knee, the Figure 9 synchronization, and
the channel-state tail move with the constants a re-calibration would
touch.
"""

from repro.experiments.sweeps import (PtpSweepConfig, RateSweepConfig,
                                      ServiceCostSweepConfig, run_ptp_sweep,
                                      run_rate_sweep, run_service_cost_sweep)


def _run_all(runner):
    return (run_service_cost_sweep(ServiceCostSweepConfig(), runner=runner),
            run_ptp_sweep(PtpSweepConfig(), runner=runner),
            run_rate_sweep(RateSweepConfig(), runner=runner))


def test_calibration_sweeps(benchmark, report_sink, trial_runner):
    service, ptp, rate = benchmark.pedantic(_run_all, args=(trial_runner,),
                                            rounds=1, iterations=1)
    report_sink("\n\n".join([service.report(), ptp.report(), rate.report()]))
    # The measured Figure 10 knee stays within 40% of the analytical
    # 1/(2 * ports * cost) model over an 8x cost range.
    for cost, measured in service.max_rate_hz.items():
        assert 0.6 * service.model_rate_hz(cost) <= measured \
            <= 1.5 * service.model_rate_hz(cost)
    # Clock quality bounds snapshot sync.
    sigmas = sorted(ptp.sync_median_ns)
    assert ptp.sync_median_ns[sigmas[-1]] > 20 * ptp.sync_median_ns[sigmas[0]]
    # Channel-state sync tightens monotonically with traffic rate.
    rates = sorted(rate.sync_median_ns)
    medians = [rate.sync_median_ns[r] for r in rates]
    assert medians == sorted(medians, reverse=True)
