"""Ablation benchmark: hardware-constrained vs. idealised data plane.

Quantifies what Tofino's inability to loop over skipped snapshot IDs
costs: under intermittent initiation loss the idealised Figure 3
protocol keeps every snapshot consistent, while Speedlight must discard
the intermediate epochs (and relies on observer retries instead).
"""

from repro.experiments.ablations import (IdealVsSpeedlightConfig,
                                         run_ideal_vs_speedlight)


def test_ablation_ideal_vs_speedlight(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(
        run_ideal_vs_speedlight, args=(IdealVsSpeedlightConfig(),),
        kwargs={"runner": trial_runner}, rounds=1, iterations=1)
    report_sink(result.report())
    speed = result.outcomes["speedlight"]
    ideal = result.outcomes["ideal"]
    assert ideal["complete"] > 0
    assert ideal["consistent"] == ideal["complete"]
    assert speed["complete"] > 0
    assert speed["consistent"] < speed["complete"]
