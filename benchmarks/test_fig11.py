"""Benchmark: regenerate Figure 11 (synchronization vs. network size).

Paper targets: average synchronization grows slowly (extreme-value
effect over bounded jitter distributions) and stays under 100 us even at
10,000 routers of 64 ports each.
"""

from repro.experiments import fig11


def test_fig11(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(fig11.run, args=(fig11.Fig11Config(),),
                                kwargs={"runner": trial_runner},
                                rounds=1, iterations=1)
    report_sink(result.report())
    sync = result.avg_sync_ns
    counts = sorted(sync)
    # Monotone growth with network size...
    values = [sync[c] for c in counts]
    assert values == sorted(values)
    # ...that is sub-linear (x1000 routers buys far less than x1000 sync).
    assert sync[10_000] < 10 * sync[10]
    # ...and bounded under the paper's 100 us ceiling.
    assert sync[10_000] < 100_000
