"""Benchmark: full-protocol scaling on growing fat-trees (the end-to-end
companion to Figure 11's Monte-Carlo)."""

from repro.experiments import scaling


def test_protocol_scaling(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(scaling.run, args=(scaling.ScalingConfig(),),
                                kwargs={"runner": trial_runner},
                                rounds=1, iterations=1)
    report_sink(result.report())
    arities = sorted(result.points)
    for arity in arities:
        point = result.points[arity]
        # Every epoch completes on every unit at every size.
        assert point.completed == point.expected
        # Synchronization stays in the tens of microseconds.
        assert point.sync.max < 100_000
    # Per-switch notification load tracks ports/switch (2 per port per
    # snapshot), independent of network size.
    for arity in arities:
        point = result.points[arity]
        ports_per_switch = point.units / (2 * point.switches)
        expected = 2 * ports_per_switch * result.config.snapshots
        assert abs(point.notifications_per_switch - expected) < 1e-6
    # Sync grows sub-linearly: 4x more switches buys < 2.5x the tail.
    small, large = result.points[arities[0]], result.points[arities[-1]]
    assert large.sync.median < 2.5 * small.sync.median
