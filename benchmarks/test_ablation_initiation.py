"""Ablation benchmark: multi-initiator vs. single-initiator snapshots.

Quantifies the design decision of §3 ("snapshots in our system are
initiated at all nodes simultaneously"): with a single initiator the
snapshot spreads at traffic-propagation speed, so synchronization is
orders of magnitude looser than the clock-bounded multi-initiator design.
"""

from repro.experiments.ablations import (InitiationConfig,
                                         run_initiation_strategies)


def test_ablation_initiation_strategy(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(
        run_initiation_strategies, args=(InitiationConfig(),),
        kwargs={"runner": trial_runner}, rounds=1, iterations=1)
    report_sink(result.report())
    assert result.sync_multi.median < 50_000            # us-scale
    assert result.sync_single.median > 1_000_000        # ms-scale
    assert result.sync_single.median > 100 * result.sync_multi.median
