"""Benchmark: regenerate Figure 9 (synchronization CDFs).

Paper targets: snapshots synchronize within tens of microseconds (median
~6.4 us, max 22/27 us without/with channel state) while polling smears a
round over ~2.6 ms.  The channel-state tail in this reproduction is
larger than the hardware testbed's because per-channel traffic rates are
simulation-bounded (see EXPERIMENTS.md); the ordering no-CS <= CS <<
polling is the reproduction target.
"""

from repro.experiments import fig9


def test_fig9(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(fig9.run, args=(fig9.Fig9Config.quick(),),
                                kwargs={"runner": trial_runner},
                                rounds=1, iterations=1)
    report_sink(result.report())
    assert result.sync_no_cs.median < 30_000           # ~us scale
    assert result.sync_no_cs.median <= result.sync_cs.median
    assert result.sync_cs.median < 500_000
    assert result.polling.median > 1_500_000           # ~ms scale
    # Polling is ~2 orders of magnitude worse than snapshot sync.
    assert result.polling.median > 50 * result.sync_no_cs.median
