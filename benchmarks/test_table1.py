"""Benchmark: regenerate Table 1 (data-plane resource usage)."""

from repro.experiments import table1


def test_table1(benchmark, report_sink, trial_runner):
    result = benchmark(table1.run, table1.Table1Config(),
                       runner=trial_runner)
    report_sink(result.report())
    # The model must land exactly on the paper's published table.
    for variant, expected in table1.PAPER_TABLE1.items():
        report = result.reports[variant]
        for attr, value in expected.items():
            assert getattr(report, attr) == value, (variant, attr)
    assert abs(result.report_14port.sram_kb - 638) <= 1
    assert abs(result.report_14port.tcam_kb - 90) <= 1
