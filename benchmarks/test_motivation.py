"""Benchmark: the Figure 1 motivation scenario, quantified.

Two regimes with identical per-queue average load — synchronized bursts
(balanced at every instant) vs. alternating bursts (maximally unbalanced
at every instant).  Snapshots must separate them by an order of
magnitude; polling must not be able to tell them apart (gap ratio ~1).
"""

from repro.experiments import motivation


def test_motivation(benchmark, report_sink, trial_runner):
    result = benchmark.pedantic(motivation.run,
                                args=(motivation.MotivationConfig(),),
                                kwargs={"runner": trial_runner},
                                rounds=1, iterations=1)
    report_sink(result.report())
    # Loads really are identical across regimes (within 10%).
    for method in ("snapshots", "polling"):
        sync_total = result.mean_total[("synchronized", method)]
        alt_total = result.mean_total[("alternating", method)]
        assert abs(sync_total - alt_total) < 0.1 * max(sync_total, alt_total)
    # Snapshots separate the regimes decisively; polling cannot.
    assert result.separation("snapshots") > 10
    assert result.separation("polling") < 2
