"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file exists so that
`pip install -e .` works with the legacy (non-PEP-517) code path on
machines where pip cannot build editable wheels (e.g. offline boxes
without the `wheel` distribution installed).
"""

from setuptools import setup

setup()
