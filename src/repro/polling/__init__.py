"""The traditional counter-polling baseline.

Every comparison in the paper's evaluation pits Speedlight against "a
typical counter polling framework where an observer polls the statistic
for each port individually via a control plane agent that reads and
returns the value on-demand" (§8.1).  This package implements that
framework faithfully, including its defining weakness: reads of different
ports happen at *different times* (~hundreds of µs to ~1 ms apart), so a
"round" of measurements is smeared over milliseconds (the paper measured
a 2.6 ms median first-to-last spread).
"""

from repro.polling.poller import (
    PollTarget,
    PollSample,
    PollRound,
    PollingConfig,
    PollingObserver,
)

__all__ = [
    "PollTarget",
    "PollSample",
    "PollRound",
    "PollingConfig",
    "PollingObserver",
]
