"""Sequential per-port counter polling.

Model (matching §2.1 and §8.1 of the paper):

* the observer issues one read request per (switch, port, direction,
  counter) target over the management plane;
* at the switch, a control-plane agent performs the register read, which
  costs :attr:`PollingConfig.per_read_ns` of CPU/driver time ("without
  driver-level modifications, polling a single counter on a modern switch
  typically takes on the order of 1 ms");
* reads of targets on the *same* switch are serialised behind one another
  (one control-plane agent); different switches poll in parallel if
  :attr:`PollingConfig.parallel_across_switches` is set, as in the
  paper's testbed with its four independent virtual control planes.

Each sample records the counter value *at the instant the read executed*
— the smear of those instants across a round is precisely the
asynchronicity that makes polling misleading for whole-network questions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Optional

from repro.sim.engine import US
from repro.sim.network import Network
from repro.sim.switch import Direction


@dataclass(frozen=True)
class PollTarget:
    """One counter to poll."""

    switch: str
    port: int
    direction: Direction
    counter: str

    def __str__(self) -> str:
        return f"{self.switch}:{self.port}:{self.direction.value}:{self.counter}"


@dataclass
class PollSample:
    """The result of one register read."""

    target: PollTarget
    value: int
    read_ns: int  # true simulation time at which the read executed


@dataclass
class PollRound:
    """One sweep over all targets."""

    index: int
    samples: list[PollSample] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return bool(self.samples)

    @property
    def spread_ns(self) -> int:
        """Time between the first and last read of the round — the
        "synchronization" of polling in Figure 9's terms."""
        if not self.samples:
            return 0
        times = [s.read_ns for s in self.samples]
        return max(times) - min(times)

    def value_of(self, target: PollTarget) -> int:
        for sample in self.samples:
            if sample.target == target:
                return sample.value
        raise KeyError(f"no sample for {target}")

    def values_by_target(self) -> dict[PollTarget, int]:
        return {s.target: s.value for s in self.samples}


@dataclass
class PollingConfig:
    """Latency model of the polling framework."""

    #: Control-plane cost of one register read (Thrift + driver).  The
    #: default reproduces the testbed's ~2.6 ms round spread over 4
    #: switches polled in parallel, ~8 units each.
    per_read_ns: int = 350 * US
    #: Jitter on each read's duration (uniform, ±).
    read_jitter_ns: int = 40 * US
    #: Whether distinct switches poll concurrently (one CP agent each).
    parallel_across_switches: bool = True
    seed: int = 7


class PollingObserver:
    """Drives polling campaigns over a set of targets."""

    def __init__(self, network: Network, targets: list[PollTarget],
                 config: Optional[PollingConfig] = None) -> None:
        if not targets:
            raise ValueError("need at least one poll target")
        self.network = network
        self.targets = list(targets)
        self.config = config or PollingConfig()
        self.rng = random.Random(self.config.seed)
        self.rounds: list[PollRound] = []
        self._campaign_remaining = 0
        for target in self.targets:
            unit = self._unit(target)
            if target.counter not in unit.counters:
                raise ValueError(f"{target} has no counter {target.counter!r}")

    def _unit(self, target: PollTarget):
        return self.network.switch(target.switch).unit(target.port, target.direction)

    def _read_duration_ns(self) -> int:
        jitter = self.rng.randint(-self.config.read_jitter_ns,
                                  self.config.read_jitter_ns)
        return max(1, self.config.per_read_ns + jitter)

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def poll_round(self, done: Optional[Callable[[PollRound], None]] = None) -> PollRound:
        """Start one polling sweep; returns the (initially empty) round.

        The round fills in as simulation time advances; ``done`` fires
        when the last read completes.
        """
        round_ = PollRound(index=len(self.rounds))
        self.rounds.append(round_)

        by_switch: dict[str, list[PollTarget]] = {}
        for target in self.targets:
            by_switch.setdefault(target.switch, []).append(target)

        pending = {"switches": len(by_switch)}

        def chain_done() -> None:
            pending["switches"] -= 1
            if pending["switches"] == 0 and done is not None:
                done(round_)

        sim = self.network.sim
        mgmt = self.network.mgmt
        chains = list(by_switch.values())
        if not self.config.parallel_across_switches:
            # One flat chain across everything.
            chains = [[t for chain in chains for t in chain]]
            pending["switches"] = 1

        for chain in chains:
            def start_chain(chain=chain) -> None:
                self._poll_chain(chain, 0, round_, chain_done)
            # Request reaches the switch agent over the management plane.
            mgmt.send(start_chain)
        return round_

    def _poll_chain(self, chain: list[PollTarget], index: int,
                    round_: PollRound, chain_done: Callable[[], None]) -> None:
        if index >= len(chain):
            chain_done()
            return
        target = chain[index]

        def finish_read() -> None:
            # Value is sampled *now*, when the driver read completes.
            value = self._unit(target).read_counter(target.counter)
            round_.samples.append(PollSample(target, value, self.network.sim.now))
            self._poll_chain(chain, index + 1, round_, chain_done)

        self.network.sim.schedule(self._read_duration_ns(), finish_read)

    # ------------------------------------------------------------------
    # Campaigns
    # ------------------------------------------------------------------
    def run_campaign(self, num_rounds: int, interval_ns: int) -> None:
        """Schedule ``num_rounds`` rounds, ``interval_ns`` apart.

        Results accumulate in :attr:`rounds`; run the simulator to
        completion (or past the campaign end) to fill them.
        """
        if num_rounds < 1:
            raise ValueError("num_rounds must be positive")
        self._campaign_remaining = num_rounds
        for i in range(num_rounds):
            self.network.sim.schedule(i * interval_ns, self._campaign_tick)

    def _campaign_tick(self) -> None:
        self.poll_round(done=lambda _r: None)
        self._campaign_remaining -= 1

    @property
    def complete_rounds(self) -> list[PollRound]:
        """Rounds in which every target produced a sample."""
        want = len(self.targets)
        return [r for r in self.rounds if len(r.samples) == want]
