"""Standard topology shapes.

The defaults of :func:`leaf_spine` reproduce the paper's testbed
(Figure 8): two leaf switches, two spine switches, three servers per leaf,
25 GbE host links and 100 GbE switch-to-switch links.
"""

from __future__ import annotations


from repro.topology.graph import Topology

GBPS = 1_000_000_000


def leaf_spine(num_leaves: int = 2, num_spines: int = 2,
               hosts_per_leaf: int = 3,
               host_bw_bps: int = 25 * GBPS,
               fabric_bw_bps: int = 100 * GBPS,
               host_prop_ns: int = 500,
               fabric_prop_ns: int = 500) -> Topology:
    """A leaf-spine (folded Clos) topology.

    Every leaf connects to every spine; hosts hang off leaves.  Host
    names are ``server<N>`` (numbered across leaves, so ``server0`` is the
    first host of ``leaf0`` — the paper's "master server" in Figure 13).
    """
    if num_leaves < 1 or num_spines < 1 or hosts_per_leaf < 0:
        raise ValueError("leaf/spine/host counts must be positive")
    topo = Topology(f"leafspine-{num_leaves}x{num_spines}")
    spines = [topo.add_switch(f"spine{i}") for i in range(num_spines)]
    leaves = [topo.add_switch(f"leaf{i}") for i in range(num_leaves)]
    for leaf in leaves:
        for spine in spines:
            topo.add_link(leaf, spine, fabric_bw_bps, fabric_prop_ns)
    server = 0
    for leaf in leaves:
        for _ in range(hosts_per_leaf):
            host = topo.add_host(f"server{server}")
            topo.add_link(leaf, host, host_bw_bps, host_prop_ns)
            server += 1
    return topo


def single_switch(num_hosts: int = 4, host_bw_bps: int = 25 * GBPS,
                  host_prop_ns: int = 500) -> Topology:
    """One switch with ``num_hosts`` directly attached servers.

    This is the Figure 10 configuration (snapshot-rate scaling on a
    single switch with a varying port count).
    """
    if num_hosts < 1:
        raise ValueError("need at least one host")
    topo = Topology(f"single-{num_hosts}")
    sw = topo.add_switch("sw0")
    for i in range(num_hosts):
        host = topo.add_host(f"server{i}")
        topo.add_link(sw, host, host_bw_bps, host_prop_ns)
    return topo


def linear(num_switches: int = 3, hosts_per_switch: int = 1,
           host_bw_bps: int = 25 * GBPS,
           fabric_bw_bps: int = 100 * GBPS) -> Topology:
    """A chain of switches, each with local hosts.  Useful in tests."""
    if num_switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology(f"linear-{num_switches}")
    switches = [topo.add_switch(f"sw{i}") for i in range(num_switches)]
    for left, right in zip(switches, switches[1:]):
        topo.add_link(left, right, fabric_bw_bps, 500)
    server = 0
    for sw in switches:
        for _ in range(hosts_per_switch):
            host = topo.add_host(f"server{server}")
            topo.add_link(sw, host, host_bw_bps, 500)
            server += 1
    return topo


def ring(num_switches: int = 4, hosts_per_switch: int = 1,
         host_bw_bps: int = 25 * GBPS,
         fabric_bw_bps: int = 100 * GBPS) -> Topology:
    """A ring of switches.  Exercises multipath with unequal path lengths
    and is the canonical shape for forwarding-loop demonstrations (§2.2,
    question 4)."""
    if num_switches < 3:
        raise ValueError("a ring needs at least three switches")
    topo = Topology(f"ring-{num_switches}")
    switches = [topo.add_switch(f"sw{i}") for i in range(num_switches)]
    for i, sw in enumerate(switches):
        topo.add_link(sw, switches[(i + 1) % num_switches], fabric_bw_bps, 500)
    server = 0
    for sw in switches:
        for _ in range(hosts_per_switch):
            host = topo.add_host(f"server{server}")
            topo.add_link(sw, host, host_bw_bps, 500)
            server += 1
    return topo


def fat_tree(k: int = 4, host_bw_bps: int = 25 * GBPS,
             fabric_bw_bps: int = 100 * GBPS,
             host_prop_ns: int = 500,
             fabric_prop_ns: int = 500) -> Topology:
    """A k-ary fat-tree (k even): (k/2)^2 cores, k pods of k/2+k/2 switches,
    (k^3)/4 hosts.  Used for larger-scale protocol tests.

    ``fabric_prop_ns`` sets every switch-to-switch propagation delay —
    the sharded runner's conservative lookahead when the fabric is cut
    (:mod:`repro.sim.shard`), so the shard-scaling benchmark raises it
    to model longer-haul fabrics with wider coordination windows.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be a positive even integer")
    half = k // 2
    topo = Topology(f"fattree-{k}")
    cores = [[topo.add_switch(f"core{i}_{j}") for j in range(half)]
             for i in range(half)]
    server = 0
    for pod in range(k):
        aggs = [topo.add_switch(f"agg{pod}_{i}") for i in range(half)]
        edges = [topo.add_switch(f"edge{pod}_{i}") for i in range(half)]
        for agg in aggs:
            for edge in edges:
                topo.add_link(agg, edge, fabric_bw_bps, fabric_prop_ns)
        for i, agg in enumerate(aggs):
            for core in cores[i]:
                topo.add_link(agg, core, fabric_bw_bps, fabric_prop_ns)
        for edge in edges:
            for _ in range(half):
                host = topo.add_host(f"server{server}")
                topo.add_link(edge, host, host_bw_bps, host_prop_ns)
                server += 1
    return topo
