"""Topology builders.

A :class:`~repro.topology.graph.Topology` is a declarative description of
devices and links; :class:`repro.sim.network.Network` instantiates it into
a running simulation.  Builders cover the shapes used by the paper:

* :func:`~repro.topology.builders.leaf_spine` — the testbed of Figure 8
  (2 leaves × 2 spines × 6 servers by default);
* :func:`~repro.topology.builders.fat_tree` — k-ary fat-trees for scale
  studies;
* :func:`~repro.topology.builders.single_switch` — the Figure 10 setup;
* :func:`~repro.topology.builders.linear` — chains, useful in tests.
"""

from repro.topology.graph import Topology, NodeKind, LinkSpec
from repro.topology.builders import (
    leaf_spine,
    fat_tree,
    single_switch,
    linear,
    ring,
)

__all__ = [
    "Topology",
    "NodeKind",
    "LinkSpec",
    "leaf_spine",
    "fat_tree",
    "single_switch",
    "linear",
    "ring",
]
