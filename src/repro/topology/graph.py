"""Declarative topology description.

A topology is a set of named nodes (switches and hosts) and links with
per-link bandwidth/propagation attributes.  It is a pure description —
no simulator objects — so tests can assert on structure cheaply and the
same topology can be instantiated many times with different seeds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import networkx as nx


class NodeKind(enum.Enum):
    SWITCH = "switch"
    HOST = "host"


@dataclass(frozen=True)
class LinkSpec:
    """Attributes of one physical link."""

    a: str
    b: str
    bandwidth_bps: int = 25_000_000_000
    propagation_ns: int = 500

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of {self}")


class Topology:
    """Nodes + links, with shortest-path helpers used for route setup."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._kinds: dict[str, NodeKind] = {}
        self._links: list[LinkSpec] = []
        self._graph = nx.Graph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, name: str) -> str:
        self._add_node(name, NodeKind.SWITCH)
        return name

    def add_host(self, name: str) -> str:
        self._add_node(name, NodeKind.HOST)
        return name

    def _add_node(self, name: str, kind: NodeKind) -> None:
        if name in self._kinds:
            raise ValueError(f"node {name!r} already exists")
        self._kinds[name] = kind
        self._graph.add_node(name, kind=kind)

    def add_link(self, a: str, b: str, bandwidth_bps: int = 25_000_000_000,
                 propagation_ns: int = 500) -> LinkSpec:
        for node in (a, b):
            if node not in self._kinds:
                raise ValueError(f"unknown node {node!r}")
        if self._kinds[a] is NodeKind.HOST and self._kinds[b] is NodeKind.HOST:
            raise ValueError("host-to-host links are not supported")
        if self._graph.has_edge(a, b):
            raise ValueError(f"link {a!r}-{b!r} already exists")
        spec = LinkSpec(a, b, bandwidth_bps, propagation_ns)
        self._links.append(spec)
        self._graph.add_edge(a, b, spec=spec)
        return spec

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        return sorted(self._kinds)

    @property
    def switches(self) -> list[str]:
        return sorted(n for n, k in self._kinds.items() if k is NodeKind.SWITCH)

    @property
    def hosts(self) -> list[str]:
        return sorted(n for n, k in self._kinds.items() if k is NodeKind.HOST)

    @property
    def links(self) -> list[LinkSpec]:
        return list(self._links)

    def kind(self, name: str) -> NodeKind:
        return self._kinds[name]

    def neighbors(self, name: str) -> list[str]:
        return sorted(self._graph.neighbors(name))

    def degree(self, name: str) -> int:
        return self._graph.degree(name)

    def link_between(self, a: str, b: str) -> Optional[LinkSpec]:
        data = self._graph.get_edge_data(a, b)
        return data["spec"] if data else None

    def is_connected(self) -> bool:
        return len(self._kinds) > 0 and nx.is_connected(self._graph)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def ecmp_next_hops(self, switch: str, dst_host: str) -> list[str]:
        """All equal-cost next hops from ``switch`` toward ``dst_host``.

        Hop count is the metric (standard for leaf-spine/fat-tree ECMP).
        The returned neighbor names are sorted for determinism.
        """
        if self._kinds.get(switch) is not NodeKind.SWITCH:
            raise ValueError(f"{switch!r} is not a switch")
        if self._kinds.get(dst_host) is not NodeKind.HOST:
            raise ValueError(f"{dst_host!r} is not a host")
        if switch == dst_host:
            raise ValueError("switch cannot be its own destination")
        try:
            dist = nx.shortest_path_length(self._graph, switch, dst_host)
        except nx.NetworkXNoPath:
            return []
        next_hops = []
        for neighbor in self._graph.neighbors(switch):
            if neighbor == dst_host:
                next_hops.append(neighbor)
                continue
            if self._kinds[neighbor] is NodeKind.HOST:
                continue  # hosts never transit traffic
            try:
                d = nx.shortest_path_length(self._graph, neighbor, dst_host)
            except nx.NetworkXNoPath:
                continue
            if d == dist - 1:
                next_hops.append(neighbor)
        return sorted(next_hops)

    def to_networkx(self) -> nx.Graph:
        """A copy of the underlying graph (for analysis/plotting)."""
        return self._graph.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Topology({self.name!r}, switches={len(self.switches)}, "
                f"hosts={len(self.hosts)}, links={len(self._links)})")
