"""Load-balancing algorithms implemented in the switch data plane.

The paper's running question — *is my load balancing protocol balancing
the load?* — is evaluated in §8.3 by comparing flow-level ECMP [RFC2992]
against flowlet switching [Kandula et al. 2007] under three workloads.
Both algorithms live here and plug into
:class:`repro.sim.switch.Switch` via the ``LoadBalancer`` protocol.
"""

from repro.lb.ecmp import EcmpBalancer, flow_hash
from repro.lb.flowlet import FlowletBalancer, FlowletConfig

__all__ = ["EcmpBalancer", "flow_hash", "FlowletBalancer", "FlowletConfig"]
