"""Flowlet switching [Kandula et al., CCR 2007].

A *flowlet* is a burst of packets of one flow separated from the next
burst by an idle gap longer than the network's path-delay skew.  Routing
each flowlet independently splits traffic at sub-flow granularity without
reordering packets: by the time a new flowlet starts, the previous one
has drained from whichever path it took.

Implementation mirrors a hardware flowlet table: a fixed-size array
indexed by flow hash, each entry holding ``(last_seen_ns, port)``.  A
packet whose gap since ``last_seen_ns`` exceeds the timeout starts a new
flowlet and picks a fresh member (round-robin here, which is what gives
flowlets their fine-grained balance).  Hash collisions gluing two flows
into one table entry are faithful to hardware and harmless for balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lb.ecmp import flow_hash
from repro.sim.engine import US
from repro.sim.packet import Packet


@dataclass
class FlowletConfig:
    """Flowlet table parameters.

    The timeout must exceed the maximum path-delay difference between
    equal-cost paths to preserve intra-flow ordering; 50 µs is
    comfortable for the testbed's ~µs path skews while still splitting
    application bursts.
    """

    timeout_ns: int = 50 * US
    table_size: int = 4096
    salt: int = 0


class _TableEntry:
    __slots__ = ("last_seen_ns", "port")

    def __init__(self) -> None:
        self.last_seen_ns = -1
        self.port = -1


class FlowletBalancer:
    """Flowlet-table member selection."""

    def __init__(self, config: Optional[FlowletConfig] = None) -> None:
        self.config = config or FlowletConfig()
        if self.config.table_size < 1:
            raise ValueError("table_size must be positive")
        if self.config.timeout_ns < 0:
            raise ValueError("timeout must be non-negative")
        self._table = [_TableEntry() for _ in range(self.config.table_size)]
        self._next_member = 0
        self.decisions = 0
        self.flowlets_started = 0

    def select(self, candidates: list[int], packet: Packet, now_ns: int) -> int:
        self.decisions += 1
        index = flow_hash(packet.flow, self.config.salt) % len(self._table)
        entry = self._table[index]
        expired = (entry.last_seen_ns < 0 or
                   now_ns - entry.last_seen_ns > self.config.timeout_ns)
        if expired or entry.port not in candidates:
            # New flowlet: rotate through the group members.
            entry.port = candidates[self._next_member % len(candidates)]
            self._next_member += 1
            self.flowlets_started += 1
        entry.last_seen_ns = now_ns
        return entry.port

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowletBalancer(timeout={self.config.timeout_ns}ns, "
                f"flowlets={self.flowlets_started})")
