"""Equal-Cost Multi-Path forwarding (flow-level hashing).

Classic ECMP: a hash of the 5-tuple selects one member of the equal-cost
group, so every packet of a flow takes the same path (no reordering) but
large flows can collide on a member and skew the load — the imbalance
Figure 12 measures.

The hash must be deterministic across runs (Python's built-in ``hash`` on
strings is salted per process), so we use CRC32 over a canonical encoding
of the flow key, which mirrors what switch ASICs compute.  CRC alone is
*linear*: two messages differing only in an appended salt byte produce
CRCs differing by a constant XOR, so their low bits — the ECMP member
selector — stay perfectly correlated across salts.  Real ASICs avoid
this by seeding the hash state or selecting different polynomials per
switch; we apply a murmur-style avalanche finalizer over (CRC, salt),
which decorrelates member choices across hops the same way.
"""

from __future__ import annotations

import zlib

from repro.sim.packet import FlowKey, Packet


def flow_hash(flow: FlowKey, salt: int = 0) -> int:
    """Deterministic, salt-decorrelated hash of the 5-tuple."""
    key = f"{flow.src}|{flow.dst}|{flow.sport}|{flow.dport}|{flow.proto}"
    h = zlib.crc32(key.encode("ascii"))
    h ^= (salt * 0x9E3779B9) & 0xFFFFFFFF
    h = (h * 0x85EBCA6B) & 0xFFFFFFFF
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & 0xFFFFFFFF
    h ^= h >> 16
    return h


class EcmpBalancer:
    """Flow-hash member selection over the candidate port list."""

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt
        self.decisions = 0

    def select(self, candidates: list[int], packet: Packet, now_ns: int) -> int:
        self.decisions += 1
        return candidates[flow_hash(packet.flow, self.salt) % len(candidates)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EcmpBalancer(salt={self.salt})"
