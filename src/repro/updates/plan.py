"""Composable update plans — the spec algebra above :class:`UpdateSchedule`.

An :class:`UpdatePlan` describes *how a coordinated forwarding update
rolls out* without naming concrete port numbers or simulator objects;
compiling it against an :class:`UpdateContext` (the device inventory
plus the time window) deterministically yields a concrete
:class:`UpdateSchedule` of per-device commands.  Plans follow the same
spec contract as :class:`repro.faults.profile.FaultProfile` (the shared
pattern is documented in ``docs/SPECS.md``): plain frozen
JSON-round-trippable dataclasses with registered ``type`` tags, ``|``
composition, and one clamp point for every scheduled instant — so plans
ride inside trial params (and cache fingerprints) exactly like fault
profiles do, and the two algebras compose in one experiment::

    plan = (TimedSwap(at_ns=30 * MS, routes=(
                ("leaf0", "server3", ("spine1",)),
                ("spine0", "server3", ("leaf0",))))
            | TwoPhaseVersioned(at_ns=60 * MS, routes=(
                ("leaf0", "server3", ("spine0", "spine1")),)))
    schedule = plan.compile(UpdateContext.for_topology(
        topo, horizon_ns=100 * MS))

Route changes are symbolic: ``(device, dst, via)`` names the next-hop
*neighbors* (an ECMP group), and the empty ``via`` tuple withdraws the
route (a deliberate drain/black-hole).  The driver
(:mod:`repro.updates.driver`) resolves neighbor names to port numbers
against the live network and converts each command's scheduled wall
instant through the owning device's *local* clock — which is the whole
point: real PTP error skews when "simultaneous" commands actually fire,
and the snapshot verifier (:mod:`repro.updates.verify`) measures the
damage.

Determinism contract
--------------------
* Plans are fully deterministic: a compiled schedule is a pure function
  of (plan, context).  Composition is command-set union with waves
  renumbered in part order.
* Every command placement funnels through one clamp point
  (:meth:`UpdateContext.emit`), so every compiled instant — including
  two-phase lead/drain offsets that would otherwise escape — lands
  inside ``[start_ns, start_ns + horizon_ns)``.
* A plan with no route changes compiles to an **empty schedule**:
  arming it is byte-identical to no driver at all (pinned by the
  golden-trace guard).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from collections.abc import Iterable, Mapping
from typing import Any, ClassVar, Optional

from repro.sim.engine import MS

__all__ = [
    "Compose",
    "PhasedUpdate",
    "TimedSwap",
    "TwoPhaseVersioned",
    "UpdateCommand",
    "UpdateContext",
    "UpdatePlan",
    "UpdateSchedule",
    "UpdateWave",
]

#: Command opcodes.  ``swap`` is the only generation-bumping op (one
#: atomic table flip via :meth:`repro.sim.switch.Switch.apply_route_swap`);
#: ``stage``/``stamp``/``cleanup`` are the two-phase scaffolding.
UPDATE_OPS = frozenset({"swap", "stage", "stamp", "cleanup"})

#: Ops that require a rule tag (the two-phase ops).
_TAGGED_OPS = frozenset({"stage", "stamp", "cleanup"})

#: One symbolic route change: (device, destination host, via-neighbors).
RouteChange = "tuple[str, str, tuple[str, ...]]"


def _normalize_routes(routes: Iterable[Any]) -> tuple[tuple[str, str, tuple[str, ...]], ...]:
    """Canonicalize a routes spec (accepting JSON lists) into nested
    tuples of ``(device, dst, (via, ...))``."""
    out = []
    for entry in routes:
        entry = tuple(entry)
        if len(entry) != 3:
            raise ValueError(
                f"route change must be (device, dst, via-neighbors), "
                f"got {entry!r}")
        device, dst, via = entry
        if isinstance(via, str):
            raise ValueError(
                f"via must be a sequence of neighbor names, got {via!r}")
        out.append((str(device), str(dst), tuple(str(v) for v in via)))
    return tuple(out)


@dataclass(frozen=True)
class UpdateCommand:
    """One concrete per-device command of a compiled schedule.

    ``at_ns`` is the scheduled **wall-clock** instant; the driver maps
    it through the device's local clock, so two commands with equal
    ``at_ns`` on different devices fire at *different* true times under
    clock error.  ``changes`` holds ``(dst, via-neighbors)`` pairs; an
    empty via withdraws the route.
    """

    at_ns: int
    device: str
    op: str
    wave: int
    tag: Optional[str] = None
    changes: tuple[tuple[str, tuple[str, ...]], ...] = ()

    def to_jsonable(self) -> dict[str, Any]:
        return {"at_ns": self.at_ns, "device": self.device, "op": self.op,
                "wave": self.wave, "tag": self.tag,
                "changes": [[dst, list(via)] for dst, via in self.changes]}

    @staticmethod
    def from_jsonable(data: Mapping[str, Any]) -> "UpdateCommand":
        return UpdateCommand(
            at_ns=int(data["at_ns"]), device=data["device"], op=data["op"],
            wave=int(data["wave"]), tag=data.get("tag"),
            changes=tuple((dst, tuple(via))
                          for dst, via in data.get("changes", ())))


@dataclass(frozen=True)
class UpdateWave:
    """Verdict metadata for one plan part (one "wave" of the rollout).

    ``verdict_at_ns`` is the wall instant the verifier's straddling
    snapshot targets — the wave's (last) generation-bumping instant;
    ``window_start_ns``/``window_end_ns`` span every command of the
    wave, and bound the drop-attribution window.
    """

    index: int
    strategy: str
    label: str
    verdict_at_ns: int
    window_start_ns: int
    window_end_ns: int

    def to_jsonable(self) -> dict[str, Any]:
        return {"index": self.index, "strategy": self.strategy,
                "label": self.label, "verdict_at_ns": self.verdict_at_ns,
                "window_start_ns": self.window_start_ns,
                "window_end_ns": self.window_end_ns}

    @staticmethod
    def from_jsonable(data: Mapping[str, Any]) -> "UpdateWave":
        return UpdateWave(
            index=int(data["index"]), strategy=data["strategy"],
            label=data["label"], verdict_at_ns=int(data["verdict_at_ns"]),
            window_start_ns=int(data["window_start_ns"]),
            window_end_ns=int(data["window_end_ns"]))


@dataclass
class UpdateSchedule:
    """A compiled update plan: concrete commands plus wave metadata."""

    commands: list[UpdateCommand] = field(default_factory=list)
    waves: list[UpdateWave] = field(default_factory=list)

    def add(self, command: UpdateCommand) -> None:
        self.commands.append(command)

    def add_wave(self, wave: UpdateWave) -> None:
        self.waves.append(wave)

    def next_wave(self) -> int:
        return len(self.waves)

    def sort(self) -> None:
        """Deterministic command order (time, then device, then op)."""
        self.commands.sort(key=lambda c: (c.at_ns, c.device, c.op, c.wave))

    def devices(self) -> tuple[str, ...]:
        return tuple(sorted({c.device for c in self.commands}))

    def swap_commands(self, wave: Optional[int] = None) -> list[UpdateCommand]:
        return [c for c in self.commands if c.op == "swap"
                and (wave is None or c.wave == wave)]

    def restrict(self, devices: Iterable[str]) -> "UpdateSchedule":
        """The sub-schedule touching only ``devices`` (shard slicing);
        wave metadata is kept whole — verdict windows are global."""
        keep = set(devices)
        return UpdateSchedule(
            commands=[c for c in self.commands if c.device in keep],
            waves=list(self.waves))

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def to_jsonable(self) -> dict[str, Any]:
        return {"commands": [c.to_jsonable() for c in self.commands],
                "waves": [w.to_jsonable() for w in self.waves]}

    @staticmethod
    def from_jsonable(data: Mapping[str, Any]) -> "UpdateSchedule":
        return UpdateSchedule(
            commands=[UpdateCommand.from_jsonable(c)
                      for c in data.get("commands", ())],
            waves=[UpdateWave.from_jsonable(w)
                   for w in data.get("waves", ())])


@dataclass(frozen=True)
class UpdateContext:
    """Where and when a plan compiles: device inventory plus window.

    ``switches`` are the updatable devices; ``edges`` are the switches
    with host-facing ports (where two-phase flips stamp incoming
    traffic).  The context is plan-independent, so the *same* context
    compiles every part of a composite — which is what keeps the parts'
    wave numbering and clamping coherent.
    """

    horizon_ns: int
    switches: tuple[str, ...] = ()
    edges: tuple[str, ...] = ()
    start_ns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_ns <= 0:
            raise ValueError(f"horizon_ns must be > 0, got {self.horizon_ns}")
        if self.start_ns < 0:
            raise ValueError(f"start_ns must be >= 0, got {self.start_ns}")
        for name in ("switches", "edges"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @classmethod
    def for_topology(cls, topo: Any, *, horizon_ns: int, start_ns: int = 0,
                     seed: int = 0) -> "UpdateContext":
        """Derive the device inventory from a
        :class:`~repro.topology.graph.Topology`: every switch, with the
        host-adjacent ones as edges."""
        from repro.topology.graph import NodeKind

        switches = tuple(topo.switches)
        edges = tuple(s for s in switches
                      if any(topo.kind(n) is NodeKind.HOST
                             for n in topo.neighbors(s)))
        return cls(horizon_ns=horizon_ns, switches=switches, edges=edges,
                   start_ns=start_ns, seed=seed)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.horizon_ns

    def clamp(self, at_ns: int) -> int:
        """Clamp one scheduled instant into ``[start_ns, end_ns)`` —
        shared by :meth:`emit` and wave metadata so both stay inside
        the compile window."""
        return min(max(int(at_ns), self.start_ns), self.end_ns - 1)

    # ------------------------------------------------------------------
    # The single clamp/validate point (every compiled command goes here)
    # ------------------------------------------------------------------
    def emit(self, schedule: UpdateSchedule, op: str, at_ns: int, *,
             device: str, wave: int, tag: Optional[str] = None,
             changes: Iterable[Any] = ()) -> None:
        """Append one command, clamped into the compile window."""
        if op not in UPDATE_OPS:
            raise ValueError(f"unknown update op {op!r} "
                             f"(known: {', '.join(sorted(UPDATE_OPS))})")
        if device not in self.switches:
            raise ValueError(f"plan names unknown switch {device!r}")
        if op in _TAGGED_OPS and not tag:
            raise ValueError(f"op {op!r} requires a rule tag")
        schedule.add(UpdateCommand(
            at_ns=self.clamp(at_ns), device=device, op=op, wave=wave,
            tag=tag, changes=tuple((dst, tuple(via))
                                   for dst, via in changes)))


# ----------------------------------------------------------------------
# The plan algebra
# ----------------------------------------------------------------------

#: JSON ``type`` tag -> spec class, populated by ``__init_subclass__``.
_PLAN_TYPES: dict[str, type] = {}


def _to_json_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_to_json_value(v) for v in value]
    return value


def _from_json_value(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_from_json_value(v) for v in value)
    return value


class UpdatePlan:
    """Base of every update-plan spec.

    Subclasses are frozen dataclasses with a ``plan_type`` class tag;
    they implement :meth:`compile_into` and inherit JSON round-tripping
    and the ``|`` composition operator — the same spec contract as
    :class:`repro.faults.profile.FaultProfile` (see ``docs/SPECS.md``).
    """

    plan_type: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        tag = cls.__dict__.get("plan_type", "")
        if tag:
            _PLAN_TYPES[tag] = cls

    # -- compilation ---------------------------------------------------
    def compile(self, ctx: UpdateContext) -> UpdateSchedule:
        schedule = UpdateSchedule()
        self.compile_into(ctx, schedule)
        schedule.sort()
        return schedule

    def compile_into(self, ctx: UpdateContext,
                     schedule: UpdateSchedule) -> None:
        """Append this plan's commands and wave metadata to a shared
        schedule (wave indices come from ``schedule.next_wave()``, so
        composed parts never collide)."""
        raise NotImplementedError

    # -- composition ---------------------------------------------------
    def __or__(self, other: "UpdatePlan") -> "Compose":
        if not isinstance(other, UpdatePlan):
            return NotImplemented
        mine = self.parts if isinstance(self, Compose) else (self,)
        theirs = other.parts if isinstance(other, Compose) else (other,)
        return Compose(parts=mine + theirs)

    __add__ = __or__

    # -- serialization -------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        """Stable JSON form (``{"type": …, <fields>}``) — what rides in
        trial params and on the ``--update-plan`` CLI flag."""
        data: dict[str, Any] = {"type": self.plan_type}
        for f in fields(self):  # type: ignore[arg-type]
            data[f.name] = _to_json_value(getattr(self, f.name))
        return data

    @staticmethod
    def from_jsonable(data: Mapping[str, Any]) -> "UpdatePlan":
        """Reconstruct any registered spec (round-trip inverse of
        :meth:`to_jsonable`)."""
        if not isinstance(data, Mapping) or "type" not in data:
            raise ValueError(
                "a serialized UpdatePlan is an object with a 'type' tag; "
                f"got {data!r}")
        tag = data["type"]
        cls = _PLAN_TYPES.get(tag)
        if cls is None:
            raise ValueError(
                f"unknown update plan type {tag!r} "
                f"(known: {', '.join(sorted(_PLAN_TYPES))})")
        payload = {k: v for k, v in data.items() if k != "type"}
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown field(s) {', '.join(unknown)} for plan "
                f"type {tag!r}")
        return cls._from_fields(payload)

    @classmethod
    def _from_fields(cls, payload: dict[str, Any]) -> "UpdatePlan":
        for key, value in payload.items():
            if isinstance(value, list):
                payload[key] = _from_json_value(value)
        return cls(**payload)  # type: ignore[call-arg]

    # -- shared helpers ------------------------------------------------
    @staticmethod
    def _by_device(routes) -> dict[str, tuple[tuple[str, tuple[str, ...]], ...]]:
        """Group ``(device, dst, via)`` entries into per-device change
        batches, preserving entry order within a device."""
        grouped: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
        for device, dst, via in routes:
            grouped.setdefault(device, []).append((dst, via))
        return {d: tuple(c) for d, c in grouped.items()}


@dataclass(frozen=True)
class TimedSwap(UpdatePlan):
    """Time4-style simultaneous update: every named device flips its
    table at the *same scheduled instant* on its **local** clock.

    Under perfect synchronization the swap is globally atomic; under
    real PTP error the per-device fire times skew, opening a window of
    mixed forwarding state — the transient loops and black holes the
    snapshot verifier attributes to this wave.
    """

    plan_type: ClassVar[str] = "timed_swap"

    at_ns: int = 20 * MS
    routes: tuple = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        object.__setattr__(self, "routes", _normalize_routes(self.routes))

    def compile_into(self, ctx: UpdateContext,
                     schedule: UpdateSchedule) -> None:
        if not self.routes:
            return
        wave = schedule.next_wave()
        at = ctx.clamp(self.at_ns)
        for device, changes in sorted(self._by_device(self.routes).items()):
            ctx.emit(schedule, "swap", self.at_ns, device=device, wave=wave,
                     changes=changes)
        schedule.add_wave(UpdateWave(
            index=wave, strategy=self.plan_type,
            label=self.label or f"{self.plan_type}@{at}",
            verdict_at_ns=at, window_start_ns=at, window_end_ns=at))


@dataclass(frozen=True)
class PhasedUpdate(UpdatePlan):
    """Ordered per-device rollout: device *i* swaps ``gap_ns`` after
    device *i-1* (classic dependency-ordered update).

    With a gap comfortably above the clock error the rollout order is
    preserved and a correctly ordered plan stays loop-free — at the
    price of never being atomic: a cut taken mid-rollout legitimately
    sees both generations.  The verdict snapshot straddles the *last*
    phase instant.
    """

    plan_type: ClassVar[str] = "phased"

    at_ns: int = 20 * MS
    gap_ns: int = 2 * MS
    routes: tuple = ()
    order: tuple = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.gap_ns <= 0:
            raise ValueError(f"gap_ns must be > 0, got {self.gap_ns}")
        object.__setattr__(self, "routes", _normalize_routes(self.routes))
        if not isinstance(self.order, tuple):
            object.__setattr__(self, "order", tuple(self.order))

    def _phases(self) -> list[str]:
        grouped = self._by_device(self.routes)
        if not self.order:
            return sorted(grouped)
        if sorted(self.order) != sorted(grouped):
            raise ValueError(
                f"order {self.order!r} must name each updated device "
                f"exactly once (devices: {sorted(grouped)})")
        return list(self.order)

    def compile_into(self, ctx: UpdateContext,
                     schedule: UpdateSchedule) -> None:
        if not self.routes:
            return
        wave = schedule.next_wave()
        grouped = self._by_device(self.routes)
        phases = self._phases()
        for i, device in enumerate(phases):
            ctx.emit(schedule, "swap", self.at_ns + i * self.gap_ns,
                     device=device, wave=wave, changes=grouped[device])
        first = ctx.clamp(self.at_ns)
        last = ctx.clamp(self.at_ns + (len(phases) - 1) * self.gap_ns)
        schedule.add_wave(UpdateWave(
            index=wave, strategy=self.plan_type,
            label=self.label or f"{self.plan_type}@{first}",
            verdict_at_ns=last, window_start_ns=first, window_end_ns=last))


@dataclass(frozen=True)
class TwoPhaseVersioned(UpdatePlan):
    """Install-tagged-rules-then-flip (the consistent-updates playbook,
    leaning on per-packet ``route_tag`` versioning):

    1. **install** (``at_ns - lead_ns``): stage the new rules as a
       tagged shadow set on every updated device (adds only — staged
       removals would black-hole tagged packets mid-transition);
    2. **flip** (``at_ns``): edge switches stamp traffic entering
       through host-facing ports with the tag, so new packets match the
       staged rules network-wide while in-flight untagged packets keep
       matching the old tables — no packet ever sees a mix;
    3. **commit** (``at_ns + drain_ns``): one atomic table flip applies
       the changes (including removals) to the base FIB — the wave's
       generation bump, and the verdict snapshot's straddle point.  The
       staged set and stamps are *kept* through the drain so late
       stragglers stay consistent;
    4. **cleanup** (``at_ns + 2 * drain_ns``): stamps and staged rules
       are cleared.

    ``drain_ns`` must exceed the maximum packet lifetime so nothing
    sent against the old tables is still in flight at commit.
    """

    plan_type: ClassVar[str] = "two_phase"

    at_ns: int = 20 * MS
    lead_ns: int = 5 * MS
    drain_ns: int = 2 * MS
    routes: tuple = ()
    tag: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.lead_ns <= 0:
            raise ValueError(f"lead_ns must be > 0, got {self.lead_ns}")
        if self.drain_ns <= 0:
            raise ValueError(f"drain_ns must be > 0, got {self.drain_ns}")
        object.__setattr__(self, "routes", _normalize_routes(self.routes))

    def compile_into(self, ctx: UpdateContext,
                     schedule: UpdateSchedule) -> None:
        if not self.routes:
            return
        wave = schedule.next_wave()
        tag = self.tag or f"2pc-{wave}"
        grouped = self._by_device(self.routes)
        for device, changes in sorted(grouped.items()):
            ctx.emit(schedule, "stage", self.at_ns - self.lead_ns,
                     device=device, wave=wave, tag=tag, changes=changes)
        for device in ctx.edges:
            ctx.emit(schedule, "stamp", self.at_ns, device=device,
                     wave=wave, tag=tag)
        for device, changes in sorted(grouped.items()):
            ctx.emit(schedule, "swap", self.at_ns + self.drain_ns,
                     device=device, wave=wave, tag=tag, changes=changes)
        for device in sorted(set(grouped) | set(ctx.edges)):
            ctx.emit(schedule, "cleanup", self.at_ns + 2 * self.drain_ns,
                     device=device, wave=wave, tag=tag)
        start = ctx.clamp(self.at_ns - self.lead_ns)
        commit = ctx.clamp(self.at_ns + self.drain_ns)
        end = ctx.clamp(self.at_ns + 2 * self.drain_ns)
        schedule.add_wave(UpdateWave(
            index=wave, strategy=self.plan_type,
            label=self.label or f"{self.plan_type}@{ctx.clamp(self.at_ns)}",
            verdict_at_ns=commit, window_start_ns=start, window_end_ns=end))


@dataclass(frozen=True)
class Compose(UpdatePlan):
    """Several plans compiled against one context, in part order.

    Waves are numbered sequentially across parts (each part allocates
    from the shared schedule), so a composed plan's verdicts line up
    one-to-one with its parts.
    """

    plan_type: ClassVar[str] = "compose"

    parts: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.parts, tuple):
            object.__setattr__(self, "parts", tuple(self.parts))
        for part in self.parts:
            if not isinstance(part, UpdatePlan):
                raise TypeError(f"expected UpdatePlan, got {part!r}")

    def compile_into(self, ctx: UpdateContext,
                     schedule: UpdateSchedule) -> None:
        for part in self.parts:
            part.compile_into(ctx, schedule)

    def to_jsonable(self) -> dict[str, Any]:
        return {"type": self.plan_type,
                "parts": [part.to_jsonable() for part in self.parts]}

    @classmethod
    def _from_fields(cls, payload: dict[str, Any]) -> "Compose":
        parts = payload.get("parts", [])
        return cls(parts=tuple(UpdatePlan.from_jsonable(p) for p in parts))
