"""Arming a compiled update schedule on a live network.

The driver binds an :class:`~repro.updates.plan.UpdateSchedule` to a
:class:`~repro.sim.network.Network`:

* each command's scheduled **wall** instant is converted through the
  owning device's *local* PTP clock
  (:meth:`~repro.sim.clock.Clock.true_time`), so real clock error skews
  when "simultaneous" commands actually fire — the skew the snapshot
  verifier measures;
* symbolic ``(dst, via-neighbors)`` route changes are resolved to port
  numbers against the live wiring (the union of ports toward the named
  neighbors is the ECMP group; the empty via withdraws the route);
* swaps ride the hardware-timed
  :meth:`~repro.sim.switch.Switch.schedule_route_swap` path (one
  ``fib_generation`` bump per swap, no CPU wakeup jitter); the
  two-phase scaffolding ops (stage/stamp/cleanup) are modeled the same
  way — pre-programmed timed table operations;
* every applied command is logged (:class:`AppliedUpdate`), and
  attributable data-plane drops are captured via
  :attr:`~repro.sim.switch.Switch.drop_monitor`
  (:class:`DropRecord`) for the verifier's loop / black-hole verdicts.

An **empty schedule arms to a strict no-op** — no events, no monitors —
so the no-plan path stays golden-trace bit-identical.

Clock-error injection
---------------------
:func:`inject_clock_error` is the experiment-side knob: it steps each
switch clock by a content-keyed offset ``base(seed, name) * sigma_ns``.
Because the per-switch unit draw is keyed by *name* (never a shared
cursor) the injected error is identical however the simulation is
sharded, and because only ``sigma_ns`` scales between sweep levels, the
realized skew pattern grows monotonically with the level — which is
what makes "atomicity degrades monotonically with clock error" a
per-run property rather than an on-average one.  Pair it with
:func:`noiseless_ptp` so the PTP service neither adds its own error nor
resyncs the injected offsets away mid-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.sim.clock import PTPConfig
from repro.sim.engine import S
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.topology.graph import NodeKind
from repro.updates.plan import UpdateCommand, UpdateSchedule

__all__ = [
    "AppliedUpdate",
    "DropRecord",
    "UpdateDriver",
    "inject_clock_error",
    "noiseless_ptp",
]


@dataclass(frozen=True)
class AppliedUpdate:
    """One command's application, as it actually happened (true time)."""

    true_ns: int
    wall_ns: int
    device: str
    op: str
    wave: int
    generation: Optional[int] = None
    tag: Optional[str] = None


@dataclass(frozen=True)
class DropRecord:
    """One attributable data-plane drop seen while the driver is armed.

    ``kind`` is ``"ttl_expired"`` (the in-flight forwarding-loop
    signature) or ``"unroutable"`` (the black-hole signature).
    """

    time_ns: int
    device: str
    kind: str
    dst: str


def noiseless_ptp() -> PTPConfig:
    """A PTP configuration with zero drift and zero sync residual, and a
    sync interval far beyond any trial horizon.

    Update experiments build their networks with this and then inject
    *controlled* error via :func:`inject_clock_error`; the long interval
    keeps the PTP service from resyncing the injected offsets away."""
    return PTPConfig(sync_interval_ns=3600 * S, residual_sigma_ns=0,
                     residual_max_ns=0, tail_probability=0.0,
                     drift_ppb_min=0, drift_ppb_max=0)


def inject_clock_error(network: Network, sigma_ns: int, *,
                       seed: int = 0) -> dict[str, int]:
    """Step every switch clock by a content-keyed Gaussian offset.

    Each switch's unit draw comes from ``Random(f"{seed}/clkerr/{name}")``
    (clamped to ±2.5σ), scaled by ``sigma_ns`` — deterministic per
    switch name, independent of shard count, and linear in the sweep
    level.  Returns the per-switch offsets for reporting.  ``sigma_ns=0``
    leaves every clock untouched."""
    offsets: dict[str, int] = {}
    for name in sorted(network.switches):
        base = random.Random(f"{seed}/clkerr/{name}").gauss(0.0, 1.0)
        base = max(-2.5, min(2.5, base))
        offset = int(round(base * sigma_ns))
        if offset:
            network.ptp.clocks[name].step(offset)
        offsets[name] = offset
    return offsets


class UpdateDriver:
    """Binds a compiled schedule to a network and executes it."""

    def __init__(self, network: Network, schedule: UpdateSchedule,
                 *, monitor_drops: bool = True) -> None:
        self.network = network
        self.schedule = schedule
        self.monitor_drops = monitor_drops
        #: Commands applied so far, in application order (true time).
        self.applied: list[AppliedUpdate] = []
        #: Attributable drops observed while armed.
        self.drops: list[DropRecord] = []
        self.armed = False
        self._ports_toward_cache: dict[str, dict[str, list[int]]] = {}
        #: (device, tag) -> ports stamped, so cleanup clears exactly them.
        self._stamped: dict[tuple[str, str], list[int]] = {}

    # ------------------------------------------------------------------
    # Resolution against the live wiring
    # ------------------------------------------------------------------
    def _ports_toward(self, device: str) -> dict[str, list[int]]:
        cached = self._ports_toward_cache.get(device)
        if cached is not None:
            return cached
        switch = self.network.switch(device)
        toward: dict[str, list[int]] = {}
        for port in switch.connected_ports():
            peer, _kind = self.network.peer_of_port(device, port)
            toward.setdefault(peer, []).append(port)
        self._ports_toward_cache[device] = toward
        return toward

    def _host_ports(self, device: str) -> list[int]:
        switch = self.network.switch(device)
        return [port for port in switch.connected_ports()
                if self.network.peer_of_port(device, port)[1]
                is NodeKind.HOST]

    def _resolve(self, device: str,
                 changes: tuple) -> list[tuple[str, list[int]]]:
        toward = self._ports_toward(device)
        resolved: list[tuple[str, list[int]]] = []
        for dst, via in changes:
            if not via:
                resolved.append((dst, []))
                continue
            ports: list[int] = []
            for neighbor in via:
                if neighbor not in toward:
                    raise ValueError(
                        f"{device} has no link toward {neighbor!r} "
                        f"(neighbors: {sorted(toward)})")
                ports.extend(toward[neighbor])
            resolved.append((dst, sorted(ports)))
        return resolved

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> int:
        """Schedule every command; returns the number armed.

        An empty schedule is a **strict no-op**: nothing is scheduled
        and no drop monitor is installed, keeping the event stream
        byte-identical to an undriven network."""
        if self.armed:
            raise RuntimeError("driver already armed")
        self.armed = True
        commands = self.schedule.commands
        if not commands:
            return 0
        sim = self.network.sim
        clocks = self.network.ptp.clocks
        for cmd in commands:
            switch = self.network.switch(cmd.device)
            clock = clocks[cmd.device]
            true_ns = max(clock.true_time(cmd.at_ns), sim.now)
            if cmd.op == "swap":
                switch.schedule_route_swap(
                    true_ns, self._resolve(cmd.device, cmd.changes),
                    on_applied=self._swap_noter(cmd))
            elif cmd.op == "stage":
                sim.schedule_at(true_ns, self._do_stage, switch, cmd,
                                self._resolve(cmd.device, cmd.changes))
            elif cmd.op == "stamp":
                sim.schedule_at(true_ns, self._do_stamp, switch, cmd,
                                self._host_ports(cmd.device))
            elif cmd.op == "cleanup":
                sim.schedule_at(true_ns, self._do_cleanup, switch, cmd)
            else:
                raise ValueError(f"unknown update op {cmd.op!r}")
        if self.monitor_drops:
            for name in sorted(self.network.switches):
                self.network.switch(name).drop_monitor = self._on_drop
        return len(commands)

    # ------------------------------------------------------------------
    # Command execution (event-time callbacks)
    # ------------------------------------------------------------------
    def _note(self, cmd: UpdateCommand,
              generation: Optional[int] = None) -> None:
        self.applied.append(AppliedUpdate(
            true_ns=self.network.sim.now, wall_ns=cmd.at_ns,
            device=cmd.device, op=cmd.op, wave=cmd.wave,
            generation=generation, tag=cmd.tag))

    def _swap_noter(self, cmd: UpdateCommand):
        def note(generation: int, _true_ns: int) -> None:
            self._note(cmd, generation)

        return note

    def _do_stage(self, switch, cmd: UpdateCommand,
                  resolved: list[tuple[str, list[int]]]) -> None:
        switch.stage_routes(cmd.tag, resolved)
        self._note(cmd)

    def _do_stamp(self, switch, cmd: UpdateCommand,
                  ports: list[int]) -> None:
        for port in ports:
            switch.set_ingress_stamp(port, cmd.tag)
        self._stamped[(cmd.device, cmd.tag)] = list(ports)
        self._note(cmd)

    def _do_cleanup(self, switch, cmd: UpdateCommand) -> None:
        switch.clear_staged(cmd.tag)
        for port in self._stamped.pop((cmd.device, cmd.tag), ()):
            switch.set_ingress_stamp(port, None)
        self._note(cmd)

    def _on_drop(self, device: str, kind: str, packet: Packet,
                 time_ns: int) -> None:
        self.drops.append(DropRecord(time_ns=time_ns, device=device,
                                     kind=kind, dst=packet.dst))
