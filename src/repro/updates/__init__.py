"""Time-triggered coordinated updates, verified by synchronized snapshots.

The paper motivates snapshots with "is my network update consistent?"
(§8) but never builds the update side; Time4 and "The Case for Timing
in SDN" (Mizrahi & Moses) argue updates should fire at synchronized
instants.  This package owns both halves:

* :mod:`repro.updates.plan` — the declarative update-plan algebra
  (:class:`TimedSwap`, :class:`PhasedUpdate`,
  :class:`TwoPhaseVersioned`, composed with ``|``), sharing the
  spec contract of :class:`repro.faults.profile.FaultProfile`
  (``docs/SPECS.md``);
* :mod:`repro.updates.driver` — compiles a plan's schedule onto the
  event engine through each device's *local* clock, so real PTP error
  skews the rollout;
* :mod:`repro.updates.verify` — the snapshot verifier: atomicity score
  from ``fib_version`` cuts, loop detection from TTL-expiry spikes,
  black-hole attribution from unroutable drops.

See ``docs/UPDATES.md`` for the strategy table and verdict semantics,
and :mod:`repro.experiments.updates` for the strategy × clock-error ×
fault-profile sweep.
"""

from repro.updates.driver import (AppliedUpdate, DropRecord, UpdateDriver,
                                  inject_clock_error, noiseless_ptp)
from repro.updates.plan import (Compose, PhasedUpdate, TimedSwap,
                                TwoPhaseVersioned, UpdateCommand,
                                UpdateContext, UpdatePlan, UpdateSchedule,
                                UpdateWave)
from repro.updates.verify import UpdateVerifier, WaveVerdict

__all__ = [
    "AppliedUpdate",
    "Compose",
    "DropRecord",
    "PhasedUpdate",
    "TimedSwap",
    "TwoPhaseVersioned",
    "UpdateCommand",
    "UpdateContext",
    "UpdateDriver",
    "UpdatePlan",
    "UpdateSchedule",
    "UpdateVerifier",
    "UpdateWave",
    "WaveVerdict",
    "inject_clock_error",
    "noiseless_ptp",
]
