"""Snapshot-based verdicts on coordinated updates.

The verifier answers the §8 question — "is my network update
consistent?" — from synchronized snapshots instead of trust:

* **Atomicity** — one ``fib_version`` snapshot straddles each wave's
  generation-bumping instant (:attr:`UpdateWave.verdict_at_ns`); the
  verdict reads, per device, the *minimum* captured **ingress**
  ``last_matched_version`` register.  The atomicity score is the
  fraction of the wave's updated devices whose minimum is at least the
  expected generation in one causally consistent cut.

  Why a straddling snapshot can catch a skewed swap even though the
  snapshot rides the *same* local clocks (naively the errors cancel):
  snapshot IDs propagate in-band.  A fast-clocked neighbor enters the
  new epoch early and its tagged data packets pull a slow device's
  ingress units into the epoch **before that device's local swap** —
  so those registers are captured still holding the old generation.
  The cancellation breaks exactly where mixed forwarding state is
  observable, which is the point.

* **Transient loops** — with sender TTLs armed, a forwarding loop turns
  into ``ttl_expired`` drops; the verdict counts the drops inside each
  wave's command window (± a margin) and attributes them to the wave.

* **Black holes** — ``unroutable`` drops inside the window, attributed
  to devices whose wave includes a route withdrawal (a drain that beat
  its redirect is *attributed*; drops elsewhere are collateral).

A wave whose straddling snapshot is incomplete or inconsistent renders
an **inconclusive** verdict (``atomicity=None``) rather than a guess.
Conservation/`LinkAudit` cross-checks run on a separate
``packet_count``-metric pass (see :mod:`repro.experiments.updates`) —
gauge snapshots carry no conserved quantity to audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping
from typing import Optional

from repro.core.snapshot import GlobalSnapshot
from repro.sim.engine import MS
from repro.sim.switch import Direction
from repro.updates.driver import DropRecord
from repro.updates.plan import UpdateSchedule, UpdateWave

__all__ = ["UpdateVerifier", "WaveVerdict"]


@dataclass(frozen=True)
class WaveVerdict:
    """The snapshot verdict on one update wave."""

    wave: int
    strategy: str
    label: str
    #: Epoch of the straddling snapshot (None if never taken/usable).
    epoch: Optional[int]
    #: False when the straddling cut was unusable — atomicity is then
    #: None, never a guess.  Drop counts stay valid regardless.
    conclusive: bool
    atomicity: Optional[float]
    devices_on_new: int
    devices_total: int
    #: Updated devices whose captured minimum generation was old.
    stale_devices: tuple[str, ...]
    #: TTL-expiry drops inside the wave window (loop signature).
    loop_drops: int
    #: Unroutable drops inside the wave window (black-hole signature).
    blackhole_drops: int
    #: Devices where unroutable drops landed.
    blackhole_devices: tuple[str, ...]
    #: Black-hole drops at devices whose wave withdrew a route.
    attributed_blackholes: int


class UpdateVerifier:
    """Renders per-wave verdicts from snapshots plus the drop log."""

    def __init__(self, schedule: UpdateSchedule, *,
                 margin_ns: int = 1 * MS) -> None:
        if margin_ns < 0:
            raise ValueError(f"margin_ns must be >= 0, got {margin_ns}")
        self.schedule = schedule
        self.margin_ns = margin_ns

    # ------------------------------------------------------------------
    # What to snapshot
    # ------------------------------------------------------------------
    def snapshot_instants(self) -> dict[int, int]:
        """Wave index -> the wall instant its verdict snapshot must
        straddle (the wave's generation-bumping instant)."""
        return {w.index: w.verdict_at_ns for w in self.schedule.waves}

    # ------------------------------------------------------------------
    # Reading the cut
    # ------------------------------------------------------------------
    @staticmethod
    def device_generations(snapshot: GlobalSnapshot) -> dict[str, int]:
        """Per device, the minimum captured **ingress**
        ``last_matched_version`` register — the device's generation as
        witnessed by the cut.  Egress rows are excluded: forwarding
        decisions happen at ingress only, so the egress ``fib_version``
        rows are constant zero by construction."""
        gens: dict[str, int] = {}
        for unit, record in snapshot.records.items():
            if unit.direction is not Direction.INGRESS:
                continue
            current = gens.get(unit.device)
            if current is None or record.value < current:
                gens[unit.device] = record.value
        return gens

    def expected_generations(self, wave_index: int) -> dict[str, int]:
        """Per device, the generation it should be on once every swap
        up to and including ``wave_index`` has applied (seal baseline is
        generation 0; each swap bumps exactly once)."""
        counts: dict[str, int] = {}
        for cmd in self.schedule.commands:
            if cmd.op == "swap" and cmd.wave <= wave_index:
                counts[cmd.device] = counts.get(cmd.device, 0) + 1
        return counts

    def wave_devices(self, wave_index: int) -> tuple[str, ...]:
        """Devices updated (swapped) in one wave — the atomicity
        denominator; devices the wave never touches cannot witness it."""
        return tuple(sorted({c.device for c in
                             self.schedule.swap_commands(wave=wave_index)}))

    def _removal_devices(self, wave_index: int) -> set[str]:
        return {c.device for c in self.schedule.swap_commands(wave=wave_index)
                if any(not via for _dst, via in c.changes)}

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def verdict(self, wave: UpdateWave,
                snapshot: Optional[GlobalSnapshot],
                drops: Iterable[DropRecord]) -> WaveVerdict:
        epoch = snapshot.epoch if snapshot is not None else None
        usable = snapshot is not None and snapshot.usable
        gens = self.device_generations(snapshot) if usable else None
        return self.verdict_data(wave, gens, epoch, drops)

    def verdict_data(self, wave: UpdateWave,
                     gens: Optional[Mapping[str, int]],
                     epoch: Optional[int],
                     drops: Iterable[DropRecord]) -> WaveVerdict:
        """Render a verdict from pre-extracted per-device generations
        (``gens`` None = the straddling cut was unusable).  The sharded
        path ships these plain mappings across the worker pipe instead
        of whole :class:`GlobalSnapshot` objects."""
        start = wave.window_start_ns - self.margin_ns
        end = wave.window_end_ns + self.margin_ns
        loop_drops = 0
        blackhole_drops = 0
        blackhole_devices: set[str] = set()
        removal_devices = self._removal_devices(wave.index)
        attributed = 0
        for drop in drops:
            if not start <= drop.time_ns <= end:
                continue
            if drop.kind == "ttl_expired":
                loop_drops += 1
            elif drop.kind == "unroutable":
                blackhole_drops += 1
                blackhole_devices.add(drop.device)
                if drop.device in removal_devices:
                    attributed += 1
        devices = self.wave_devices(wave.index)
        if gens is None:
            return WaveVerdict(
                wave=wave.index, strategy=wave.strategy, label=wave.label,
                epoch=epoch, conclusive=False, atomicity=None,
                devices_on_new=0, devices_total=len(devices),
                stale_devices=(), loop_drops=loop_drops,
                blackhole_drops=blackhole_drops,
                blackhole_devices=tuple(sorted(blackhole_devices)),
                attributed_blackholes=attributed)
        expected = self.expected_generations(wave.index)
        witnessed = [d for d in devices if d in gens]
        stale = tuple(d for d in witnessed if gens[d] < expected.get(d, 0))
        on_new = len(witnessed) - len(stale)
        atomicity = (on_new / len(witnessed)) if witnessed else None
        return WaveVerdict(
            wave=wave.index, strategy=wave.strategy, label=wave.label,
            epoch=epoch, conclusive=bool(witnessed), atomicity=atomicity,
            devices_on_new=on_new, devices_total=len(witnessed),
            stale_devices=stale, loop_drops=loop_drops,
            blackhole_drops=blackhole_drops,
            blackhole_devices=tuple(sorted(blackhole_devices)),
            attributed_blackholes=attributed)

    def verdicts(self, snapshots_by_wave: Mapping[int, Optional[GlobalSnapshot]],
                 drops: Iterable[DropRecord]) -> list[WaveVerdict]:
        """One verdict per wave, in wave order.  ``snapshots_by_wave``
        maps wave index to its straddling snapshot (missing/None waves
        render inconclusive)."""
        drop_list = list(drops)
        return [self.verdict(wave, snapshots_by_wave.get(wave.index),
                             drop_list)
                for wave in self.schedule.waves]
