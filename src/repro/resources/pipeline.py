"""Structural inventory of the Speedlight P4 pipeline.

:mod:`repro.resources.model` reports the Table 1 totals; this module
records *where they come from*: the match-action tables each variant
compiles, with per-table resource annotations, laid out over physical
stages exactly as the logical pipelines of Figures 4 and 5 require
("the prototype utilizes 10 to 12 physical processing stages ... to
satisfy sequential dependencies in its control flow", §7.1).

The inventory is the source of truth for the *computational and
control-flow* rows of Table 1: summing the annotations reproduces the
published ALU/table/gateway/stage counts for every variant (pinned by
tests).  Memory sizing lives in :mod:`.model` (calibrated totals) with
:func:`register_arrays` here providing the raw register inventory that
explains the per-port growth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resources.model import Variant

#: Order of strictly-increasing capability, for inclusion filtering.
_VARIANT_LEVEL = {
    Variant.PACKET_COUNT: 0,
    Variant.WRAP_AROUND: 1,
    Variant.CHANNEL_STATE: 2,
}


@dataclass(frozen=True)
class PipelineTable:
    """One logical match-action table of the Speedlight program."""

    name: str
    plane: str           # "ingress" or "egress"
    stage: int           # physical stage the compiler placed it in
    table_ids: int       # logical table IDs consumed
    gateways: int        # conditional table gateways
    stateless_alus: int  # VLIW action-slot operations
    stateful_alus: int   # register-array operations
    #: Minimum variant that compiles this table in.
    min_variant: Variant = Variant.PACKET_COUNT

    def included_in(self, variant: Variant) -> bool:
        return _VARIANT_LEVEL[variant] >= _VARIANT_LEVEL[self.min_variant]


#: The full program: Figures 4 (ingress) and 5 (egress) as compiled
#: tables.  The base build is the Packet Count variant; wraparound adds
#: rollover-detection logic in the comparison stages; channel state adds
#: two more stages for the Last Seen array and in-flight crediting.
PIPELINE: list[PipelineTable] = [
    # ----- ingress (Figure 4) -----
    PipelineTable("parse_snapshot_header", "ingress", 0, 2, 1, 2, 0),
    PipelineTable("update_counter", "ingress", 1, 1, 0, 1, 1),
    PipelineTable("read_snapshot_id", "ingress", 1, 1, 0, 0, 1),
    PipelineTable("compare_packet_local_id", "ingress", 2, 3, 3, 2, 0),
    PipelineTable("rollover_detect", "ingress", 2, 2, 2, 1, 0,
                  Variant.WRAP_AROUND),
    PipelineTable("rollover_window", "ingress", 2, 2, 0, 0, 0,
                  Variant.WRAP_AROUND),
    PipelineTable("capture_snapshot_value", "ingress", 3, 2, 1, 1, 1),
    PipelineTable("update_snapshot_id", "ingress", 3, 1, 1, 1, 1),
    PipelineTable("clone_notify_cpu", "ingress", 4, 2, 1, 1, 1),
    PipelineTable("forward_initiation", "ingress", 4, 2, 1, 1, 0),
    # ----- egress (Figure 5) -----
    PipelineTable("check_header_present", "egress", 5, 2, 1, 1, 0),
    PipelineTable("update_counter", "egress", 6, 1, 0, 1, 1),
    PipelineTable("read_snapshot_id", "egress", 6, 1, 0, 0, 1),
    PipelineTable("compare_packet_local_id", "egress", 7, 3, 3, 2, 0),
    PipelineTable("rollover_detect", "egress", 7, 2, 2, 1, 0,
                  Variant.WRAP_AROUND),
    PipelineTable("rollover_window", "egress", 7, 2, 0, 0, 0,
                  Variant.WRAP_AROUND),
    PipelineTable("capture_snapshot_value", "egress", 8, 2, 1, 1, 1),
    PipelineTable("update_snapshot_id", "egress", 8, 1, 1, 1, 1),
    PipelineTable("remove_header_to_host", "egress", 9, 2, 1, 1, 0),
    PipelineTable("notify_cpu", "egress", 9, 1, 0, 1, 0),
    # ----- channel-state extension (two extra physical stages) -----
    PipelineTable("update_last_seen", "egress", 10, 1, 0, 2, 1,
                  Variant.CHANNEL_STATE),
    PipelineTable("credit_channel_state", "egress", 11, 1, 0, 3, 1,
                  Variant.CHANNEL_STATE),
]


def tables_for(variant: Variant) -> list[PipelineTable]:
    """The tables the given variant compiles, in stage order."""
    return sorted((t for t in PIPELINE if t.included_in(variant)),
                  key=lambda t: (t.stage, t.plane, t.name))


def totals_for(variant: Variant) -> dict[str, int]:
    """Aggregate computational/control-flow totals for a variant.

    These are exactly the top five rows of Table 1; tests pin them to
    the published numbers, so the inventory cannot silently drift from
    the report.
    """
    tables = tables_for(variant)
    return {
        "table_ids": sum(t.table_ids for t in tables),
        "gateways": sum(t.gateways for t in tables),
        "stateless_alus": sum(t.stateless_alus for t in tables),
        "stateful_alus": sum(t.stateful_alus for t in tables),
        "stages": len({t.stage for t in tables}),
    }


@dataclass(frozen=True)
class RegisterArray:
    """One stateful register array and its sizing rule."""

    name: str
    entry_bytes: int
    #: Entries as a function of (ports, slots): "per_unit" arrays hold
    #: one entry per processing unit (2x ports); "per_slot" hold one per
    #: unit per snapshot slot; "per_neighbor" one per egress unit per
    #: upstream neighbor (ports^2 scaling).
    scaling: str
    min_variant: Variant = Variant.PACKET_COUNT

    def included_in(self, variant: Variant) -> bool:
        return _VARIANT_LEVEL[variant] >= _VARIANT_LEVEL[self.min_variant]

    def entries(self, ports: int, slots: int) -> int:
        units = 2 * ports
        if self.scaling == "per_unit":
            return units
        if self.scaling == "per_slot":
            return units * slots
        if self.scaling == "per_neighbor":
            return ports * (ports + 1)  # egress units x (ingress ports + CPU)
        raise ValueError(f"unknown scaling {self.scaling!r}")

    def bytes_for(self, ports: int, slots: int) -> int:
        return self.entry_bytes * self.entries(ports, slots)


REGISTERS: list[RegisterArray] = [
    RegisterArray("target_counter", 8, "per_unit"),
    RegisterArray("snapshot_id", 2, "per_unit"),
    RegisterArray("snapshot_value", 4, "per_slot"),
    RegisterArray("capture_timestamp", 4, "per_unit"),
    RegisterArray("snapshot_channel_state", 4, "per_slot",
                  Variant.CHANNEL_STATE),
    RegisterArray("last_seen", 2, "per_neighbor", Variant.CHANNEL_STATE),
]


def register_bytes(variant: Variant, ports: int, slots: int = 256) -> int:
    """Total stateful-register footprint in bytes (the dominant per-port
    SRAM term; match-action entries add the fixed remainder accounted in
    the calibrated model)."""
    return sum(array.bytes_for(ports, slots) for array in REGISTERS
               if array.included_in(variant))
