"""Tofino resource model for the Speedlight data plane (Table 1).

The original Table 1 is a compiler report; this package reproduces it
with an analytical model of the P4 program's resource consumption,
calibrated against every number the paper publishes (three variants at
64 ports, plus the 14-port wraparound+channel-state configuration).
"""

from repro.resources.model import (
    Variant,
    ResourceReport,
    TofinoCapacity,
    estimate,
    TOFINO_1,
)
from repro.resources.pipeline import (
    PIPELINE,
    REGISTERS,
    PipelineTable,
    RegisterArray,
    register_bytes,
    tables_for,
    totals_for,
)

__all__ = [
    "Variant",
    "ResourceReport",
    "TofinoCapacity",
    "estimate",
    "TOFINO_1",
    "PIPELINE",
    "REGISTERS",
    "PipelineTable",
    "RegisterArray",
    "register_bytes",
    "tables_for",
    "totals_for",
]
