"""Analytical resource model of the Speedlight P4 data plane.

Structure of the model (mirroring how the program actually consumes
Tofino resources):

* **Computational and control-flow resources** (ALUs, logical table IDs,
  gateways, stages) depend only on the program *logic* — i.e. the
  variant — not on port count: adding ports grows register arrays, not
  match-action logic.  These are taken directly from Table 1.
* **Memory** grows with the number of ports, because "the data plane
  must allocate larger register arrays and tables to store and address
  the per-port statistics" (§7.1).  We model SRAM/TCAM as
  ``fixed + per_port × ports``.  For the wraparound+channel-state
  variant both coefficients are pinned by the two published data points
  (64 ports → 770 KB SRAM / 244 KB TCAM; 14 ports → 638 KB / 90 KB).
  For the other two variants only the 64-port point is published; the
  per-port slope is estimated from register sizing (value arrays of
  ``max_sid`` 32-bit slots per unit; no per-neighbor Last Seen array,
  which is what makes the channel-state slope much steeper) and the
  fixed part is back-computed so the 64-port total matches Table 1
  exactly.

Capacities in :data:`TOFINO_1` are public-knowledge approximations of a
first-generation Tofino pipe, included so that
:meth:`ResourceReport.utilization` can reproduce the paper's "less than
25% of any given type of dedicated resource" claim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Variant(enum.Enum):
    """The three data-plane builds of Table 1."""

    PACKET_COUNT = "packet_count"          # plain counters, no rollover
    WRAP_AROUND = "wrap_around"            # + snapshot-ID rollover support
    CHANNEL_STATE = "channel_state"        # + in-flight channel state

    @property
    def label(self) -> str:
        return {
            Variant.PACKET_COUNT: "Packet Count",
            Variant.WRAP_AROUND: "+ Wrap Around",
            Variant.CHANNEL_STATE: "+ Chnl. State",
        }[self]


@dataclass(frozen=True)
class _VariantModel:
    stateless_alus: int
    stateful_alus: int
    table_ids: int
    gateways: int
    stages: int
    sram_per_port_kb: float
    sram_fixed_kb: float
    tcam_per_port_kb: float
    tcam_fixed_kb: float


def _fit_fixed(total_at_64: float, per_port: float) -> float:
    """Back-compute the fixed memory so the 64-port total is exact."""
    return total_at_64 - 64 * per_port


# Channel-state slopes are exact fits of the two published points:
#   SRAM: (770 - 638) / (64 - 14) = 2.64 KB/port
#   TCAM: (244 -  90) / (64 - 14) = 3.08 KB/port
_CS_SRAM_SLOPE = (770.0 - 638.0) / (64 - 14)
_CS_TCAM_SLOPE = (244.0 - 90.0) / (64 - 14)

# Non-channel-state slopes, estimated from register sizing: per port, the
# program keeps two units x (snapshot value array of 256 x 32-bit slots +
# id/counter registers + notification mirror entries) ≈ 2 KB of SRAM; the
# wraparound build widens comparisons slightly.  TCAM holds per-port
# classification entries only.
_PC_SRAM_SLOPE = 2.0
_WA_SRAM_SLOPE = 2.2
_PC_TCAM_SLOPE = 0.40
_WA_TCAM_SLOPE = 0.55

_MODELS: dict[Variant, _VariantModel] = {
    Variant.PACKET_COUNT: _VariantModel(
        stateless_alus=17, stateful_alus=9, table_ids=27, gateways=15,
        stages=10,
        sram_per_port_kb=_PC_SRAM_SLOPE,
        sram_fixed_kb=_fit_fixed(606.0, _PC_SRAM_SLOPE),
        tcam_per_port_kb=_PC_TCAM_SLOPE,
        tcam_fixed_kb=_fit_fixed(42.0, _PC_TCAM_SLOPE)),
    Variant.WRAP_AROUND: _VariantModel(
        stateless_alus=19, stateful_alus=9, table_ids=35, gateways=19,
        stages=10,
        sram_per_port_kb=_WA_SRAM_SLOPE,
        sram_fixed_kb=_fit_fixed(671.0, _WA_SRAM_SLOPE),
        tcam_per_port_kb=_WA_TCAM_SLOPE,
        tcam_fixed_kb=_fit_fixed(59.0, _WA_TCAM_SLOPE)),
    Variant.CHANNEL_STATE: _VariantModel(
        stateless_alus=24, stateful_alus=11, table_ids=37, gateways=19,
        stages=12,
        sram_per_port_kb=_CS_SRAM_SLOPE,
        sram_fixed_kb=_fit_fixed(770.0, _CS_SRAM_SLOPE),
        tcam_per_port_kb=_CS_TCAM_SLOPE,
        tcam_fixed_kb=_fit_fixed(244.0, _CS_TCAM_SLOPE)),
}


@dataclass(frozen=True)
class TofinoCapacity:
    """Approximate per-pipe resource capacities of a Tofino-1 ASIC.

    Public approximations (Bosshart et al. RMT numbers and vendor
    disclosures); used only for utilization fractions.
    """

    stateless_alus: int = 120     # ~10 VLIW action slots per stage
    stateful_alus: int = 48       # 4 stateful ALUs per stage
    table_ids: int = 192          # 16 logical IDs per stage
    gateways: int = 192
    stages: int = 12
    sram_kb: int = 9_600          # 80 blocks x 10 x 128 Kb per stage
    tcam_kb: int = 2_880          # 24 blocks x 44 x 512 b per stage


TOFINO_1 = TofinoCapacity()


@dataclass(frozen=True)
class ResourceReport:
    """Resource usage of one Speedlight build (one Table 1 column)."""

    variant: Variant
    ports: int
    stateless_alus: int
    stateful_alus: int
    table_ids: int
    gateways: int
    stages: int
    sram_kb: float
    tcam_kb: float

    def utilization(self, capacity: TofinoCapacity = TOFINO_1) -> dict[str, float]:
        """Fraction of each dedicated resource consumed."""
        return {
            "stateless_alus": self.stateless_alus / capacity.stateless_alus,
            "stateful_alus": self.stateful_alus / capacity.stateful_alus,
            "table_ids": self.table_ids / capacity.table_ids,
            "gateways": self.gateways / capacity.gateways,
            "sram": self.sram_kb / capacity.sram_kb,
            "tcam": self.tcam_kb / capacity.tcam_kb,
        }

    def fits(self, capacity: TofinoCapacity = TOFINO_1,
             budget: float = 1.0) -> bool:
        """Does the build fit within ``budget`` of every dedicated
        resource (and the stage count)?"""
        if self.stages > capacity.stages:
            return False
        return all(u <= budget for u in self.utilization(capacity).values())


def estimate(variant: Variant, ports: int = 64) -> ResourceReport:
    """Resource usage of ``variant`` configured for ``ports``-port
    snapshots (64 is the per-pipe maximum on the Wedge100BF, §7.1)."""
    if not 1 <= ports <= 64:
        raise ValueError("a single Tofino processing engine supports "
                         f"1..64 ports, got {ports}")
    m = _MODELS[variant]
    return ResourceReport(
        variant=variant, ports=ports,
        stateless_alus=m.stateless_alus, stateful_alus=m.stateful_alus,
        table_ids=m.table_ids, gateways=m.gateways, stages=m.stages,
        sram_kb=round(m.sram_fixed_kb + m.sram_per_port_kb * ports, 1),
        tcam_kb=round(m.tcam_fixed_kb + m.tcam_per_port_kb * ports, 1))
