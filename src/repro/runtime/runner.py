"""Batch trial execution: serial, process-parallel, and cached.

:class:`TrialRunner` takes a batch of :class:`TrialSpec` and returns
one :class:`TrialResult` per spec, in order.  Because trial functions
are pure functions of their spec, fan-out across a
``ProcessPoolExecutor`` is observationally identical to serial
execution — the determinism tests assert byte-identical result JSON for
``jobs=1`` vs ``jobs=4``.

With a :class:`~repro.runtime.cache.TrialCache` attached, previously
computed trials are served from disk and only misses execute, so
re-running a full experiment suite after a parameter tweak recomputes
exactly the changed trials.
"""

from __future__ import annotations

import os
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Optional

from repro.runtime import registry
from repro.runtime.cache import TrialCache
from repro.runtime.result import TrialResult
from repro.runtime.spec import TrialSpec


def execute_spec(spec: TrialSpec) -> TrialResult:
    """Run one spec to completion in the current process.

    Module-level so worker processes can unpickle a reference to it;
    the spec itself is the only payload that crosses the pipe.
    """
    result = registry.resolve(spec.kind)(spec)
    if result.fingerprint != spec.fingerprint():
        raise RuntimeError(
            f"trial function for kind {spec.kind!r} returned a result for "
            f"a different spec ({result.fingerprint[:12]} != "
            f"{spec.fingerprint()[:12]}); build results with make_result(spec, ...)")
    return result


@dataclass
class BatchStats:
    """Execution accounting for one ``run_batch`` call."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    elapsed_s: float = 0.0
    #: Wall-clock seconds per executed trial, keyed by ``spec.describe()``
    #: (cached hits are absent — they cost no simulation time).  Timing
    #: lives here, never inside :class:`TrialResult`, so result JSON
    #: stays byte-identical across machines and runs.
    trial_seconds: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (f"{self.total} trials: {self.executed} executed, "
                f"{self.cached} from cache in {self.elapsed_s:.1f}s")


def _execute_timed(spec: TrialSpec) -> "tuple[TrialResult, float]":
    """Worker-side wrapper that reports wall-clock alongside the result."""
    started = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - started


def _profile_path(profile_dir: str, spec: TrialSpec) -> str:
    name = spec.label or f"{spec.kind}-{spec.fingerprint()[:12]}"
    return os.path.join(profile_dir, re.sub(r"[^A-Za-z0-9._-]+", "_", name)
                        + ".prof")


class TrialRunner:
    """Executes spec batches with optional fan-out and caching.

    ``jobs`` is the worker process count; 1 means run in-process (no
    pool, easiest to debug).  ``cache=None`` disables caching entirely.
    ``profile_dir`` dumps one cProfile stats file per executed trial
    into that directory (forces serial execution so profiles are not
    polluted by pool plumbing, and bypasses the cache so every trial
    actually runs).
    """

    def __init__(self, jobs: int = 1, cache: Optional[TrialCache] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 profile_dir: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.profile_dir = profile_dir
        self.last_stats = BatchStats()

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run_batch(self, specs: Sequence[TrialSpec]) -> list[TrialResult]:
        """Execute ``specs``, returning results in spec order."""
        started = time.monotonic()
        results: list[Optional[TrialResult]] = [None] * len(specs)
        misses: list[int] = []
        for index, spec in enumerate(specs):
            hit = (self.cache.get(spec.fingerprint())
                   if self.cache is not None and self.profile_dir is None
                   else None)
            if hit is not None:
                results[index] = hit
            else:
                misses.append(index)
        stats = BatchStats(total=len(specs), cached=len(specs) - len(misses))

        if misses:
            miss_specs = [specs[i] for i in misses]
            if self.profile_dir is not None:
                executed = self._run_profiled(miss_specs, stats)
            elif self.jobs == 1 or len(misses) == 1:
                executed = []
                for spec in miss_specs:
                    self._note(f"running {spec.describe()}")
                    result, seconds = _execute_timed(spec)
                    stats.trial_seconds[spec.describe()] = seconds
                    executed.append(result)
            else:
                self._note(f"running {len(miss_specs)} trials across "
                           f"{min(self.jobs, len(miss_specs))} workers")
                with ProcessPoolExecutor(
                        max_workers=min(self.jobs, len(misses))) as pool:
                    executed = []
                    for spec, (result, seconds) in zip(
                            miss_specs, pool.map(_execute_timed, miss_specs)):
                        stats.trial_seconds[spec.describe()] = seconds
                        executed.append(result)
            for index, result in zip(misses, executed):
                results[index] = result
                if self.cache is not None:
                    self.cache.put(result)
            stats.executed = len(misses)

        stats.elapsed_s = time.monotonic() - started
        self.last_stats = stats
        return [r for r in results if r is not None]

    def _run_profiled(self, miss_specs: Sequence[TrialSpec],
                      stats: BatchStats) -> list[TrialResult]:
        """Serial execution with one cProfile dump per trial."""
        from repro.perf.profiles import profile_call

        os.makedirs(self.profile_dir, exist_ok=True)
        executed = []
        for spec in miss_specs:
            out = _profile_path(self.profile_dir, spec)
            self._note(f"profiling {spec.describe()} -> {out}")
            started = time.perf_counter()
            executed.append(profile_call(execute_spec, spec, out=out))
            stats.trial_seconds[spec.describe()] = (time.perf_counter()
                                                    - started)
        return executed

    def run(self, spec: TrialSpec) -> TrialResult:
        return self.run_batch([spec])[0]
