"""Declarative trial runtime.

The experiment stack is a batch system: every figure/table decomposes
into independent :class:`TrialSpec` units, a registry maps spec kinds
to pure trial functions, and a :class:`TrialRunner` executes batches
serially or across worker processes with an on-disk result cache.

See DESIGN.md ("Trial runtime") for the architecture and
docs/API.md for usage.
"""

from repro.runtime.cache import DEFAULT_CACHE_DIR, TrialCache, code_version
from repro.runtime.registry import registered_kinds, resolve, trial
from repro.runtime.result import TrialResult, make_result
from repro.runtime.runner import BatchStats, TrialRunner, execute_spec
from repro.runtime.spec import (TrialSpec, canonical, canonical_json,
                                derive_seed, spec_batch)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "BatchStats",
    "TrialCache",
    "TrialResult",
    "TrialRunner",
    "TrialSpec",
    "canonical",
    "canonical_json",
    "code_version",
    "derive_seed",
    "execute_spec",
    "make_result",
    "registered_kinds",
    "resolve",
    "spec_batch",
    "trial",
]
