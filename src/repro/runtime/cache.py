"""On-disk trial result cache.

Results are keyed by ``(spec fingerprint, code version)``: the
fingerprint pins the trial inputs, the code version pins the simulator
that produced them.  The code version is a content hash of every
``repro`` source file, so *any* source edit invalidates the whole cache
— conservative, but it can never serve a stale result, and a full
re-run is exactly what the parallel runner makes cheap.

One JSON file per spec (named by fingerprint).  A version mismatch is a
miss and the file is overwritten on the next store, so the cache does
not grow across code edits.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.runtime.result import TrialResult

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Content hash of the installed ``repro`` package sources.

    Computed once per process (the package is ~60 small files).
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


class TrialCache:
    """A directory of ``<fingerprint>.json`` result files."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else code_version()

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[TrialResult]:
        """The cached result for ``fingerprint``, or None on a miss
        (absent, unreadable, or produced by different code)."""
        path = self._path(fingerprint)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if doc.get("code_version") != self.version:
            return None
        try:
            return TrialResult.from_json(json.dumps(doc["result"]))
        except (KeyError, TypeError):
            return None

    def put(self, result: TrialResult) -> None:
        """Store ``result`` atomically (write-temp + rename), so a
        killed run never leaves a truncated entry behind."""
        doc = {"code_version": self.version,
               "result": json.loads(result.to_json())}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle)
            os.replace(tmp, self._path(result.fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
