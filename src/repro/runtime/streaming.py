"""Long-running service driver: sustained workload, continuous epochs.

Batch trials run a fixed horizon and collect results at the end; the
snapshot service runs open-ended.  :class:`ServiceRun` wires a
testbed (leaf-spine + memcache incast by default), a Speedlight
deployment, and the :mod:`repro.service` pipeline, then steps the
simulation in bounded chunks until a target number of epochs has been
*stored* — measuring wall-clock epochs/s along the way, which is why
this driver lives in the runtime scope (the service modules themselves
never read a wall clock).

Not exported from ``repro.runtime``'s package root: importing it pulls
in the service and deployment layers, which the lightweight spec/runner
machinery must not depend on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.invariants import LinkAudit
from repro.core.aggregation import AggregationConfig
from repro.core.builder import deploy
from repro.service.pipeline import (ContinuousCampaign, PipelineConfig,
                                    SnapshotPipeline)
from repro.service.query import FlowResolver, QueryEngine
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.topology.builders import leaf_spine
from repro.workloads.memcache import MemcacheConfig, MemcacheWorkload


@dataclass
class ServiceSpec:
    """Everything needed to stand up one service run."""

    seed: int = 42
    #: Testbed shape (leaf-spine).
    num_leaves: int = 2
    num_spines: int = 1
    hosts_per_leaf: int = 2
    #: Snapshot cadence.
    interval_ns: int = 2 * MS
    metric: str = "packet_count"
    agg_degree: Optional[int] = None
    #: Memcache incast request cadence (0 disables the workload).
    mean_request_gap_ns: int = 400 * US
    #: Record data-plane traces (per-flow conservation ground truth;
    #: memory grows with the horizon, so only for short verified runs).
    enable_tracing: bool = False
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    #: Simulation-time chunk per stepping iteration.
    chunk_ns: int = 50 * MS


@dataclass
class ServiceReport:
    """Outcome of :meth:`ServiceRun.run`."""

    epochs_stored: int
    ticks: int
    sim_time_ns: int
    wall_seconds: float
    events: int
    stats: dict[str, int]

    @property
    def epochs_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.epochs_stored / self.wall_seconds

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds


class ServiceRun:
    """A wired, steppable snapshot service instance."""

    def __init__(self, spec: Optional[ServiceSpec] = None, **kwargs) -> None:
        if spec is None:
            spec = ServiceSpec(**kwargs)
        elif kwargs:
            raise ValueError("pass spec or kwargs, not both")
        self.spec = spec
        topo = leaf_spine(num_leaves=spec.num_leaves,
                          num_spines=spec.num_spines,
                          hosts_per_leaf=spec.hosts_per_leaf)
        self.network = Network(topo, NetworkConfig(
            seed=spec.seed, enable_tracing=spec.enable_tracing))
        self.sim = self.network.sim
        aggregation = (None if spec.agg_degree is None
                       else AggregationConfig(degree=spec.agg_degree))
        self.deployment = deploy(self.network, metric=spec.metric,
                                 aggregation=aggregation)
        self.workload: Optional[MemcacheWorkload] = None
        if spec.mean_request_gap_ns > 0:
            self.workload = MemcacheWorkload(self.network, MemcacheConfig(
                seed=spec.seed, stop_ns=2**62,
                mean_request_gap_ns=spec.mean_request_gap_ns))
        self.pipeline = SnapshotPipeline(self.sim, self.deployment.observer,
                                         config=spec.pipeline)
        self.campaign = ContinuousCampaign(self.sim,
                                           self.deployment.observer,
                                           spec.interval_ns)
        self._started = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_engine(self) -> QueryEngine:
        resolver: Optional[FlowResolver] = None
        if self.spec.metric == "heavy_hitter":
            resolver = self._resolve_heavy_flows
        return QueryEngine(self.pipeline.store,
                           link_audit=LinkAudit(self.network),
                           flow_resolver=resolver)

    def _resolve_heavy_flows(self, device: str) -> list[tuple[str, str, int]]:
        switch = self.network.switches.get(device)
        if switch is None:
            return []
        out: list[tuple[str, str, int]] = []
        for unit in switch.snapshot_units():
            counter = unit.counters.get(self.spec.metric)
            flow, estimate = counter.top()
            if flow is not None and estimate > 0:
                out.append((str(unit.unit_id),
                            f"{flow.src}->{flow.dst}:{flow.dport}",
                            estimate))
        return out

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, epochs: int,
            on_chunk: Optional[Callable[["ServiceRun"], None]] = None,
            max_wall_seconds: Optional[float] = None) -> ServiceReport:
        """Step the simulation until ``epochs`` documents are stored.

        ``on_chunk`` runs after every simulation chunk (progress
        reporting, mid-run sampling); ``max_wall_seconds`` is a safety
        valve for interactive use, not a soft target.
        """
        if epochs < 1:
            raise ValueError("epochs must be positive")
        if self.workload is not None:
            self.workload.start()
        if not self._started:
            self.campaign.start()
            self._started = True
        started = time.perf_counter()
        start_events = self.sim.events_run
        while self.pipeline.ingested < epochs:
            self.sim.run(until=self.sim.now + self.spec.chunk_ns)
            if on_chunk is not None:
                on_chunk(self)
            if (max_wall_seconds is not None
                    and time.perf_counter() - started > max_wall_seconds):
                break
        self.campaign.stop()
        # Drain: let in-flight snapshots resolve and the ingest queue
        # empty so the report matches what queries will see.
        deadline = self.sim.now + 10 * self.spec.chunk_ns
        while self.pipeline.backlog and self.sim.now < deadline:
            self.sim.run(until=self.sim.now + self.spec.chunk_ns)
        wall = time.perf_counter() - started
        return ServiceReport(
            epochs_stored=self.pipeline.ingested,
            ticks=self.campaign.ticks,
            sim_time_ns=self.sim.now,
            wall_seconds=wall,
            events=self.sim.events_run - start_events,
            stats=self.pipeline.stats())
