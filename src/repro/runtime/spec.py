"""Declarative trial specifications.

A :class:`TrialSpec` is the unit of work of the experiment runtime: a
picklable, JSON-canonical description of one simulation trial (topology
+ workload + deployment + campaign parameters + seed).  Experiments
decompose their series/sweep points into specs; the
:class:`~repro.runtime.runner.TrialRunner` executes batches of them
serially or across worker processes.

Two properties matter:

* **Purity** — a spec must contain *everything* the trial function
  needs.  Trial functions receive only the spec, so serial and parallel
  execution (and cached replay) are indistinguishable.
* **Stable identity** — :meth:`TrialSpec.fingerprint` hashes the
  canonical JSON encoding of ``(kind, params, seed)``.  The fingerprint
  keys the on-disk result cache and is independent of dict insertion
  order, process, and platform.
"""

from __future__ import annotations

import hashlib
import json
import numbers
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any


def canonical(obj: Any) -> Any:
    """Normalise ``obj`` into plain JSON types (dict/list/str/int/float/
    bool/None) with deterministic structure.

    Tuples become lists; numpy scalars collapse to int/float; dict keys
    must be strings.  Raises ``TypeError`` for anything that would not
    survive a JSON round trip (sets, arbitrary objects), because a spec
    that cannot round-trip cannot be cached or shipped to a worker.
    """
    if obj is None or isinstance(obj, (str, bool)):
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    if isinstance(obj, Mapping):
        out: dict[str, Any] = {}
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(f"spec dict keys must be str, got {key!r}")
            out[key] = canonical(obj[key])
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    raise TypeError(f"not JSON-serializable for a trial spec: {obj!r} "
                    f"({type(obj).__name__})")


def canonical_json(obj: Any) -> str:
    """Compact JSON with sorted keys — the byte-stable encoding used for
    fingerprints, seeds, and result files."""
    return json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def derive_seed(base: int, *parts: Any) -> int:
    """Derive a per-trial seed deterministically from a base seed and
    any JSON-able discriminators (series name, sweep point, index).

    Stable across processes and Python versions (sha256, not ``hash``),
    so a batch produces identical randomness whether it runs serially,
    fanned out, or resumed from cache.
    """
    digest = hashlib.sha256(
        canonical_json([base, list(parts)]).encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True, eq=False)
class TrialSpec:
    """One unit of experiment work.

    ``kind`` selects the registered trial function
    (:mod:`repro.runtime.registry`); ``params`` carries every
    trial-relevant knob as plain JSON types; ``seed`` is the base RNG
    seed; ``label`` is a human-readable tag for progress output and is
    deliberately excluded from the fingerprint.
    """

    kind: str
    params: Mapping[str, Any]
    seed: int = 0
    label: str = ""
    #: Space-parallel simulation shards (repro.sim.shard).  1 — the
    #: default — is the plain single-process path.
    shards: int = 1
    #: Aggregation-tree fan-out (repro.core.aggregation).  ``None`` —
    #: the default — is the flat unicast notification path; ``0`` is the
    #: flat-*modeled* observer intake; ``>= 1`` enables the tree.
    agg_degree: int | None = None

    def __post_init__(self) -> None:
        # Normalise eagerly so a malformed spec fails at construction,
        # near the code that built it, not inside a worker process.
        object.__setattr__(self, "params", canonical(self.params))
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.agg_degree is not None and self.agg_degree < 0:
            raise ValueError(
                f"agg_degree must be >= 0, got {self.agg_degree}")

    def fingerprint(self) -> str:
        """Stable content hash of ``(kind, params, seed)`` — plus
        ``shards`` when sharded and ``agg_degree`` when aggregation is
        configured.  ``shards=1`` / ``agg_degree=None`` are deliberately
        absent from the payload so every pre-existing fingerprint (and
        cached result) stays valid."""
        payload_dict: dict[str, Any] = {
            "kind": self.kind, "params": self.params, "seed": self.seed}
        if self.shards != 1:
            payload_dict["shards"] = self.shards
        if self.agg_degree is not None:
            payload_dict["agg_degree"] = self.agg_degree
        payload = canonical_json(payload_dict)
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        return self.label or f"{self.kind}[{self.fingerprint()[:8]}]"


def spec_batch(kind: str, param_sets: list[Mapping[str, Any]], *,
               seed: int, label_key: str = "") -> list[TrialSpec]:
    """Convenience constructor for sweep-shaped batches: one spec per
    parameter set, labelled by ``label_key`` when given."""
    out: list[TrialSpec] = []
    for params in param_sets:
        label = f"{kind}/{params[label_key]}" if label_key else ""
        out.append(TrialSpec(kind=kind, params=params, seed=seed,
                             label=label))
    return out
