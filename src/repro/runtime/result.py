"""JSON-serializable trial results.

A :class:`TrialResult` is the complete output of one trial: the spec
identity (kind, params, seed, fingerprint) plus a ``data`` payload of
plain JSON types.  Experiments assemble their figure/table results from
batches of these rows, which is what makes results cacheable and
transportable across process boundaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any, TYPE_CHECKING

from repro.runtime.spec import canonical, canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.spec import TrialSpec


@dataclass
class TrialResult:
    """One trial's output row.

    ``to_json`` is byte-stable: the same spec executed anywhere (serial,
    parallel, from cache) serialises to the identical string, which the
    determinism tests assert directly.
    """

    kind: str
    fingerprint: str
    seed: int
    label: str
    params: Mapping[str, Any]
    data: Mapping[str, Any]

    def to_json(self) -> str:
        return canonical_json({
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "label": self.label,
            "params": self.params,
            "data": self.data,
        })

    @classmethod
    def from_json(cls, text: str) -> "TrialResult":
        doc = json.loads(text)
        return cls(kind=doc["kind"], fingerprint=doc["fingerprint"],
                   seed=doc["seed"], label=doc.get("label", ""),
                   params=doc["params"], data=doc["data"])


def make_result(spec: "TrialSpec", data: Mapping[str, Any]) -> TrialResult:
    """Wrap a trial function's payload into a result row tied to its
    spec.  ``data`` is canonicalised (numpy scalars to int/float, tuples
    to lists) so the row always survives a JSON round trip."""
    return TrialResult(kind=spec.kind, fingerprint=spec.fingerprint(),
                       seed=spec.seed, label=spec.label,
                       params=spec.params, data=canonical(data))
