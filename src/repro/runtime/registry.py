"""Registry mapping spec kinds to trial functions.

A *trial function* is a pure function ``fn(spec: TrialSpec) ->
TrialResult``: it builds its own network/workload/deployment from the
spec alone and returns a JSON-able result row.  Experiment modules
register theirs at import time with the :func:`trial` decorator::

    @trial("fig9")
    def run_trial(spec: TrialSpec) -> TrialResult:
        ...

Worker processes resolve kinds through :func:`resolve`, which lazily
imports the experiment modules, so a freshly spawned interpreter can
execute any spec that the parent enqueued.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable

from repro.runtime.result import TrialResult
from repro.runtime.spec import TrialSpec

TrialFn = Callable[[TrialSpec], TrialResult]

_REGISTRY: dict[str, TrialFn] = {}

#: Modules that register trial kinds as an import side effect.  Kept as
#: import paths (not imports) so ``repro.runtime`` stays import-light
#: and cycle-free; workers import on first resolve.
_TRIAL_MODULES = (
    "repro.experiments.motivation",
    "repro.experiments.table1",
    "repro.experiments.fig9",
    "repro.experiments.fig10",
    "repro.experiments.fig11",
    "repro.experiments.fig12",
    "repro.experiments.fig13",
    "repro.experiments.ablations",
    "repro.experiments.sweeps",
    "repro.experiments.scaling",
    "repro.experiments.faults",
)


def trial(kind: str) -> Callable[[TrialFn], TrialFn]:
    """Register ``fn`` as the executor for specs of ``kind``."""
    def decorate(fn: TrialFn) -> TrialFn:
        existing = _REGISTRY.get(kind)
        if existing is not None and existing is not fn:
            raise ValueError(f"trial kind {kind!r} already registered "
                             f"by {existing.__module__}.{existing.__name__}")
        _REGISTRY[kind] = fn
        return fn
    return decorate


def resolve(kind: str) -> TrialFn:
    """Look up the trial function for ``kind``, importing the standard
    experiment modules on a miss (fresh worker processes start empty)."""
    fn = _REGISTRY.get(kind)
    if fn is None:
        for module in _TRIAL_MODULES:
            importlib.import_module(module)
        fn = _REGISTRY.get(kind)
    if fn is None:
        raise KeyError(f"no trial function registered for kind {kind!r}; "
                       f"known kinds: {sorted(_REGISTRY)}")
    return fn


def registered_kinds() -> list[str]:
    return sorted(_REGISTRY)
