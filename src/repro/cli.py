"""Command-line interface: ``python -m repro <command>``.

Commands:

``experiments [--list] [--only a,b] [--quick] [--jobs N] [--no-cache]``
    Run the full experiment suite through the shared trial runner —
    every experiment's trial specs are submitted as **one** batch, so
    ``--jobs 4`` parallelises across experiments, not just within one.
    ``--list`` prints the available experiments instead of running.
``run <name> [--quick] [--jobs N] [--no-cache] [--cache-dir DIR]``
    Run one experiment (``table1``, ``fig9`` … ``fig13``,
    ``ablation-ideal``, ``sweep-ptp``, ``faults``, ``recovery``,
    ``scaling`` …) and print its report.  The fault-aware experiments
    accept ``--fault-profile <json|file>`` with a serialized
    :class:`~repro.faults.FaultProfile` (see docs/FAULTS.md; the flag is
    not called ``--profile`` because that already selects cProfile
    output).  ``updates`` additionally accepts ``--update-plan
    <json|file>`` with a serialized :class:`~repro.updates.UpdatePlan`
    (docs/UPDATES.md).  ``--shards N`` partitions each trial's network
    across N worker processes for experiments that support
    space-parallel simulation (docs/SHARDING.md; currently ``scaling``,
    ``recovery`` and ``updates``).  ``--agg-degree D`` routes snapshot
    records through
    the hierarchical aggregation fabric for experiments that support it
    (docs/AGGREGATION.md; currently ``scaling``).
``metrics``
    List the snapshot-capable metrics and whether they support channel
    state.
``statics [paths] [--json] [--sarif F] [--rules A,B] [--flow] [...]``
    Run the determinism & simulation-invariant static analysis pass
    (docs/DETERMINISM.md) over ``src tests`` or the given paths; exits
    non-zero on findings.  CI gates on ``repro statics src tests``.
    ``--profile external`` audits out-of-tree simulation models with
    the repo-convention rules (DET002, TRIAL001) dropped.  ``--flow``
    links the paths into one program and runs the whole-program
    families (cross-actor races, mailbox dead letters, ordering and
    float taint feeding cross-boundary sends).
``serve [--epochs N] [--interval-us U] [--conservation] [...]``
    Snapshot-as-a-service (docs/SERVICE.md): run a continuous epoch
    pipeline under the sustained memcache incast workload — bounded
    delta store, coalescing backpressure — then answer epoch-range,
    conservation, and heavy-hitter queries from the stored history.
    ``--fault-smoke`` runs the chaos-smoke crash scenario instead.
``demo``
    A 30-second tour: build the testbed, take snapshots, print results.

Caching: results are keyed by (spec fingerprint, code version) under
``--cache-dir`` (default ``.repro-cache``), so a re-run recomputes only
trials whose spec or code changed.  ``--no-cache`` disables reads and
writes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.deployment import GAUGE_METRICS


def _make_runner(args: argparse.Namespace):
    """Build the TrialRunner the flags describe (progress on stderr)."""
    from repro.runtime import TrialCache, TrialRunner

    if args.no_cache:
        cache = None
    else:
        try:
            cache = TrialCache(args.cache_dir)
        except OSError as exc:
            print(f"cannot use cache dir {args.cache_dir!r}: {exc}",
                  file=sys.stderr)
            raise SystemExit(2) from exc
    if args.profile and args.jobs > 1:
        print("[--profile forces serial execution; ignoring --jobs]",
              file=sys.stderr)
    return TrialRunner(jobs=args.jobs, cache=cache,
                       profile_dir=args.profile,
                       progress=lambda msg: print(f"  [{msg}]",
                                                  file=sys.stderr))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    from repro.runtime import DEFAULT_CACHE_DIR

    parser.add_argument("--quick", action="store_true",
                        help="reduced configuration (CI-sized)")
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"result cache root (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--profile", metavar="DIR", default=None,
                        help="dump one cProfile .prof file per trial into "
                             "DIR (forces serial, bypasses the cache; "
                             "inspect with python -m repro.perf.profiles)")
    # Named --fault-profile (not --profile, which already means cProfile
    # output above) — see docs/FAULTS.md.
    parser.add_argument("--fault-profile", metavar="JSON|FILE", default=None,
                        help="serialized FaultProfile (inline JSON or a "
                             "path to a .json file) applied to the "
                             "fault-aware experiments: faults and scaling "
                             "run it as their scenario, recovery sweeps "
                             "its policies against it")
    parser.add_argument("--update-plan", metavar="JSON|FILE", default=None,
                        help="serialized UpdatePlan (inline JSON or a path "
                             "to a .json file) swapped in as the updates "
                             "experiment's scenario and swept over its "
                             "clock-error levels — see docs/UPDATES.md")
    parser.add_argument("--shards", type=_positive_int, default=None,
                        metavar="N",
                        help="space-parallel simulation shards for the "
                             "experiments that support them (currently "
                             "scaling, recovery and updates); each trial "
                             "partitions its network across N worker "
                             "processes — see docs/SHARDING.md")
    parser.add_argument("--agg-degree", type=_nonnegative_int, default=None,
                        metavar="D",
                        help="aggregation-tree fan-out for the experiments "
                             "that support the hierarchical snapshot "
                             "fabric (currently scaling); 0 models a flat "
                             "observer intake, >= 1 enables the tree — "
                             "see docs/AGGREGATION.md")


def _load_fault_profile(text: str) -> Optional[dict]:
    """Parse ``--fault-profile``: inline JSON or a path to a JSON file.
    Validates by round-tripping through FaultProfile.from_jsonable.
    Returns None (after printing the reason) on bad input."""
    import json
    import os

    from repro.faults import FaultProfile

    raw = text
    if os.path.exists(text):
        with open(text, encoding="utf-8") as handle:
            raw = handle.read()
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"--fault-profile is neither a file nor valid JSON: {exc}",
              file=sys.stderr)
        return None
    try:
        return FaultProfile.from_jsonable(data).to_jsonable()
    except (ValueError, TypeError) as exc:
        print(f"invalid fault profile: {exc}", file=sys.stderr)
        return None


def _load_update_plan(text: str) -> Optional[dict]:
    """Parse ``--update-plan``: inline JSON or a path to a JSON file.
    Validates by round-tripping through UpdatePlan.from_jsonable.
    Returns None (after printing the reason) on bad input."""
    import json
    import os

    from repro.updates import UpdatePlan

    raw = text
    if os.path.exists(text):
        with open(text, encoding="utf-8") as handle:
            raw = handle.read()
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"--update-plan is neither a file nor valid JSON: {exc}",
              file=sys.stderr)
        return None
    try:
        return UpdatePlan.from_jsonable(data).to_jsonable()
    except (ValueError, TypeError, KeyError) as exc:
        print(f"invalid update plan: {exc}", file=sys.stderr)
        return None


def _apply_update_plan(configs: dict, plan_json: dict) -> list[str]:
    """Thread a serialized update plan into every config that
    understands one (a ``plan`` attribute — currently updates)."""
    applied = []
    for name, config in configs.items():
        if hasattr(config, "plan"):
            config.plan = plan_json
            applied.append(name)
    return applied


def _apply_fault_profile(configs: dict, profile_json: dict) -> list[str]:
    """Thread a serialized profile into every config that understands
    one: ``profile`` (faults, scaling) or ``profiles`` (recovery, which
    then sweeps its policies against just this profile)."""
    applied = []
    for name, config in configs.items():
        if hasattr(config, "profile"):
            config.profile = profile_json
            applied.append(name)
        elif hasattr(config, "profiles"):
            config.profiles = {"cli-profile": profile_json}
            applied.append(name)
    return applied


def _apply_shards(configs: dict, shards: int) -> list[str]:
    """Thread a shard count into every config that understands one
    (a ``shards`` attribute — currently scaling and recovery)."""
    applied = []
    for name, config in configs.items():
        if hasattr(config, "shards"):
            config.shards = shards
            applied.append(name)
    return applied


def _apply_agg_degree(configs: dict, agg_degree: int) -> list[str]:
    """Thread an aggregation-tree fan-out into every config that
    understands one (an ``agg_degree`` attribute — currently scaling)."""
    applied = []
    for name, config in configs.items():
        if hasattr(config, "agg_degree"):
            config.agg_degree = agg_degree
            applied.append(name)
    return applied


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import registry

    reg = registry()
    if args.list:
        for name, exp in reg.items():
            print(f"  {name:<21} {exp.description}")
        return 0

    # Subset selection: positional names (`repro experiments faults`)
    # and/or the --only list; no selection runs the whole suite.
    selected = list(args.names or [])
    if args.only:
        selected.extend(n.strip() for n in args.only.split(",") if n.strip())
    names = selected or list(reg)
    unknown = [n for n in names if n not in reg]
    if unknown:
        print(f"unknown experiment(s) {', '.join(unknown)}; run "
              "`python -m repro experiments --list`", file=sys.stderr)
        return 2

    # One combined batch across all selected experiments: the runner
    # sees every trial at once, so --jobs fans out across experiments.
    runner = _make_runner(args)
    configs = {name: reg[name].config(quick=args.quick) for name in names}
    if args.fault_profile:
        profile_json = _load_fault_profile(args.fault_profile)
        if profile_json is None:
            return 2
        applied = _apply_fault_profile(configs, profile_json)
        if not applied:
            print("--fault-profile: none of the selected experiments "
                  "accept a fault profile (try faults, scaling, recovery)",
                  file=sys.stderr)
            return 2
        print(f"[fault profile applied to: {', '.join(applied)}]",
              file=sys.stderr)
    if args.update_plan:
        plan_json = _load_update_plan(args.update_plan)
        if plan_json is None:
            return 2
        applied = _apply_update_plan(configs, plan_json)
        if not applied:
            print("--update-plan: none of the selected experiments "
                  "accept an update plan (try updates)", file=sys.stderr)
            return 2
        print(f"[update plan applied to: {', '.join(applied)}]",
              file=sys.stderr)
    if args.shards:
        applied = _apply_shards(configs, args.shards)
        if not applied:
            print("--shards: none of the selected experiments support "
                  "sharded simulation (try scaling, recovery, updates)",
                  file=sys.stderr)
            return 2
        print(f"[{args.shards} shards applied to: {', '.join(applied)}]",
              file=sys.stderr)
    if args.agg_degree is not None:
        applied = _apply_agg_degree(configs, args.agg_degree)
        if not applied:
            print("--agg-degree: none of the selected experiments support "
                  "the aggregation fabric (try scaling)", file=sys.stderr)
            return 2
        print(f"[agg degree {args.agg_degree} applied to: "
              f"{', '.join(applied)}]", file=sys.stderr)
    batches = {name: reg[name].specs(configs[name]) for name in names}
    flat = [spec for name in names for spec in batches[name]]
    results = runner.run_batch(flat)

    cursor = 0
    reports = []
    for name in names:
        count = len(batches[name])
        chunk = results[cursor:cursor + count]
        cursor += count
        reports.append(reg[name].assemble(configs[name], chunk).report())
    print("\n\n".join(reports))
    stats = runner.last_stats
    print(f"\n[{stats.summary()}]", file=sys.stderr)
    if stats.trial_seconds:
        # Per-experiment wall-clock (executed trials only; cache hits
        # cost nothing and are not attributed).
        print("[per-experiment wall-clock]", file=sys.stderr)
        for name in names:
            timed = [stats.trial_seconds[s.describe()]
                     for s in batches[name]
                     if s.describe() in stats.trial_seconds]
            if timed:
                print(f"  {name:<21} {sum(timed):>8.2f}s "
                      f"({len(timed)} trials)", file=sys.stderr)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import registry

    reg = registry()
    if args.name not in reg:
        print(f"unknown experiment {args.name!r}; run "
              "`python -m repro experiments --list`", file=sys.stderr)
        return 2
    exp = reg[args.name]
    runner = _make_runner(args)
    config = exp.config(quick=args.quick)
    if args.fault_profile:
        profile_json = _load_fault_profile(args.fault_profile)
        if profile_json is None:
            return 2
        applied = _apply_fault_profile({args.name: config}, profile_json)
        if not applied:
            print(f"--fault-profile: {args.name} does not accept a fault "
                  "profile (try faults, scaling, recovery)", file=sys.stderr)
            return 2
        print(f"[fault profile applied to: {', '.join(applied)}]",
              file=sys.stderr)
    if args.update_plan:
        plan_json = _load_update_plan(args.update_plan)
        if plan_json is None:
            return 2
        applied = _apply_update_plan({args.name: config}, plan_json)
        if not applied:
            print(f"--update-plan: {args.name} does not accept an update "
                  "plan (try updates)", file=sys.stderr)
            return 2
        print(f"[update plan applied to: {args.name}]", file=sys.stderr)
    if args.shards:
        applied = _apply_shards({args.name: config}, args.shards)
        if not applied:
            print(f"--shards: {args.name} does not support sharded "
                  "simulation (try scaling, recovery, updates)",
                  file=sys.stderr)
            return 2
        print(f"[{args.shards} shards applied to: {args.name}]",
              file=sys.stderr)
    if args.agg_degree is not None:
        applied = _apply_agg_degree({args.name: config}, args.agg_degree)
        if not applied:
            print(f"--agg-degree: {args.name} does not support the "
                  "aggregation fabric (try scaling)", file=sys.stderr)
            return 2
        print(f"[agg degree {args.agg_degree} applied to: {args.name}]",
              file=sys.stderr)
    result = exp.run(config, runner=runner)
    print(result.report())
    print(f"\n[{runner.last_stats.summary()}]", file=sys.stderr)
    return 0


def cmd_metrics(_args: argparse.Namespace) -> int:
    from repro.counters import COUNTER_REGISTRY

    names = sorted(set(COUNTER_REGISTRY) |
                   {"queue_depth", "queue_watermark", "fib_version"})
    print(f"{'metric':<20} {'kind':<12} channel state")
    for name in names:
        kind = "gauge" if name in GAUGE_METRICS else "accumulator"
        cs = "no (gauge)" if name in GAUGE_METRICS else (
            "yes" if name in ("packet_count", "byte_count") else "no rule")
        print(f"{name:<20} {kind:<12} {cs}")
    return 0


def cmd_statics(args: argparse.Namespace) -> int:
    from repro.statics.cli import main as statics_main

    argv: list[str] = list(args.paths)
    if args.as_json:
        argv.append("--json")
    if args.rules:
        argv.extend(["--rules", args.rules])
    if args.list_rules:
        argv.append("--list-rules")
    if args.profile != "default":
        argv.extend(["--profile", args.profile])
    if args.flow:
        argv.append("--flow")
    if args.graph_dump:
        argv.append("--graph-dump")
    if args.sarif:
        argv.extend(["--sarif", args.sarif])
    if args.jobs != 1:
        argv.extend(["--jobs", str(args.jobs)])
    if args.forbid_pragmas:
        argv.append("--forbid-pragmas")
    if args.no_cache:
        argv.append("--no-cache")
    if args.flow_cache_dir:
        argv.extend(["--cache-dir", args.flow_cache_dir])
    return statics_main(argv)


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.service.pipeline import PipelineConfig
    from repro.sim.engine import US
    from repro.runtime.streaming import ServiceRun, ServiceSpec

    if args.fault_smoke:
        from repro.service.smoke import main as smoke_main

        return smoke_main()

    spec = ServiceSpec(
        seed=args.seed,
        num_leaves=args.leaves,
        num_spines=args.spines,
        hosts_per_leaf=args.hosts_per_leaf,
        interval_ns=args.interval_us * US,
        metric=args.metric,
        agg_degree=args.agg_degree,
        pipeline=PipelineConfig(retention=args.retention,
                                keyframe_interval=args.keyframe_interval,
                                queue_capacity=args.queue_capacity))
    run = ServiceRun(spec)

    def progress(r: ServiceRun) -> None:
        print(f"  [{r.pipeline.ingested}/{args.epochs} epochs stored, "
              f"{r.pipeline.store.encoded_bytes} store bytes, "
              f"backlog {r.pipeline.backlog}]", file=sys.stderr)

    report = run.run(args.epochs,
                     on_chunk=progress if args.verbose else None,
                     max_wall_seconds=args.max_wall_seconds)
    engine = run.query_engine()
    doc: dict = {
        "epochs_stored": report.epochs_stored,
        "ticks": report.ticks,
        "sim_time_ms": report.sim_time_ns // 1_000_000,
        "wall_seconds": round(report.wall_seconds, 3),
        "epochs_per_sec": round(report.epochs_per_sec, 1),
        "events_per_sec": round(report.events_per_sec, 1),
        "pipeline": report.stats,
        "summary": engine.summary(),
    }
    if args.query_range:
        start, end = args.query_range
        doc["range"] = engine.range(start, end)
    if args.conservation:
        doc["conservation"] = engine.conservation()
    if args.heavy_hitters:
        doc["heavy_hitters"] = engine.heavy_hitters(top=args.heavy_hitters)
    if args.as_json:
        json.dump(doc, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
        return 0
    print(f"served {doc['epochs_stored']} epochs "
          f"({doc['epochs_per_sec']} epochs/s wall, "
          f"{doc['sim_time_ms']} ms simulated)")
    summary = doc["summary"]
    print(f"store: {summary['epochs_stored']} epochs "
          f"[{summary['min_epoch']}..{summary['max_epoch']}], "
          f"{summary['encoded_bytes']} bytes, "
          f"{summary['keyframes']} keyframes, "
          f"{summary['evicted']} evicted, "
          f"{summary['merged_epochs']} merged under backpressure")
    if "conservation" in doc:
        cons = doc["conservation"]
        verdict = ("ok" if not cons["violations"]
                   else f"VIOLATIONS: {cons['violations']}")
        print(f"conservation: {cons['checked']} epochs checked, {verdict}")
    if "heavy_hitters" in doc:
        hh = doc["heavy_hitters"]
        print(f"heavy hitters @ epoch {hh['epoch']}:")
        for unit in hh["units"]:
            print(f"  {unit['device']}:{unit['port']}:{unit['direction']} "
                  f"= {unit['value']}")
        for flow in hh["flows"]:
            print(f"  {flow['unit']} {flow['flow']} ~{flow['estimate']}")
    if "range" in doc:
        print(f"range query returned {len(doc['range'])} epochs")
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    from repro.core import deploy
    from repro.sim.engine import MS
    from repro.sim.network import Network, NetworkConfig
    from repro.topology import leaf_spine
    from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

    print("building the SIGCOMM'18 testbed (2 leaves x 2 spines x 6 hosts)…")
    network = Network(leaf_spine(), NetworkConfig(seed=1))
    PoissonWorkload(network, PoissonConfig(rate_pps=20_000,
                                           stop_ns=400 * MS,
                                           sport_churn=True)).start()
    deployment = deploy(network, metric="packet_count")
    epochs = deployment.schedule_campaign(count=5, interval_ns=20 * MS)
    network.run(until=400 * MS)
    print(f"{'epoch':>6} {'sync (us)':>10} {'total packets':>14}")
    for epoch in epochs:
        snap = deployment.observer.snapshot(epoch)
        sync = (deployment.sync_spread_ns(epoch) or 0) / 1e3
        print(f"{epoch:>6} {sync:>10.1f} {snap.total_value():>14}")
    print("\neach row is a causally consistent, network-wide cut — "
          "try `python -m repro run fig9 --quick` next.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synchronized Network Snapshots (Speedlight) reproduction")
    sub = parser.add_subparsers(dest="command")

    exp_parser = sub.add_parser(
        "experiments",
        help="run the full experiment suite (or --list to enumerate)")
    exp_parser.add_argument("names", nargs="*", metavar="NAME",
                            help="experiments to run (default: all)")
    exp_parser.add_argument("--list", action="store_true",
                            help="list available experiments and exit")
    exp_parser.add_argument("--only", metavar="A,B",
                            help="comma-separated subset to run")
    _add_runner_flags(exp_parser)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("name")
    _add_runner_flags(run_parser)

    sub.add_parser("metrics", help="list snapshot-capable metrics")

    statics_parser = sub.add_parser(
        "statics",
        help="determinism & simulation-invariant static analysis")
    statics_parser.add_argument("paths", nargs="*", metavar="PATH",
                                help="files/directories (default: src tests)")
    statics_parser.add_argument("--json", action="store_true",
                                dest="as_json",
                                help="machine-readable output")
    statics_parser.add_argument("--rules", metavar="A,B", default=None,
                                help="run only these rule ids")
    statics_parser.add_argument("--list-rules", action="store_true",
                                help="list the rules and exit")
    statics_parser.add_argument("--profile",
                                choices=("default", "external"),
                                default="default",
                                help="'external' audits out-of-tree "
                                     "simulation models (drops DET002/"
                                     "TRIAL001, forces the 'sim' scope, "
                                     "requires explicit paths)")
    statics_parser.add_argument("--flow", action="store_true",
                                help="whole-program analysis "
                                     "(FLOW001/MSG001/MSG002/DET005)")
    statics_parser.add_argument("--graph-dump", action="store_true",
                                dest="graph_dump",
                                help="with --flow: dump the linked "
                                     "call/message graphs")
    statics_parser.add_argument("--sarif", metavar="FILE", default=None,
                                help="also write SARIF 2.1.0 output")
    statics_parser.add_argument("--jobs", type=int, default=1,
                                metavar="N",
                                help="parallel per-file parse phase")
    statics_parser.add_argument("--forbid-pragmas", action="store_true",
                                dest="forbid_pragmas",
                                help="fail if anything was suppressed "
                                     "by a pragma")
    statics_parser.add_argument("--no-cache", action="store_true",
                                dest="no_cache",
                                help="with --flow: disable the summary "
                                     "cache")
    statics_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                                dest="flow_cache_dir",
                                help="with --flow: summary cache root "
                                     "(default: .repro-cache/statics-flow)")

    serve_parser = sub.add_parser(
        "serve",
        help="snapshot-as-a-service: continuous epochs under sustained "
             "incast, with queries over the bounded delta store "
             "(docs/SERVICE.md)")
    serve_parser.add_argument("--epochs", type=_positive_int, default=500,
                              metavar="N",
                              help="epochs to store before reporting "
                                   "(default: 500)")
    serve_parser.add_argument("--interval-us", type=_positive_int,
                              default=2000, metavar="US",
                              help="snapshot cadence in microseconds "
                                   "(default: 2000)")
    serve_parser.add_argument("--metric", default="packet_count",
                              help="snapshot metric (heavy_hitter enables "
                                   "flow drilldown; default: packet_count)")
    serve_parser.add_argument("--seed", type=int, default=42)
    serve_parser.add_argument("--leaves", type=_positive_int, default=2)
    serve_parser.add_argument("--spines", type=_positive_int, default=1)
    serve_parser.add_argument("--hosts-per-leaf", type=_positive_int,
                              default=2)
    serve_parser.add_argument("--agg-degree", type=_nonnegative_int,
                              default=None, metavar="D",
                              help="route records through the aggregation "
                                   "fabric (docs/AGGREGATION.md)")
    serve_parser.add_argument("--retention", type=_positive_int,
                              default=1024,
                              help="store ring size in epochs "
                                   "(default: 1024)")
    serve_parser.add_argument("--keyframe-interval", type=_positive_int,
                              default=64,
                              help="entries between full keyframes "
                                   "(default: 64)")
    serve_parser.add_argument("--queue-capacity", type=_positive_int,
                              default=64,
                              help="ingest queue bound; overflow coalesces "
                                   "epochs (default: 64)")
    serve_parser.add_argument("--query-range", type=int, nargs=2,
                              metavar=("START", "END"),
                              help="print stored epochs in [START, END]")
    serve_parser.add_argument("--conservation", action="store_true",
                              help="audit stored history against the "
                                   "per-link conservation law")
    serve_parser.add_argument("--heavy-hitters", type=_positive_int,
                              default=None, metavar="N",
                              help="print the N heaviest units (and flows, "
                                   "with --metric heavy_hitter)")
    serve_parser.add_argument("--max-wall-seconds", type=float, default=None,
                              help="stop early after this much wall time")
    serve_parser.add_argument("--json", action="store_true", dest="as_json",
                              help="machine-readable report")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="per-chunk progress on stderr")
    serve_parser.add_argument("--fault-smoke", action="store_true",
                              help="run the service-under-faults smoke "
                                   "check instead (CP crash mid-stream; "
                                   "exit 0 iff the store stays queryable)")

    sub.add_parser("demo", help="a 30-second end-to-end tour")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "experiments": cmd_experiments,
        "run": cmd_run,
        "metrics": cmd_metrics,
        "statics": cmd_statics,
        "serve": cmd_serve,
        "demo": cmd_demo,
    }
    if args.command is None:
        parser.print_help()
        return 0
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
