"""Command-line interface: ``python -m repro <command>``.

Commands:

``experiments``
    List the available paper experiments.
``run <name> [--quick]``
    Run one experiment (``table1``, ``fig9`` … ``fig13``,
    ``ablation-ideal``, ``ablation-initiation``) and print its report.
``metrics``
    List the snapshot-capable metrics and whether they support channel
    state.
``demo``
    A 30-second tour: build the testbed, take snapshots, print results.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro.core.deployment import GAUGE_METRICS


def _experiment_registry() -> Dict[str, Tuple[Callable, Callable]]:
    """name -> (run(config) -> result, config factory)."""
    from repro.experiments import (fig9, fig10, fig11, fig12, fig13,
                                   motivation, scaling, sweeps, table1)
    from repro.experiments import ablations

    return {
        "motivation": (motivation.run, motivation.MotivationConfig),
        "table1": (table1.run, table1.Table1Config),
        "fig9": (fig9.run, fig9.Fig9Config),
        "fig10": (fig10.run, fig10.Fig10Config),
        "fig11": (fig11.run, fig11.Fig11Config),
        "fig12": (fig12.run, fig12.Fig12Config),
        "fig13": (fig13.run, fig13.Fig13Config),
        "ablation-ideal": (ablations.run_ideal_vs_speedlight,
                           ablations.IdealVsSpeedlightConfig),
        "ablation-initiation": (ablations.run_initiation_strategies,
                                ablations.InitiationConfig),
        "ablation-transport": (ablations.run_notification_transports,
                               ablations.TransportConfig),
        "sweep-service-cost": (sweeps.run_service_cost_sweep,
                               sweeps.ServiceCostSweepConfig),
        "sweep-ptp": (sweeps.run_ptp_sweep, sweeps.PtpSweepConfig),
        "sweep-rate": (sweeps.run_rate_sweep, sweeps.RateSweepConfig),
        "scaling": (scaling.run, scaling.ScalingConfig),
    }


def cmd_experiments(_args: argparse.Namespace) -> int:
    descriptions = {
        "motivation": "Figure 1: balanced vs. alternating queues",
        "table1": "data-plane resource usage on the Tofino",
        "fig9": "synchronization CDFs: snapshots vs. polling",
        "fig10": "max sustained snapshot rate vs. ports/router",
        "fig11": "average synchronization vs. network size",
        "fig12": "load-balance stddev: ECMP/flowlet x snapshot/poll",
        "fig13": "port correlations under GraphX",
        "ablation-ideal": "idealised vs. hardware-constrained data plane",
        "ablation-initiation": "multi- vs. single-initiator",
        "ablation-transport": "raw-socket vs. digest notifications",
        "sweep-service-cost": "Fig 10 knee vs. per-notification CPU cost",
        "sweep-ptp": "snapshot sync vs. clock quality (PTP->NTP)",
        "sweep-rate": "channel-state sync vs. traffic rate",
        "scaling": "full protocol on growing fat-trees",
    }
    for name in _experiment_registry():
        print(f"  {name:<21} {descriptions[name]}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.name not in registry:
        print(f"unknown experiment {args.name!r}; run "
              "`python -m repro experiments` for the list", file=sys.stderr)
        return 2
    run, config_cls = registry[args.name]
    config = config_cls.quick() if args.quick else config_cls()
    result = run(config)
    print(result.report())
    return 0


def cmd_metrics(_args: argparse.Namespace) -> int:
    from repro.counters import COUNTER_REGISTRY

    names = sorted(set(COUNTER_REGISTRY) |
                   {"queue_depth", "queue_watermark", "fib_version"})
    print(f"{'metric':<20} {'kind':<12} channel state")
    for name in names:
        kind = "gauge" if name in GAUGE_METRICS else "accumulator"
        cs = "no (gauge)" if name in GAUGE_METRICS else (
            "yes" if name in ("packet_count", "byte_count") else "no rule")
        print(f"{name:<20} {kind:<12} {cs}")
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    from repro.core import DeploymentConfig, SpeedlightDeployment
    from repro.sim.engine import MS, S
    from repro.sim.network import Network, NetworkConfig
    from repro.topology import leaf_spine
    from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

    print("building the SIGCOMM'18 testbed (2 leaves x 2 spines x 6 hosts)…")
    network = Network(leaf_spine(), NetworkConfig(seed=1))
    PoissonWorkload(network, PoissonConfig(rate_pps=20_000,
                                           stop_ns=400 * MS,
                                           sport_churn=True)).start()
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count"))
    epochs = deployment.schedule_campaign(count=5, interval_ns=20 * MS)
    network.run(until=400 * MS)
    print(f"{'epoch':>6} {'sync (us)':>10} {'total packets':>14}")
    for epoch in epochs:
        snap = deployment.observer.snapshot(epoch)
        sync = (deployment.sync_spread_ns(epoch) or 0) / 1e3
        print(f"{epoch:>6} {sync:>10.1f} {snap.total_value():>14}")
    print("\neach row is a causally consistent, network-wide cut — "
          "try `python -m repro run fig9 --quick` next.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synchronized Network Snapshots (Speedlight) reproduction")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("experiments", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("name")
    run_parser.add_argument("--quick", action="store_true",
                            help="reduced configuration (CI-sized)")

    sub.add_parser("metrics", help="list snapshot-capable metrics")
    sub.add_parser("demo", help="a 30-second end-to-end tour")
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "experiments": cmd_experiments,
        "run": cmd_run,
        "metrics": cmd_metrics,
        "demo": cmd_demo,
    }
    if args.command is None:
        parser.print_help()
        return 0
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
