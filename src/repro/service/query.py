"""Queries over stored snapshot history.

The §8 management applications — "is the network losing packets?",
"who is the heavy hitter right now?" — as an API over the service's
delta store.  Every query decodes epoch documents through the one
canonical serializer (:func:`repro.analysis.report.epoch_from_record`),
so answers are computed on exactly the records batch reports would
show.

Conservation checks reuse the existing analysis layer: per-flow cut
conservation via :class:`repro.analysis.consistency.ConsistencyChecker`
when the run traced its data plane, and the topology-driven per-link
non-negativity audit (:class:`repro.analysis.invariants.LinkAudit`)
which needs only the snapshots themselves.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.consistency import ConsistencyChecker
from repro.analysis.invariants import LinkAudit
from repro.analysis.report import epoch_from_record
from repro.core.snapshot import GlobalSnapshot
from repro.service.store import EpochDoc, EpochStore

#: Resolves one device name to live heavy-flow evidence:
#: ``(unit name, flow 5-tuple string, estimated packets)`` triples.
FlowResolver = Callable[[str], list[tuple[str, str, int]]]


class QueryEngine:
    """Answers epoch-range, conservation, and heavy-hitter queries."""

    def __init__(self, store: EpochStore,
                 link_audit: Optional[LinkAudit] = None,
                 checker: Optional[ConsistencyChecker] = None,
                 channel_state: bool = False,
                 flow_resolver: Optional[FlowResolver] = None) -> None:
        self.store = store
        self.link_audit = link_audit
        self.checker = checker
        self.channel_state = channel_state
        self.flow_resolver = flow_resolver

    # ------------------------------------------------------------------
    # Epoch range scans
    # ------------------------------------------------------------------
    def epochs(self) -> list[int]:
        return self.store.epochs()

    def range(self, start: Optional[int] = None,
              end: Optional[int] = None) -> list[EpochDoc]:
        """Stored documents with ``start <= epoch <= end``, by epoch."""
        docs = list(self.store.scan(start=start, end=end))
        docs.sort(key=lambda d: d["epoch"])  # type: ignore[arg-type,return-value]
        return docs

    def snapshot(self, epoch: int) -> Optional[GlobalSnapshot]:
        """One epoch rebuilt as a :class:`GlobalSnapshot`."""
        doc = self.store.get(epoch)
        return None if doc is None else epoch_from_record(doc)

    # ------------------------------------------------------------------
    # Conservation
    # ------------------------------------------------------------------
    def conservation(self, start: Optional[int] = None,
                     end: Optional[int] = None) -> dict[str, object]:
        """Audit stored history against the conservation laws.

        Uses the per-flow trace checker when one is wired, else the
        per-link audit.  Only snapshots claiming consistency are held
        to the law (that is the inconsistent flag's purpose); the rest
        are counted as skipped.
        """
        if self.checker is None and self.link_audit is None:
            raise ValueError("conservation queries need a "
                             "ConsistencyChecker or a LinkAudit")
        checked = 0
        skipped = 0
        violations: dict[int, list[str]] = {}
        for doc in self.range(start, end):
            snapshot = epoch_from_record(doc)
            if not snapshot.records or not snapshot.consistent:
                skipped += 1
                continue
            checked += 1
            found: list[str] = []
            if self.checker is not None:
                found.extend(self.checker.violations_of(
                    snapshot, self.channel_state))
            if self.link_audit is not None:
                for report in self.link_audit.violations(snapshot):
                    found.append(
                        f"link {report.sender} -> {report.receiver}: "
                        f"received {report.received} > sent {report.sent}")
            if found:
                violations[snapshot.epoch] = found
        return {
            "checked": checked,
            "skipped": skipped,
            "violating_epochs": sorted(violations),
            "violations": {e: violations[e] for e in sorted(violations)},
        }

    # ------------------------------------------------------------------
    # Heavy-hitter drilldown
    # ------------------------------------------------------------------
    def heavy_hitters(self, epoch: Optional[int] = None,
                      top: int = 5) -> dict[str, object]:
        """The ``top`` heaviest units of one epoch (default: newest).

        Stored records locate the load — which switch, port, and
        direction carry the heaviest flow estimates.  When a live
        :attr:`flow_resolver` is wired (serve mode over the
        ``heavy_hitter`` metric), each top device is drilled down to
        the actual flow 5-tuple its count-min sketch pins the load on.
        """
        if epoch is None:
            epoch = self.store.max_epoch
        if epoch is None:
            return {"epoch": None, "units": [], "flows": []}
        doc = self.store.get(epoch)
        if doc is None:
            return {"epoch": epoch, "units": [], "flows": []}
        rows = sorted(
            doc["records"],  # type: ignore[arg-type]
            key=lambda r: (-int(r["value"]), r["device"],  # type: ignore[index]
                           int(r["port"]), r["direction"]))  # type: ignore[index]
        units = [{
            "device": row["device"],
            "port": row["port"],
            "direction": row["direction"],
            "value": row["value"],
        } for row in rows[:top] if int(row["value"]) > 0]  # type: ignore[arg-type]
        flows: list[dict[str, object]] = []
        if self.flow_resolver is not None:
            for device in sorted({str(u["device"]) for u in units}):
                for unit_name, flow, estimate in self.flow_resolver(device):
                    flows.append({"unit": unit_name, "flow": flow,
                                  "estimate": estimate})
            flows.sort(key=lambda f: (-int(f["estimate"]),  # type: ignore[arg-type]
                                      str(f["unit"])))
        return {"epoch": epoch, "units": units, "flows": flows}

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Store span + counters, the serve mode's status answer."""
        merged = 0
        usable = 0
        total = 0
        for doc in self.store.scan():
            total += 1
            merged += int(doc.get("merged_epochs", 0))  # type: ignore[arg-type]
            if doc["status"] == "complete" and doc["consistent"]:
                usable += 1
        out: dict[str, object] = {
            "epochs_stored": total,
            "min_epoch": self.store.min_epoch,
            "max_epoch": self.store.max_epoch,
            "usable_epochs": usable,
            "merged_epochs": merged,
        }
        out.update(self.store.stats())
        return out
