"""The continuous snapshot pipeline: ticker → stream → store.

Glues the intake stream to the delta store with an explicitly modeled,
explicitly *bounded* ingest path:

* a :class:`ContinuousCampaign` ticker keeps one snapshot in flight per
  ``interval_ns`` forever (each tick schedules the next, so the horizon
  is open-ended — no pre-scheduled campaign array);
* resolved epochs queue at the ingest server, which serializes them one
  at a time at a modeled cost (base + per-record), the same shape as the
  relay/notification servers elsewhere in the model;
* when the queue is full the pipeline **coalesces** instead of growing:
  the newest queued epoch is merged into the arriving one (the metrics
  are cumulative counters, so the newer snapshot subsumes the older
  view) and the loss is counted, per epoch and in aggregate, as
  ``merged_epochs`` on the stored document.

Nothing here reads a wall clock — throughput measurement lives in
:mod:`repro.runtime.streaming`, which is allowed to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import epoch_record
from repro.core.observer import SnapshotObserver
from repro.core.snapshot import GlobalSnapshot
from repro.service.store import EpochStore, StoreConfig
from repro.service.stream import SnapshotStream
from repro.sim.engine import Simulator, US


@dataclass
class PipelineConfig:
    """Sizing and cost model of the service pipeline."""

    #: Epochs retained by the store ring.
    retention: int = 1024
    #: Store keyframe cadence (entries between full documents).
    keyframe_interval: int = 64
    #: Ingest queue bound; arrivals past it coalesce, never queue.
    queue_capacity: int = 64
    #: Serial ingest cost per epoch: encode + index + store bookkeeping.
    ingest_service_ns: int = 120 * US
    #: Marginal ingest cost per unit record.
    ingest_per_record_ns: int = 2 * US

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


class SnapshotPipeline:
    """Continuous epoch intake with backpressure, feeding a delta store."""

    def __init__(self, sim: Simulator, observer: SnapshotObserver,
                 config: Optional[PipelineConfig] = None,
                 store: Optional[EpochStore] = None) -> None:
        self.sim = sim
        self.config = config or PipelineConfig()
        self.store = store or EpochStore(StoreConfig(
            retention=self.config.retention,
            keyframe_interval=self.config.keyframe_interval))
        self.stream = SnapshotStream(observer)
        self.stream.subscribe(self._pump)
        #: FIFO of [snapshot, merged_count] awaiting the ingest server.
        self._queue: deque[list] = deque()
        self._busy = False
        #: Epochs stored / merged away under backpressure, lifetime.
        self.ingested = 0
        self.coalesced_epochs = 0

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        for snapshot in self.stream.drain():
            self._enqueue(snapshot)

    def _enqueue(self, snapshot: GlobalSnapshot) -> None:
        if len(self._queue) >= self.config.queue_capacity:
            # Backpressure: fold the newest queued epoch into this one.
            # Cumulative counters mean the newer snapshot subsumes the
            # older network view; what is lost is temporal resolution,
            # and that loss is counted — never an unbounded queue.
            displaced = self._queue.pop()
            merged = displaced[1] + 1
            self.coalesced_epochs += 1
            self._queue.append([snapshot, merged])
        else:
            self._queue.append([snapshot, 0])
        self._service()

    def _service(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        snapshot = self._queue[0][0]
        cost = (self.config.ingest_service_ns
                + self.config.ingest_per_record_ns * len(snapshot.records))
        self.sim.schedule(cost, self._ingest_head)

    def _ingest_head(self) -> None:
        snapshot, merged = self._queue.popleft()
        doc = epoch_record(snapshot)
        doc["merged_epochs"] = merged
        self.store.append(doc)
        self.ingested += 1
        self._busy = False
        self._service()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Epochs resolved but not yet stored."""
        return len(self._queue) + self.stream.pending

    def stats(self) -> dict[str, int]:
        out = {
            "ingested": self.ingested,
            "coalesced_epochs": self.coalesced_epochs,
            "backlog": self.backlog,
            "resolved": self.stream.resolved,
            "filtered": self.stream.filtered,
        }
        out.update({f"store_{k}": v for k, v in self.store.stats().items()})
        return out


class ContinuousCampaign:
    """An open-ended snapshot ticker (service mode's trigger).

    ``schedule_campaign`` pre-allocates a fixed epoch array; a service
    has no end date.  This ticker takes one snapshot per interval and
    reschedules itself, honoring the observer's no-lapping window
    enforcement exactly as batch campaigns do.  ``stop()`` halts after
    the current tick; ``ticks`` counts snapshots taken.
    """

    def __init__(self, sim: Simulator, observer: SnapshotObserver,
                 interval_ns: int) -> None:
        if interval_ns < 1:
            raise ValueError("interval_ns must be positive")
        self.sim = sim
        self.observer = observer
        self.interval_ns = interval_ns
        self.ticks = 0
        self.max_ticks: Optional[int] = None
        self._running = False

    def start(self, max_ticks: Optional[int] = None) -> None:
        self.max_ticks = max_ticks
        if self._running:
            return
        self._running = True
        self.sim.schedule(0, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self.max_ticks is not None and self.ticks >= self.max_ticks:
            self._running = False
            return
        self.observer.take_snapshot()
        self.ticks += 1
        self.sim.schedule(self.interval_ns, self._tick)
