"""Delta-encoded, bounded epoch storage for the snapshot service.

The store holds a rolling window of epoch-record documents (the
JSON-stable shape produced by :func:`repro.analysis.report.epoch_record`)
as a chain of **keyframes** and **deltas**:

* a keyframe is the full document;
* a delta records, against the *previously stored* epoch, only the unit
  rows that changed, the rows that disappeared, and the top-level fields
  that moved — idle units and stable metadata cost nothing.

Retention is a hard ring: past ``retention`` entries the oldest entry is
evicted, and if that orphans a delta the delta is *promoted* — merged
with the evicted state into a fresh keyframe — so the chain always
decodes from its first entry and memory never grows with run length.
The store accounts for its own size exactly (canonical-JSON bytes of
every stored payload), which is what the service bench asserts flat.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from collections.abc import Iterator
from typing import Optional

#: An epoch-record document (``repro.analysis.report.epoch_record``
#: output, possibly with service annotations such as ``merged_epochs``).
EpochDoc = dict[str, object]

_KEYFRAME = "key"
_DELTA = "delta"


def canonical_bytes(payload: object) -> int:
    """Exact size of ``payload`` as canonical (sorted, separator-free)
    JSON — the store's unit of memory accounting."""
    return len(json.dumps(payload, sort_keys=True, separators=(",", ":")))


def _row_key(row: EpochDoc) -> str:
    return f"{row['device']}:{row['port']}:{row['direction']}"


def _row_sort_key(name: str) -> tuple[str, int, str]:
    device, port, direction = name.rsplit(":", 2)
    return (device, int(port), direction)


def _strip_epoch(row: EpochDoc) -> EpochDoc:
    return {k: v for k, v in row.items() if k != "epoch"}


def _rows_equal(a: EpochDoc, b: EpochDoc) -> bool:
    return _strip_epoch(a) == _strip_epoch(b)


def encode_delta(prev: EpochDoc, doc: EpochDoc) -> EpochDoc:
    """Encode ``doc`` as a delta against ``prev``.

    The encoding is exact: :func:`apply_delta` reproduces ``doc``
    bit-for-bit (canonical-JSON identical).  Unit rows are keyed
    ``device:port:direction``; a row's ``epoch`` field is implied by the
    document and never stored twice.
    """
    prev_rows = {_row_key(r): r for r in prev["records"]}  # type: ignore[union-attr]
    new_rows = {_row_key(r): r for r in doc["records"]}  # type: ignore[union-attr]
    changed: dict[str, EpochDoc] = {}
    for key in sorted(new_rows, key=_row_sort_key):
        old = prev_rows.get(key)
        if old is None or not _rows_equal(old, new_rows[key]):
            changed[key] = _strip_epoch(new_rows[key])
    removed = sorted((k for k in prev_rows if k not in new_rows),
                     key=_row_sort_key)
    meta = {k: v for k, v in doc.items()
            if k != "records" and (k not in prev or prev[k] != v)}
    meta_removed = sorted(k for k in prev
                          if k != "records" and k not in doc)
    return {"base": prev["epoch"], "meta": meta,
            "meta_removed": meta_removed, "rows": changed,
            "rows_removed": removed}


def apply_delta(prev: EpochDoc, delta: EpochDoc) -> EpochDoc:
    """Invert :func:`encode_delta`: rebuild the full document."""
    doc: EpochDoc = {k: v for k, v in prev.items() if k != "records"}
    for k in delta["meta_removed"]:  # type: ignore[union-attr]
        doc.pop(k, None)
    doc.update(delta["meta"])  # type: ignore[arg-type]
    rows = {_row_key(r): _strip_epoch(r)
            for r in prev["records"]}  # type: ignore[union-attr]
    for key in delta["rows_removed"]:  # type: ignore[union-attr]
        rows.pop(key, None)
    for key, row in delta["rows"].items():  # type: ignore[union-attr]
        rows[key] = dict(row)
    epoch = doc["epoch"]
    records = []
    for key in sorted(rows, key=_row_sort_key):
        row = dict(rows[key])
        row["epoch"] = epoch
        records.append(row)
    doc["records"] = records
    return doc


def _copy_doc(doc: EpochDoc) -> EpochDoc:
    out = {k: v for k, v in doc.items() if k != "records"}
    out["records"] = [dict(r) for r in doc["records"]]  # type: ignore[union-attr]
    return out


@dataclass
class StoreConfig:
    """Retention and encoding policy of one :class:`EpochStore`."""

    #: Ring size: the store never holds more than this many epochs.
    retention: int = 1024
    #: A full keyframe every this many entries (deltas in between).
    #: Bounds the decode chain a range scan must walk.
    keyframe_interval: int = 64

    def __post_init__(self) -> None:
        if self.retention < 1:
            raise ValueError("retention must be >= 1")
        if self.keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")


class _Entry:
    __slots__ = ("epoch", "kind", "payload", "size")

    def __init__(self, epoch: int, kind: str, payload: EpochDoc) -> None:
        self.epoch = epoch
        self.kind = kind
        self.payload = payload
        self.size = canonical_bytes(payload)


class EpochStore:
    """Bounded, delta-encoded history of epoch records."""

    def __init__(self, config: Optional[StoreConfig] = None,
                 **config_kwargs) -> None:
        if config is None:
            config = StoreConfig(**config_kwargs)
        elif config_kwargs:
            raise ValueError("pass config or kwargs, not both")
        self.config = config
        self._entries: deque[_Entry] = deque()
        self._tail: Optional[EpochDoc] = None  # newest full document
        self._since_keyframe = 0
        #: Lifetime counters (monotonic; eviction does not reset them).
        self.appended = 0
        self.evicted = 0
        self.keyframes = 0
        self.promoted = 0
        #: Exact bytes of every stored payload, maintained incrementally.
        self.encoded_bytes = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, doc: EpochDoc) -> None:
        """Store one epoch document (newest; callers must not mutate it
        afterwards — the store keeps a reference)."""
        epoch = int(doc["epoch"])  # type: ignore[arg-type]
        if (self._tail is None
                or self._since_keyframe + 1 >= self.config.keyframe_interval):
            entry = _Entry(epoch, _KEYFRAME, doc)
            self._since_keyframe = 0
            self.keyframes += 1
        else:
            entry = _Entry(epoch, _DELTA, encode_delta(self._tail, doc))
            self._since_keyframe += 1
        self._entries.append(entry)
        self._tail = doc
        self.appended += 1
        self.encoded_bytes += entry.size
        while len(self._entries) > self.config.retention:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        oldest = self._entries.popleft()
        # Invariant: the first entry is always a keyframe (the first
        # append is one, and promotion below restores it after every
        # eviction), so the chain always decodes from the front.
        self.encoded_bytes -= oldest.size
        self.evicted += 1
        if self._entries and self._entries[0].kind == _DELTA:
            head = self._entries[0]
            full = apply_delta(oldest.payload, head.payload)
            promoted = _Entry(head.epoch, _KEYFRAME, full)
            self.encoded_bytes += promoted.size - head.size
            self._entries[0] = promoted
            self.promoted += 1
            self.keyframes += 1
        if not self._entries:
            self._tail = None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def min_epoch(self) -> Optional[int]:
        return self._entries[0].epoch if self._entries else None

    @property
    def max_epoch(self) -> Optional[int]:
        return self._entries[-1].epoch if self._entries else None

    def epochs(self) -> list[int]:
        """Stored epochs, ascending."""
        return sorted(e.epoch for e in self._entries)

    def scan(self, start: Optional[int] = None,
             end: Optional[int] = None) -> Iterator[EpochDoc]:
        """Decode stored documents in storage (resolution) order,
        yielding those with ``start <= epoch <= end``.  Yielded
        documents are fresh copies — callers may mutate them."""
        current: Optional[EpochDoc] = None
        for entry in self._entries:
            if entry.kind == _KEYFRAME:
                current = entry.payload
            else:
                assert current is not None
                current = apply_delta(current, entry.payload)
            if start is not None and entry.epoch < start:
                continue
            if end is not None and entry.epoch > end:
                continue
            # Always a copy: the generator suspends at yield, and the
            # caller may mutate the document before the next delta is
            # applied against ``current``.
            yield _copy_doc(current)

    def get(self, epoch: int) -> Optional[EpochDoc]:
        """The document for one epoch, or None if outside the ring."""
        for doc in self.scan(start=epoch, end=epoch):
            return doc
        return None

    def stats(self) -> dict[str, int]:
        """Counters + exact size, for service reporting and benches."""
        return {
            "entries": len(self._entries),
            "appended": self.appended,
            "evicted": self.evicted,
            "keyframes": self.keyframes,
            "promoted": self.promoted,
            "encoded_bytes": self.encoded_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EpochStore({len(self._entries)} entries, "
                f"epochs {self.min_epoch}..{self.max_epoch}, "
                f"{self.encoded_bytes} bytes)")
