"""Incremental epoch intake from the snapshot observer.

Batch mode collects snapshots after the run ends; a service cannot.
:class:`SnapshotStream` hooks the observer's resolution callback
(:meth:`~repro.core.observer.SnapshotObserver.on_resolved`) and hands
every epoch's final disposition downstream the moment it is known —
COMPLETE and PARTIAL snapshots by default (both carry records),
ABANDONED ones counted and dropped.  Consumption is push (subscribe) or
pull (drain); the pipeline drains synchronously on every notification,
so the stream itself holds at most the snapshots resolved inside one
simulation event.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator

from repro.core.observer import SnapshotObserver
from repro.core.snapshot import GlobalSnapshot, SnapshotStatus

#: Statuses forwarded downstream by default.
DEFAULT_STATUSES = (SnapshotStatus.COMPLETE, SnapshotStatus.PARTIAL)


class SnapshotStream:
    """Drains resolved epochs from an observer as the simulation runs."""

    def __init__(self, observer: SnapshotObserver,
                 statuses: tuple[SnapshotStatus, ...] = DEFAULT_STATUSES
                 ) -> None:
        self._statuses = tuple(statuses)
        self._pending: deque[GlobalSnapshot] = deque()
        self._listeners: list[Callable[[], None]] = []
        #: Epochs heard / filtered out (e.g. ABANDONED), lifetime.
        self.resolved = 0
        self.filtered = 0
        observer.on_resolved(self._on_resolved)

    def _on_resolved(self, snapshot: GlobalSnapshot) -> None:
        self.resolved += 1
        if snapshot.status not in self._statuses:
            self.filtered += 1
            return
        self._pending.append(snapshot)
        for listener in self._listeners:
            listener()

    def subscribe(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` whenever a new epoch becomes drainable."""
        self._listeners.append(listener)

    def drain(self) -> Iterator[GlobalSnapshot]:
        """Yield and remove everything pending, in resolution order."""
        while self._pending:
            yield self._pending.popleft()

    @property
    def pending(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SnapshotStream(pending={len(self._pending)}, "
                f"resolved={self.resolved}, filtered={self.filtered})")
