"""Snapshot-as-a-service: continuous epoch pipeline over the observer.

The batch layers answer "what did the network look like during that
trial?"; this package answers "what does the network look like *now*,
and what did it look like a moment ago?" — the §8 management-plane
consumer the paper motivates.  It is a pipeline of small parts:

* :mod:`~repro.service.stream` — incremental intake of resolved epochs
  from the observer (no end-of-run collection);
* :mod:`~repro.service.store` — delta-encoded, keyframed, hard-bounded
  epoch history with exact self-accounting of its size;
* :mod:`~repro.service.pipeline` — the continuous ticker plus a
  modeled, bounded ingest server with a coalescing backpressure policy;
* :mod:`~repro.service.query` — epoch-range, conservation, and
  heavy-hitter queries over the stored history;
* :mod:`~repro.service.smoke` — the service-under-faults invariant
  check wired into ``make chaos-smoke``.

Simulation-pure by construction: nothing in this package reads a wall
clock (enforced by ``repro.statics``); wall-clock throughput lives in
:mod:`repro.runtime.streaming`.
"""

from repro.service.pipeline import (ContinuousCampaign, PipelineConfig,
                                    SnapshotPipeline)
from repro.service.query import QueryEngine
from repro.service.store import (EpochStore, StoreConfig, apply_delta,
                                 canonical_bytes, encode_delta)
from repro.service.stream import SnapshotStream

__all__ = [
    "ContinuousCampaign",
    "EpochStore",
    "PipelineConfig",
    "QueryEngine",
    "SnapshotPipeline",
    "SnapshotStream",
    "StoreConfig",
    "apply_delta",
    "canonical_bytes",
    "encode_delta",
]
