"""Service-under-faults smoke check (the ``make chaos-smoke`` entry).

A control plane crashes mid-stream and comes back; the service must
shrug: the pipeline keeps ingesting, the delta store stays queryable
over the fault window, the recovery machinery (retries / exclusions /
inconsistency marking) leaves visible evidence in stored documents, and
the merged-epoch counters stay exposed end to end.  Runs in seconds —
liveness wiring, not statistics.

Usage: ``python -m repro.service.smoke`` (exit 0 = pass) or
:func:`run_fault_smoke` from tests.
"""

from __future__ import annotations

import json
import sys

from repro.analysis.invariants import LinkAudit
from repro.core.builder import deploy
from repro.service.pipeline import (ContinuousCampaign, PipelineConfig,
                                    SnapshotPipeline)
from repro.service.query import QueryEngine
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.topology.builders import leaf_spine
from repro.workloads.memcache import MemcacheConfig, MemcacheWorkload


def run_fault_smoke(seed: int = 42, epochs: int = 120,
                    interval_ns: int = 2 * MS,
                    crash_after_ticks: int = 60,
                    crash_duration_ns: int = 60 * MS) -> dict[str, object]:
    """Run the crash scenario; returns a verdict document.

    ``ok`` is True iff every liveness invariant held; ``problems``
    lists the ones that did not.
    """
    network = Network(
        leaf_spine(num_leaves=2, num_spines=1, hosts_per_leaf=2),
        NetworkConfig(seed=seed))
    sim = network.sim
    deployment = deploy(network, metric="packet_count")
    workload = MemcacheWorkload(network, MemcacheConfig(
        seed=seed, stop_ns=2**62, mean_request_gap_ns=400 * US))
    workload.start()
    pipeline = SnapshotPipeline(sim, deployment.observer,
                                config=PipelineConfig(
                                    retention=96, keyframe_interval=8,
                                    queue_capacity=8))
    campaign = ContinuousCampaign(sim, deployment.observer, interval_ns)
    campaign.start(max_ticks=epochs)

    victim = sorted(deployment.control_planes)[0]
    cp = deployment.control_planes[victim]
    crash_at = crash_after_ticks * interval_ns
    sim.schedule_at(crash_at, cp.crash)
    sim.schedule_at(crash_at + crash_duration_ns, cp.restart)

    # Campaign span plus the device-timeout tail so stranded epochs
    # resolve (PARTIAL or late-COMPLETE) before we judge the store.
    sim.run(until=epochs * interval_ns
            + deployment.config.observer.device_timeout_ns + 500 * MS)

    engine = QueryEngine(pipeline.store, link_audit=LinkAudit(network))
    summary = engine.summary()
    docs = engine.range()
    problems: list[str] = []
    if pipeline.ingested < epochs // 2:
        problems.append(f"pipeline stalled: only {pipeline.ingested} of "
                        f"{epochs} epochs ingested")
    if not docs:
        problems.append("store is empty — not queryable")
    if [d["epoch"] for d in docs] != sorted({d["epoch"] for d in docs}):
        problems.append("epoch range scan is not sorted/unique")
    if any("merged_epochs" not in d for d in docs):
        problems.append("stored documents lack merged_epochs counters")
    if "merged_epochs" not in summary:
        problems.append("summary lacks the merged-epoch counter")
    touched = [d for d in docs
               if d["status"] != "complete" or int(d["retries"]) > 0  # type: ignore[arg-type]
               or d["excluded_devices"] or not d["consistent"]]
    if not touched:
        problems.append("no stored epoch shows the crash (no retries, "
                        "partials, or exclusions) — fault did not land")
    conservation = engine.conservation()
    if conservation["violations"]:
        problems.append(f"conservation violations in stored history: "
                        f"{conservation['violations']}")
    return {
        "ok": not problems,
        "problems": problems,
        "victim": victim,
        "ingested": pipeline.ingested,
        "coalesced_epochs": pipeline.coalesced_epochs,
        "crash_touched_epochs": len(touched),
        "conservation": {"checked": conservation["checked"],
                         "skipped": conservation["skipped"]},
        "summary": summary,
    }


def main() -> int:
    verdict = run_fault_smoke()
    json.dump(verdict, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
