"""Space-parallel simulation: shards, boundary links, and the
conservative coordinator.

A large fabric is split at link boundaries into *shards*
(:func:`repro.sim.network.partition_topology`), each wrapped in its own
:class:`~repro.sim.engine.Simulator` inside a scoped
:class:`~repro.sim.network.Network`.  Cut links are replaced by
:class:`BoundaryLink` stubs that capture transmissions as timestamped
items instead of delivering them locally; a coordinator runs the shards
in conservative time-windowed rounds and exchanges the captured batches.

**Why this is safe** — the paper's system model (§4.1) is FIFO channels
with fixed propagation delay, which is exactly the classic conservative
PDES lookahead argument: let ``L`` be the minimum propagation delay over
all *cut* links and ``minN`` the earliest pending event across all
shards at the start of a round.  Every event executed during the round
has ``t >= minN``, so any packet captured at a boundary arrives at
``t + propagation >= minN + L``.  The round's horizon is
``min(minN + L, until + 1)``, hence every cross-shard arrival lands at
or after the horizon every shard has already reached — never in a
shard's past.  Control-plane messages that cross shards (record
shipping, initiation fan-out) ride the same transport and reserve at
least ``L`` of latency on top of whatever management-plane latency the
sender sampled locally, so they obey the same bound.

**Why this is deterministic** — each round is a barrier: the coordinator
waits for every shard, then sorts each destination's inbound items by
``(deliver_at, source shard id, per-source sequence)`` before the shard
injects them in that order.  Injection order assigns engine sequence
numbers, and the engine breaks timestamp ties by sequence number, so the
composed execution is a pure function of (topology, config, shard
count) — independent of worker scheduling, pipe timing, or the order in
which worker results happen to arrive.  ``shards=1`` skips all of this
and runs the plain single-process path, bit-identical to an unsharded
:class:`~repro.sim.network.Network` (the golden-trace test pins this).

See docs/SHARDING.md for the full contract.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any, Optional

from repro.sim.channel import Link, LossModel
from repro.sim.engine import Simulator
from repro.sim.network import (Network, NetworkConfig, cut_links,
                               partition_topology)
from repro.sim.packet import Packet
from repro.topology.graph import LinkSpec, Topology

__all__ = [
    "BoundaryLink",
    "InProcessShardRunner",
    "ProcessShardRunner",
    "ShardPlan",
    "ShardScope",
    "ShardWorker",
    "run_sharded",
]

#: Transport item kinds: a data-plane packet crossing a cut link, and a
#: control-plane payload addressed to a named mailbox.
_PKT = "pkt"
_CTRL = "ctrl"

#: A transport item: (kind, key, deliver_at, src_shard, src_seq, payload)
#: where key is a cut-link name (_PKT) or a mailbox name (_CTRL).
TransportItem = tuple


@dataclass(frozen=True)
class ShardPlan:
    """The deterministic partition of one topology into shards."""

    num_shards: int
    #: node name -> shard id, covering every switch and host.
    assignment: Mapping[str, int]
    #: Links whose endpoints live in different shards, in topology order.
    cut: tuple[LinkSpec, ...]
    #: Conservative lookahead: the minimum propagation delay over the
    #: cut links — the width floor of every coordination window.
    lookahead_ns: int

    @classmethod
    def for_topology(cls, topology: Topology, num_shards: int) -> "ShardPlan":
        assignment = partition_topology(topology, num_shards)
        cut = tuple(cut_links(topology, assignment))
        if num_shards > 1:
            if not cut:
                raise ValueError(
                    "partition produced no cut links; topology is "
                    "disconnected across shards in a degenerate way")
            lookahead = min(spec.propagation_ns for spec in cut)
            if lookahead < 1:
                raise ValueError(
                    "cut links must have positive propagation delay to "
                    "serve as conservative lookahead")
        else:
            lookahead = 0
        return cls(num_shards=num_shards, assignment=dict(assignment),
                   cut=cut, lookahead_ns=lookahead)

    def link_shards(self) -> dict[str, tuple[int, int]]:
        """Cut-link name -> (shard of endpoint a, shard of endpoint b)."""
        return {f"{s.a}-{s.b}": (self.assignment[s.a], self.assignment[s.b])
                for s in self.cut}

    def shard_nodes(self, shard_id: int) -> list[str]:
        return sorted(n for n, s in self.assignment.items() if s == shard_id)


class BoundaryLink(Link):
    """One shard's stub for a cut link.

    Only the local endpoint is attached.  :meth:`transmit` applies the
    link's up/loss state exactly like a real link, then *captures* the
    packet with its computed arrival time instead of scheduling local
    delivery; the coordinator carries the captured batch to the peer
    shard, whose twin stub injects it.  Capture preserves the FIFO
    floor under latency-spike faults, so the cross-shard direction obeys
    the same monotone-delivery guarantee as :meth:`Link._transmit_slow`.
    """

    def __init__(self, sim: Simulator, spec: LinkSpec,
                 loss: Optional[LossModel] = None) -> None:
        super().__init__(sim, spec.bandwidth_bps, spec.propagation_ns,
                         loss=loss, name=f"{spec.a}-{spec.b}")
        self._outbox: list[tuple[int, Packet]] = []
        self._out_floor = 0

    def transmit(self, sender, packet: Packet) -> bool:
        if not self.up:
            self.packets_dropped += 1
            return False
        if not self._lossless and self._loss.should_drop(packet):
            self.packets_dropped += 1
            return False
        at = self.sim.now + self.propagation_ns + self.extra_delay_ns
        if at < self._out_floor:
            at = self._out_floor  # FIFO under a draining latency spike
        self._out_floor = at
        self._outbox.append((at, packet))
        return True

    def drain(self) -> list[tuple[int, Packet]]:
        """Take and clear the captured (deliver_at, packet) batch."""
        out = self._outbox
        self._outbox = []
        return out

    def inject(self, deliver_at: int, packet: Packet) -> None:
        """Schedule delivery of an inbound cross-shard packet to the
        local endpoint (called in coordinator-merged order)."""
        receiver = self._endpoints[0]
        if receiver is None:
            raise RuntimeError(f"boundary link {self.name!r} has no "
                               "local endpoint")
        self.sim.inject_at(deliver_at, self._deliver, receiver, packet)


class ShardScope:
    """The :class:`~repro.sim.network.NetworkScope` of one shard: owns
    the nodes assigned to it and materialises cut links as
    :class:`BoundaryLink` stubs."""

    def __init__(self, plan: ShardPlan, shard_id: int) -> None:
        if not 0 <= shard_id < plan.num_shards:
            raise ValueError(f"shard_id {shard_id} out of range")
        self.plan = plan
        self.shard_id = shard_id
        #: cut-link name -> local stub, in topology link order.
        self.boundary_links: dict[str, BoundaryLink] = {}

    def owns(self, name: str) -> bool:
        return self.plan.assignment[name] == self.shard_id

    def boundary_link(self, sim: Simulator, spec: LinkSpec,
                      loss: Optional[LossModel] = None) -> Link:
        link = BoundaryLink(sim, spec, loss=loss)
        self.boundary_links[link.name] = link
        return link

    def remote_snapshot_enabled(self, name: str) -> bool:
        # Sharded deployments are full deployments: every switch across
        # every shard is snapshot-enabled, so cut-link egresses keep the
        # header on.  (Partial deployment composes with sharding only
        # when the boundary coincides with a shard, which nothing needs
        # yet.)
        return True


class ShardWorker:
    """One shard: a scoped :class:`Network` plus the transport glue.

    ``setup`` (if given) runs at construction with the worker as first
    argument; it installs workloads/deployments, registers control-plane
    mailboxes, and may return a zero-argument *finish* callable whose
    result :meth:`finish` returns after the run (this is what the
    process runner ships back over the pipe, so it must be picklable).
    """

    def __init__(self, topology: Topology, config: Optional[NetworkConfig],
                 plan: ShardPlan, shard_id: int,
                 setup: Optional[Callable[..., Any]] = None,
                 setup_args: Sequence[Any] = (),
                 busy_clock: Optional[Callable[[], float]] = None) -> None:
        self.plan = plan
        self.shard_id = shard_id
        #: Injected wall-clock (e.g. ``time.perf_counter`` from the perf
        #: layer); when set, :attr:`busy_s` accumulates the seconds this
        #: shard spent computing (vs waiting on the coordinator) — the
        #: per-shard critical-path measurement of the scaling benchmark.
        #: Injected rather than imported so simulation code stays free of
        #: wall-clock reads (DET002); never feeds back into event order.
        self._busy_clock = busy_clock
        self.busy_s = 0.0
        if plan.num_shards == 1:
            # The single-shard fast path *is* the existing single-process
            # path: a plain unscoped Network, bit-identical event stream.
            self.scope: Optional[ShardScope] = None
            self.network = Network(topology, config)
        else:
            self.scope = ShardScope(plan, shard_id)
            self.network = Network(topology, config, scope=self.scope)
        self.mailboxes: dict[str, Callable[[Any], None]] = {}
        self._ctrl_out: list[tuple[str, int, Any]] = []
        self._seq = 0
        self._finish: Callable[[], Any] = lambda: None
        if setup is not None:
            finish = setup(self, *setup_args)
            if finish is not None:
                self._finish = finish

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    # ------------------------------------------------------------------
    # Control-plane transport
    # ------------------------------------------------------------------
    def register_mailbox(self, name: str,
                         handler: Callable[[Any], None]) -> None:
        """Register a cross-shard control-plane destination.  Mailbox
        names must be globally unique; register them during ``setup`` —
        the coordinator learns the routing table once, at startup."""
        if name in self.mailboxes:
            raise ValueError(f"mailbox {name!r} already registered")
        self.mailboxes[name] = handler

    def send_ctrl(self, mailbox: str, payload: Any,
                  extra_ns: int = 0) -> None:
        """Send ``payload`` to a (possibly remote) mailbox.

        ``extra_ns`` is whatever latency the sender already sampled
        (e.g. a management-plane delay); the transport reserves at least
        the plan's lookahead so the delivery always lands at or beyond
        the next coordination horizon.
        """
        at = self.sim.now + max(int(extra_ns), self.plan.lookahead_ns)
        self._ctrl_out.append((mailbox, at, payload))

    # ------------------------------------------------------------------
    # Coordinator protocol
    # ------------------------------------------------------------------
    def next_time(self) -> Optional[int]:
        return self.sim.peek_time()

    def run_horizon(self, horizon: int) -> int:
        if self._busy_clock is None:
            return self.sim.run_horizon(horizon)
        started = self._busy_clock()
        try:
            return self.sim.run_horizon(horizon)
        finally:
            self.busy_s += self._busy_clock() - started

    def drain(self) -> list[TransportItem]:
        """Collect everything captured since the last round, stamped
        with this shard's monotone per-item sequence."""
        items: list[TransportItem] = []
        if self.scope is not None:
            for name, link in self.scope.boundary_links.items():
                for at, packet in link.drain():
                    items.append((_PKT, name, at, self.shard_id,
                                  self._seq, packet))
                    self._seq += 1
        for mailbox, at, payload in self._ctrl_out:
            items.append((_CTRL, mailbox, at, self.shard_id,
                          self._seq, payload))
            self._seq += 1
        self._ctrl_out = []
        return items

    def inject(self, items: Iterable[TransportItem]) -> None:
        """Inject coordinator-merged inbound items, in the given order
        (the order *is* the deterministic tie-break)."""
        sim = self.sim
        for kind, key, at, _src, _seq, payload in items:
            if at < sim.now:
                at = sim.now  # defensive; the lookahead bound prevents this
            if kind == _PKT:
                assert self.scope is not None
                self.scope.boundary_links[key].inject(at, payload)
            else:
                sim.inject_at(at, self.mailboxes[key], payload)

    def finish(self) -> Any:
        return self._finish()


# ----------------------------------------------------------------------
# Deterministic merge
# ----------------------------------------------------------------------

def _merge_key(item: TransportItem) -> tuple[int, int, int]:
    # (deliver_at, src shard, per-source seq) — a total order, so the
    # per-destination merge is independent of arrival order.
    return (item[2], item[3], item[4])


def _route(items: list[TransportItem],
           link_shards: Mapping[str, tuple[int, int]],
           mailbox_homes: Mapping[str, int]) -> dict[int, list[TransportItem]]:
    """Group outbound items by destination shard and sort each group by
    the deterministic merge key."""
    per: dict[int, list[TransportItem]] = {}
    for item in items:
        kind, key, _at, src = item[0], item[1], item[2], item[3]
        if kind == _PKT:
            a_shard, b_shard = link_shards[key]
            dest = b_shard if src == a_shard else a_shard
        else:
            try:
                dest = mailbox_homes[key]
            except KeyError:
                raise KeyError(f"no shard registered mailbox {key!r}") from None
        per.setdefault(dest, []).append(item)
    for group in per.values():
        group.sort(key=_merge_key)
    return per


def _effective_min(next_times: Sequence[Optional[int]],
                   pending: Mapping[int, list[TransportItem]]) -> Optional[int]:
    """Earliest pending event across all shards, counting routed-but-not-
    yet-injected items at their delivery times."""
    best: Optional[int] = None
    for shard_id, t in enumerate(next_times):
        for item in pending.get(shard_id, ()):
            at = item[2]
            if t is None or at < t:
                t = at
        if t is not None and (best is None or t < best):
            best = t
    return best


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------

class InProcessShardRunner:
    """All shards in one process, stepped round-robin.

    Functionally identical to :class:`ProcessShardRunner` minus the
    pipes — used by tests (the merge-order property test permutes
    ``order``, the sequence in which workers are stepped within each
    round, and asserts the composed execution does not change) and
    wherever process startup is not worth it.
    """

    def __init__(self, topology: Topology,
                 config: Optional[NetworkConfig] = None, *,
                 shards: int = 2,
                 setup: Optional[Callable[..., Any]] = None,
                 setup_args: Sequence[Any] = (),
                 plan: Optional[ShardPlan] = None,
                 order: Optional[Sequence[int]] = None,
                 busy_clock: Optional[Callable[[], float]] = None) -> None:
        self.plan = plan or ShardPlan.for_topology(topology, shards)
        self.workers = [ShardWorker(topology, config, self.plan, shard_id,
                                    setup, setup_args,
                                    busy_clock=busy_clock)
                        for shard_id in range(self.plan.num_shards)]
        self._order = (list(order) if order is not None
                       else list(range(self.plan.num_shards)))
        if sorted(self._order) != list(range(self.plan.num_shards)):
            raise ValueError(f"order must be a permutation of "
                             f"0..{self.plan.num_shards - 1}")
        self._link_shards = self.plan.link_shards()
        self._mailbox_homes: dict[str, int] = {}
        for worker in self.workers:
            for name in worker.mailboxes:
                if name in self._mailbox_homes:
                    raise ValueError(f"mailbox {name!r} registered by "
                                     "more than one shard")
                self._mailbox_homes[name] = worker.shard_id
        self.rounds = 0

    def run(self, until: int) -> list[Any]:
        plan = self.plan
        workers = self.workers
        if plan.num_shards == 1:
            workers[0].network.run(until=until)
            return [workers[0].finish()]
        pending: dict[int, list[TransportItem]] = {}
        while True:
            for i in self._order:
                workers[i].inject(pending.pop(i, []))
            next_times = [w.next_time() for w in workers]
            min_next = _effective_min(next_times, pending)
            if min_next is None or min_next > until:
                break
            horizon = min(min_next + plan.lookahead_ns, until + 1)
            outbound: list[TransportItem] = []
            for i in self._order:
                workers[i].run_horizon(horizon)
                outbound.extend(workers[i].drain())
            pending = _route(outbound, self._link_shards,
                             self._mailbox_homes)
            self.rounds += 1
        for i in self._order:
            workers[i].network.run(until=until)
        return [w.finish() for w in workers]


def _shard_worker_main(conn, topology: Topology,
                       config: Optional[NetworkConfig], plan: ShardPlan,
                       shard_id: int, setup: Optional[Callable[..., Any]],
                       setup_args: Sequence[Any]) -> None:
    """Worker-process loop: build the shard, then serve coordinator
    rounds over the pipe until the ``finish`` message."""
    worker = ShardWorker(topology, config, plan, shard_id, setup, setup_args)
    conn.send(("ready", worker.next_time(), sorted(worker.mailboxes)))
    while True:
        msg = conn.recv()
        if msg[0] == "step":
            _tag, horizon, items = msg
            worker.inject(items)
            worker.run_horizon(horizon)
            conn.send((worker.drain(), worker.next_time()))
        elif msg[0] == "finish":
            _tag, until, items = msg
            worker.inject(items)
            worker.network.run(until=until)
            conn.send(("done", worker.finish()))
            conn.close()
            return
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unknown coordinator message {msg[0]!r}")


def _default_context():
    # fork keeps worker startup cheap and inherits the built topology
    # object's page cache; determinism is unaffected either way because
    # the composed execution depends only on merged item order, which
    # the coordinator fixes.  spawn is the fallback where fork does not
    # exist (or is unreliable).
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class ProcessShardRunner:
    """Shards in worker processes, batches over pipes.

    ``setup``/``setup_args`` must be picklable (a module-level function
    plus plain-data arguments); each worker's ``finish`` return value is
    shipped back over the pipe and must be picklable too.
    """

    def __init__(self, topology: Topology,
                 config: Optional[NetworkConfig] = None, *,
                 shards: int = 2,
                 setup: Optional[Callable[..., Any]] = None,
                 setup_args: Sequence[Any] = (),
                 plan: Optional[ShardPlan] = None,
                 mp_context=None) -> None:
        self.plan = plan or ShardPlan.for_topology(topology, shards)
        ctx = mp_context or _default_context()
        self._conns = []
        self._procs = []
        for shard_id in range(self.plan.num_shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child, topology, config, self.plan, shard_id,
                      setup, setup_args),
                daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._link_shards = self.plan.link_shards()
        self._next_times: list[Optional[int]] = [None] * self.plan.num_shards
        self._mailbox_homes: dict[str, int] = {}
        for shard_id, conn in enumerate(self._conns):
            _tag, next_time, mailboxes = conn.recv()
            self._next_times[shard_id] = next_time
            for name in mailboxes:
                if name in self._mailbox_homes:
                    raise ValueError(f"mailbox {name!r} registered by "
                                     "more than one shard")
                self._mailbox_homes[name] = shard_id
        self.rounds = 0

    def run(self, until: int) -> list[Any]:
        plan = self.plan
        pending: dict[int, list[TransportItem]] = {}
        try:
            if plan.num_shards > 1:
                while True:
                    min_next = _effective_min(self._next_times, pending)
                    if min_next is None or min_next > until:
                        break
                    horizon = min(min_next + plan.lookahead_ns, until + 1)
                    for shard_id, conn in enumerate(self._conns):
                        conn.send(("step", horizon,
                                   pending.pop(shard_id, [])))
                    outbound: list[TransportItem] = []
                    for shard_id, conn in enumerate(self._conns):
                        out, next_time = conn.recv()
                        self._next_times[shard_id] = next_time
                        outbound.extend(out)
                    pending = _route(outbound, self._link_shards,
                                     self._mailbox_homes)
                    self.rounds += 1
            for shard_id, conn in enumerate(self._conns):
                conn.send(("finish", until, pending.pop(shard_id, [])))
            results: list[Any] = []
            for conn in self._conns:
                _tag, result = conn.recv()
                results.append(result)
            return results
        finally:
            self.close()

    def close(self) -> None:
        """Tear down worker processes (idempotent)."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        self._procs = []
        self._conns = []


def run_sharded(topology: Topology, config: Optional[NetworkConfig], *,
                shards: int, until: int,
                setup: Optional[Callable[..., Any]] = None,
                setup_args: Sequence[Any] = (),
                process: bool = True) -> list[Any]:
    """Run one sharded simulation end to end; returns the per-shard
    ``finish`` results in shard order.  ``shards=1`` runs the plain
    single-process path (in process, regardless of ``process``)."""
    if shards == 1 or not process:
        runner: Any = InProcessShardRunner(topology, config, shards=shards,
                                           setup=setup,
                                           setup_args=setup_args)
    else:
        runner = ProcessShardRunner(topology, config, shards=shards,
                                    setup=setup, setup_args=setup_args)
    return runner.run(until)
