"""In-simulation monitoring utilities.

These are *observer-side debugging tools for the simulation itself* —
omniscient, zero-cost probes used by tests and examples to establish
ground truth (e.g. "what was the queue really doing while polling
claimed X?").  They are deliberately outside the measurement system
under study: Speedlight and the polling baseline only ever see what a
real deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Simulator, US

if TYPE_CHECKING:  # import cycle: switch imports nothing from here,
    from repro.sim.switch import EgressUnit  # but keep runtime lazy anyway


@dataclass
class Sample:
    time_ns: int
    value: float


class PeriodicSampler:
    """Samples a callable at a fixed period into an in-memory series."""

    def __init__(self, sim: Simulator, fn: Callable[[], float],
                 period_ns: int = 10 * US, name: str = "") -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.fn = fn
        self.period_ns = period_ns
        self.name = name
        self.samples: list[Sample] = []
        self._running = False

    def start(self, stop_ns: Optional[int] = None) -> None:
        if self._running:
            return
        self._running = True
        self._stop_ns = stop_ns
        self.sim.schedule(self.period_ns, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self._stop_ns is not None and self.sim.now > self._stop_ns:
            self._running = False
            return
        self.samples.append(Sample(self.sim.now, float(self.fn())))
        self.sim.schedule(self.period_ns, self._tick)

    # ------------------------------------------------------------------
    # Series queries
    # ------------------------------------------------------------------
    @property
    def values(self) -> list[float]:
        return [s.value for s in self.samples]

    def max(self) -> float:
        if not self.samples:
            raise ValueError(f"sampler {self.name!r} has no samples")
        return max(self.values)

    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"sampler {self.name!r} has no samples")
        return sum(self.values) / len(self.samples)

    def value_at(self, time_ns: int) -> float:
        """Last sample at or before ``time_ns`` (step interpolation)."""
        best: Optional[Sample] = None
        for sample in self.samples:
            if sample.time_ns <= time_ns:
                best = sample
            else:
                break
        if best is None:
            raise ValueError(f"no sample at or before t={time_ns}")
        return best.value


class LinkLoadMonitor:
    """Ground-truth utilisation of an egress link over fixed windows.

    Wraps the egress queue's byte counter; per window, records
    bits-sent / capacity — the true load that EWMA registers and
    counters approximate.
    """

    def __init__(self, sim: Simulator, egress_unit: "EgressUnit",
                 bandwidth_bps: int,
                 window_ns: int = 100 * US) -> None:
        self.sim = sim
        self.egress = egress_unit
        self.bandwidth_bps = bandwidth_bps
        self.window_ns = window_ns
        self.utilization: list[tuple[int, float]] = []
        self._last_bytes = 0
        self._running = False

    def start(self, stop_ns: Optional[int] = None) -> None:
        if self._running:
            return
        self._running = True
        self._stop_ns = stop_ns
        self._last_bytes = self.egress.queue.bytes_sent
        self.sim.schedule(self.window_ns, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        if self._stop_ns is not None and self.sim.now > self._stop_ns:
            self._running = False
            return
        sent = self.egress.queue.bytes_sent
        bits = (sent - self._last_bytes) * 8
        self._last_bytes = sent
        capacity_bits = self.bandwidth_bps * self.window_ns / 1e9
        self.utilization.append((self.sim.now,
                                 bits / capacity_bits if capacity_bits else 0.0))
        self.sim.schedule(self.window_ns, self._tick)

    def peak(self) -> float:
        if not self.utilization:
            return 0.0
        return max(u for _t, u in self.utilization)

    def mean(self) -> float:
        if not self.utilization:
            return 0.0
        return sum(u for _t, u in self.utilization) / len(self.utilization)
