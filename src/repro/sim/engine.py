"""Discrete-event simulation engine.

The engine is a priority queue of timestamped events.  It is deliberately
small: everything interesting lives in the network model built on top of
it.  Design points that matter for reproducing the paper:

* **Integer nanosecond time.**  Floating-point time makes FIFO reasoning
  fragile (two packets scheduled "at the same instant" can reorder through
  rounding).  All timestamps are ``int`` nanoseconds.
* **Deterministic tie-breaking.**  Events scheduled for the same instant
  fire in the order they were scheduled (a monotonically increasing
  sequence number breaks ties).  This keeps simulations reproducible for a
  given seed, which the experiment harness relies on.
* **Cancellable events.**  Timers (retransmissions, snapshot re-initiation
  timeouts) need cancellation; cancelled events stay in the heap but are
  skipped when popped.
"""

from __future__ import annotations

import heapq
import numbers
from typing import Any, Callable, List, Optional

#: One nanosecond, the base time unit.
NS = 1
#: Nanoseconds per microsecond.
US = 1_000
#: Nanoseconds per millisecond.
MS = 1_000_000
#: Nanoseconds per second.
S = 1_000_000_000


def exact_ns(value: Any, what: str = "time") -> int:
    """Coerce ``value`` to an exact integer nanosecond count.

    Integral floats (e.g. ``2e6`` from config arithmetic) are accepted
    and converted exactly; non-integral values raise instead of being
    silently truncated — truncation would let float drift reorder
    events that FIFO/tie-break reasoning assumes are distinct instants.
    """
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        as_int = int(value)
        if as_int == value:
            return as_int
        raise ValueError(
            f"{what}={value!r} is not an integral nanosecond count; round "
            "explicitly at the call site if sub-ns precision is intended")
    raise TypeError(f"{what} must be an integer nanosecond count, "
                    f"got {type(value).__name__}")


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire in
    scheduling order.  Use :meth:`cancel` to prevent a pending event from
    firing; cancellation is O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state}, fn={self.fn!r})"


class Simulator:
    """A single-threaded discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(10 * US, my_callback, arg1, arg2)
        sim.run(until=1 * S)

    The simulator makes no assumptions about what the callbacks do; the
    network model schedules further events from within callbacks.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._events_run: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now.

        ``delay`` must be a non-negative exact integer (integral floats
        are accepted; fractional ones raise).  Returns the
        :class:`Event`, which can be cancelled.
        """
        delay = exact_ns(delay, "delay")
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``
        (an exact integer; fractional times raise)."""
        time = exact_ns(time, "time")
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap is empty or a limit is reached.

        ``until`` is an absolute time bound (inclusive); events scheduled
        after it remain pending and ``now`` advances to ``until``.
        ``max_events`` bounds the number of callbacks executed.  Returns
        the number of events executed by this call.
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.fn(*event.args)
                executed += 1
                self._events_run += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none left."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_run(self) -> int:
        """Total number of events executed over the simulator's lifetime."""
        return self._events_run

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending})"
