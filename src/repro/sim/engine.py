"""Discrete-event simulation engine.

The engine is a priority queue of timestamped events.  It is deliberately
small: everything interesting lives in the network model built on top of
it.  Design points that matter for reproducing the paper:

* **Integer nanosecond time.**  Floating-point time makes FIFO reasoning
  fragile (two packets scheduled "at the same instant" can reorder through
  rounding).  All timestamps are ``int`` nanoseconds.
* **Deterministic tie-breaking.**  Events scheduled for the same instant
  fire in the order they were scheduled (a monotonically increasing
  sequence number breaks ties).  This keeps simulations reproducible for a
  given seed, which the experiment harness relies on.
* **Cancellable events.**  Timers (retransmissions, snapshot re-initiation
  timeouts) need cancellation; a cancelled event's sequence number goes
  into a side table and is skipped when its heap entry is popped.

Performance notes (see docs/PERF.md): heap entries are plain
``(time, seq, fn, args)`` tuples, so ``heapq`` orders them with C-level
tuple comparison instead of a Python ``__lt__`` per comparison — at
millions of packet events per trial this is the single hottest path in
the repository.  Cancellation state lives outside the heap (an
:class:`Event` handle plus a seq side table) so the common case — events
that are never cancelled — pays nothing for cancellability.  Internal
hot paths that schedule trusted non-negative integer delays and never
cancel use :meth:`Simulator.schedule_fast`, which skips both validation
and handle allocation.
"""

from __future__ import annotations

import numbers
from heapq import heapify, heappop, heappush
from collections.abc import Callable
from typing import Any, Optional

#: One nanosecond, the base time unit.
NS = 1
#: Nanoseconds per microsecond.
US = 1_000
#: Nanoseconds per millisecond.
MS = 1_000_000
#: Nanoseconds per second.
S = 1_000_000_000

#: Compact the heap once at least this many events are cancelled *and*
#: they make up at least half of the heap (both bounds, so tiny heaps do
#: not thrash and huge heaps do not accumulate unbounded garbage).
_COMPACT_MIN_CANCELLED = 64


def exact_ns(value: Any, what: str = "time") -> int:
    """Coerce ``value`` to an exact integer nanosecond count.

    Integral floats (e.g. ``2e6`` from config arithmetic) are accepted
    and converted exactly; non-integral values raise instead of being
    silently truncated — truncation would let float drift reorder
    events that FIFO/tie-break reasoning assumes are distinct instants.
    """
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        as_int = int(value)
        if as_int == value:
            return as_int
        raise ValueError(
            f"{what}={value!r} is not an integral nanosecond count; round "
            "explicitly at the call site if sub-ns precision is intended")
    raise TypeError(f"{what} must be an integer nanosecond count, "
                    f"got {type(value).__name__}")


class Event:
    """A cancellation handle for a scheduled callback.

    The callback itself lives in the simulator's heap as a plain tuple;
    this handle only remembers enough identity — ``(time, seq)`` — to
    cancel it.  Use :meth:`cancel` to prevent a pending event from
    firing; cancellation is O(1) (amortised: a heap compaction runs when
    cancelled entries pile up).
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "_sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any],
                 sim: "Simulator") -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once,
        and a no-op once the event has already fired."""
        if self.cancelled:
            return
        sim = self._sim
        # Events execute in strict (time, seq) order, so the last-fired
        # key tells us exactly whether this one is still in the heap.
        if (self.time, self.seq) <= (sim._last_time, sim._last_seq):
            return  # already fired
        self.cancelled = True
        cancelled = sim._cancelled
        cancelled.add(self.seq)
        if (len(cancelled) >= _COMPACT_MIN_CANCELLED
                and 2 * len(cancelled) >= len(sim._heap)):
            sim._compact()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state}, fn={self.fn!r})"


class Simulator:
    """A single-threaded discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.schedule(10 * US, my_callback, arg1, arg2)
        sim.run(until=1 * S)

    The simulator makes no assumptions about what the callbacks do; the
    network model schedules further events from within callbacks.
    """

    def __init__(self) -> None:
        self.now: int = 0
        #: Heap of (time, seq, fn, args) tuples.
        self._heap: list[tuple[int, int, Callable[..., Any],
                               tuple[Any, ...]]] = []
        self._seq: int = 0
        self._events_run: int = 0
        self._running: bool = False
        #: Seqs of cancelled-but-still-heaped events (the side table).
        self._cancelled: set[int] = set()
        self._cancellations: int = 0  # lifetime count, for stats
        self._compactions: int = 0
        #: (time, seq) of the most recently executed event; lets
        #: ``Event.cancel`` detect fired events exactly.
        self._last_time: int = -1
        self._last_seq: int = -1
        #: Optional hook called as ``trace(time, seq, fn)`` before every
        #: executed event (golden-trace determinism tests).  Set it
        #: before calling :meth:`run`.
        self.trace: Optional[Callable[[int, int, Callable[..., Any]], None]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now.

        ``delay`` must be a non-negative exact integer (integral floats
        are accepted; fractional ones raise).  Returns the
        :class:`Event`, which can be cancelled.
        """
        if type(delay) is not int:  # exact-int fast path; bool et al. go slow
            delay = exact_ns(delay, "delay")
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, fn, args))
        return Event(time, seq, fn, self)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``
        (an exact integer; fractional times raise)."""
        if type(time) is not int:
            time = exact_ns(time, "time")
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, fn, args))
        return Event(time, seq, fn, self)

    def schedule_fast(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Uncancellable fast-path scheduling for internal machinery.

        Skips validation and handle allocation; ``delay`` must be a
        trusted non-negative ``int``.  Packet forwarding, link delivery
        and queue drain — the per-packet hot paths — use this.  Sequence
        numbers come from the same counter as :meth:`schedule`, so
        mixing the two preserves deterministic tie-breaking.
        """
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self.now + delay, seq, fn, args))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap is empty or a limit is reached.

        ``until`` is an absolute time bound (inclusive); events scheduled
        after it remain pending and ``now`` advances to ``until``.
        ``max_events`` bounds the number of callbacks executed.  Returns
        the number of events executed by this call.
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        cancelled = self._cancelled
        pop = heappop
        trace = self.trace
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                entry = heap[0]
                if cancelled and entry[1] in cancelled:
                    cancelled.discard(pop(heap)[1])
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                pop(heap)
                self.now = time
                self._last_time = time
                self._last_seq = entry[1]
                if trace is not None:
                    trace(time, entry[1], entry[2])
                entry[2](*entry[3])
                executed += 1
        finally:
            self._running = False
            self._events_run += executed
        if until is not None and self.now < until:
            self.now = until
        return executed

    def run_horizon(self, horizon: int) -> int:
        """Run every event *strictly before* ``horizon`` and advance
        ``now`` to exactly ``horizon``.

        This is the conservative-window entry point used by the sharded
        coordinator (:mod:`repro.sim.shard`): a worker that has run to a
        horizon is guaranteed never to execute another event before it,
        so cross-shard arrivals timestamped at or after the horizon can
        be injected without violating causality.  Returns the number of
        events executed.
        """
        if type(horizon) is not int:
            horizon = exact_ns(horizon, "horizon")
        if horizon < self.now:
            raise ValueError(
                f"cannot run to horizon t={horizon}, now is {self.now}")
        # run(until=...) is inclusive and then advances now to the bound,
        # so "strictly before horizon" is exactly until=horizon - 1.
        executed = self.run(until=horizon - 1)
        self.now = horizon
        return executed

    def inject_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Uncancellable absolute-time scheduling for trusted callers.

        The shard transport injects merged cross-shard batches with this:
        ``time`` must be a trusted ``int >= now``.  Sequence numbers come
        from the same counter as :meth:`schedule`, so injection order is
        the deterministic tie-break at equal timestamps.
        """
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, fn, args))

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none left."""
        return self.run(max_events=1) == 1

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Drop cancelled entries from the heap and re-heapify.

        Mutates ``_heap`` in place (``run`` holds a reference to the
        list), so a compaction triggered from inside a callback is safe.
        """
        cancelled = self._cancelled
        self._cancellations += len(cancelled)
        self._heap[:] = [e for e in self._heap if e[1] not in cancelled]
        heapify(self._heap)
        cancelled.clear()
        self._compactions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return len(self._heap) - len(self._cancelled)

    #: Alias with the stats-style name (see also ``cancelled_count``).
    pending_count = pending

    @property
    def cancelled_count(self) -> int:
        """Cancelled events still occupying heap slots (drops to zero
        after a compaction or once the entries are popped)."""
        return len(self._cancelled)

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed so far."""
        return self._compactions

    @property
    def events_run(self) -> int:
        """Total number of events executed over the simulator's lifetime."""
        return self._events_run

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        heap = self._heap
        cancelled = self._cancelled
        while heap and cancelled and heap[0][1] in cancelled:
            cancelled.discard(heappop(heap)[1])
        return heap[0][0] if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending})"
