"""Switch model: ports, processing units, fabric, egress queues.

The paper's system model (§4.1, Figure 2) views a switch as a set of
per-port, per-direction **processing units** connected by FIFO channels:

* every **ingress unit** has one external upstream neighbor (the device at
  the other end of the physical link) plus the local control plane;
* every **egress unit** has one upstream neighbor per ingress port of the
  same switch (packets can arrive from any of them) plus the control
  plane;
* the internal fabric connecting ingress to egress units is FIFO per
  (ingress, egress, class-of-service) triple.

Processing units are *linearizable*: they process one packet at a time in
arrival order.  The discrete-event engine gives us that for free — each
unit's handler runs to completion before any other event.

Snapshot logic is attached to units via the small
:class:`SnapshotAgent` interface so that :mod:`repro.core` (the protocol)
and :mod:`repro.sim` (the substrate) stay decoupled.  A unit with no
agent simply forwards packets untouched, which is exactly the partial
deployment story of §10.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional, Protocol

from repro.sim.engine import Simulator, US
from repro.sim.channel import Link
from repro.sim.packet import Packet, PacketType

#: Enum members cached at module level: the per-packet fast path does
#: identity checks against these instead of attribute-chasing the enum.
_DATA = PacketType.DATA
_INITIATION = PacketType.INITIATION
_PROBE = PacketType.PROBE

#: Channel ID an ingress unit uses for its single external upstream
#: neighbor (§5.1: "for ingress processing units, there is only one
#: upstream neighbor").
EXTERNAL_CHANNEL = 0

#: Channel ID for the local control plane.  The CPU is "treated as an
#: additional neighbor for the last seen array, though this value is only
#: used for rollover detection and not to detect snapshot completion" (§6).
CPU_CHANNEL = -1

#: Destination name marking a snapshot-propagation broadcast probe (§6,
#: "we can inject broadcasts into the network that force propagation of
#: snapshot IDs").  An ingress unit floods it to every other egress; an
#: egress forwards it over the wire only while the packet's TTL lasts and
#: the peer parses snapshot headers.
BROADCAST_DST = "__broadcast__"


class Direction(enum.Enum):
    """Which side of the port a processing unit sits on."""

    INGRESS = "ingress"
    EGRESS = "egress"


@dataclass(frozen=True)
class UnitId:
    """Globally unique name of a processing unit."""

    device: str
    port: int
    direction: Direction

    def __str__(self) -> str:
        return f"{self.device}:{self.port}:{self.direction.value}"


@dataclass(frozen=True)
class TraceEvent:
    """One packet's pass through one snapshot-enabled unit.

    Emitted to the network's trace sink when tracing is enabled; the
    causal-consistency checker (:mod:`repro.analysis.consistency`)
    replays these to validate every snapshot cut against ground truth.
    ``carried_sid`` is the (wrapped) ID the packet arrived with;
    ``unit_sid_after`` is the unit's (wrapped) ID after processing —
    i.e. the ID stamped into the departing packet.
    """

    packet_uid: int
    unit: UnitId
    time_ns: int
    carried_sid: int
    unit_sid_after: int
    channel: int
    is_data: bool
    size_bytes: int


class SnapshotAgent(Protocol):
    """What the data-plane snapshot logic must provide to a unit.

    Implemented by :class:`repro.core.dataplane.SpeedlightUnit` and
    :class:`repro.core.ideal.IdealUnit`.
    """

    def process_packet(self, packet: Packet, channel_id: int,
                       now_ns: int) -> int:
        """Run the snapshot logic for one packet.

        Receives the packet (whose snapshot header is guaranteed present)
        and the logical channel it arrived on; must return the snapshot
        ID to stamp into the header before the packet is forwarded (the
        unit's current ID).
        """
        ...  # pragma: no cover - protocol definition

    @property
    def sid(self) -> int:
        ...  # pragma: no cover - protocol definition


class CounterSet:
    """The set of data-plane counters attached to one processing unit.

    Counters are updated inline for every DATA packet traversing the
    unit; initiation packets are never counted (§6).

    Note on ordering: in this model the snapshot logic runs *before* the
    counter update.  The published pipeline diagrams place the counter
    update first, but the snapshot capture must store the *pre-update*
    register value (the stateful ALU returns the old value) for the
    Figure 3 cut semantics — a packet that triggers a new snapshot is
    itself post-snapshot, otherwise the receive of a post-snapshot send
    would land inside the snapshot and break causal consistency (the
    paper's own proof sketch, §4.2).  Running snapshot-then-update is the
    behaviourally equivalent ordering.
    """

    def __init__(self) -> None:
        self._counters: dict[str, "CounterLike"] = {}

    def add(self, name: str, counter: "CounterLike") -> None:
        if name in self._counters:
            raise ValueError(f"counter {name!r} already attached")
        self._counters[name] = counter

    def get(self, name: str) -> "CounterLike":
        return self._counters[name]

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def names(self) -> list[str]:
        return sorted(self._counters)

    def update_all(self, packet: Packet, now_ns: int) -> None:
        for counter in self._counters.values():
            counter.update(packet, now_ns)

    def read(self, name: str) -> int:
        """Read a counter's current value (the control-plane register read
        used by the polling baseline)."""
        return self._counters[name].read()


class CounterLike(Protocol):
    """Minimal counter interface (see :mod:`repro.counters`)."""

    def update(self, packet: Packet, now_ns: int) -> None:
        ...  # pragma: no cover - protocol definition

    def read(self) -> int:
        ...  # pragma: no cover - protocol definition


@dataclass
class SwitchConfig:
    """Static configuration of a switch."""

    #: Number of front-panel ports.
    num_ports: int = 16
    #: Constant ingress pipeline latency (parse + match-action stages).
    ingress_latency_ns: int = 300
    #: Constant egress pipeline latency.
    egress_latency_ns: int = 300
    #: Latency of the internal fabric between ingress and egress units.
    fabric_latency_ns: int = 400
    #: Latency of the ASIC→CPU notification path (PCIe DMA + raw socket).
    asic_cpu_latency_ns: int = 4 * US
    #: Number of class-of-service lanes per egress (strict priority,
    #: higher class first).  Each (ingress, egress, class) triple is its
    #: own FIFO logical channel in the snapshot system model (§4.1).
    num_cos: int = 1
    #: Per-egress buffer limit in packets (tail drop beyond it); None
    #: models an unbounded buffer.  Drops are one of the non-idealities
    #: the snapshot protocol explicitly tolerates (§4.2, §6).
    queue_capacity_packets: Optional[int] = None
    #: Record per-packet traces through snapshot units (memory-hungry;
    #: enabled by consistency tests, off for the big experiments).
    enable_tracing: bool = False


class _EgressQueue:
    """Store-and-forward output queue feeding the physical link.

    One queue per egress unit, with ``num_cos`` strict-priority lanes
    (higher class first; within a class, FIFO — the paper's CoS
    sub-channel model, §4.1).  Serialisation delay is computed per
    packet from ``ser_fn``; instantaneous depth in packets and bytes is
    itself a snapshottable metric (the queue-depth counter).
    """

    def __init__(self, sim: Simulator,
                 transmit: Optional[Callable[[Packet], None]] = None,
                 ser_fn: Optional[Callable[[Packet], int]] = None,
                 num_cos: int = 1,
                 capacity_packets: Optional[int] = None) -> None:
        if num_cos < 1:
            raise ValueError("need at least one CoS lane")
        if capacity_packets is not None and capacity_packets < 1:
            raise ValueError("capacity must be positive (or None)")
        self.sim = sim
        self.transmit = transmit
        self.ser_fn = ser_fn
        self.num_cos = num_cos
        self.capacity_packets = capacity_packets
        self._lanes: list[deque[Packet]] = [deque() for _ in range(num_cos)]
        #: Single-lane fast path: with one CoS (the paper's base model)
        #: lane selection and strict-priority scanning collapse away.
        self._only_lane: Optional[deque[Packet]] = (
            self._lanes[0] if num_cos == 1 else None)
        #: Waiting packets across all lanes (excludes the in-service one);
        #: maintained incrementally so depth checks are O(1).
        self._waiting = 0
        self.queued_bytes = 0
        self.busy = False
        #: Unit-stall fault flag (:mod:`repro.faults`): while paused the
        #: queue keeps accepting packets (up to capacity) but stops
        #: dequeuing, so latency builds up and tail drops appear — the
        #: "slow / stuck egress" failure mode.
        self.paused = False
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.max_depth_packets = 0

    @property
    def depth_packets(self) -> int:
        return self._waiting + (1 if self.busy else 0)

    @property
    def depth_bytes(self) -> int:
        return self.queued_bytes

    def lane_depth(self, cos: int) -> int:
        return len(self._lanes[cos])

    def _lane_of(self, packet: Packet) -> int:
        return min(max(packet.cos, 0), self.num_cos - 1)

    def push(self, packet: Packet) -> bool:
        """Enqueue a packet on its class's lane.

        Returns False on a tail drop (buffer at capacity).
        """
        depth = self._waiting + (1 if self.busy else 0)
        if (self.capacity_packets is not None
                and depth >= self.capacity_packets):
            self.packets_dropped += 1
            return False
        lane = self._only_lane
        if lane is None:
            lane = self._lanes[self._lane_of(packet)]
        lane.append(packet)
        self._waiting += 1
        self.queued_bytes += packet.size_bytes
        if depth + 1 > self.max_depth_packets:
            self.max_depth_packets = depth + 1
        if not self.busy and not self.paused:
            self._start_next()
        return True

    def _pop(self) -> Optional[Packet]:
        lane = self._only_lane
        if lane is not None:
            if lane:
                self._waiting -= 1
                return lane.popleft()
            return None
        # Strict priority: highest class first.
        for lane in reversed(self._lanes):
            if lane:
                self._waiting -= 1
                return lane.popleft()
        return None

    def _start_next(self) -> None:
        if self.paused:
            self.busy = False
            return
        packet = self._pop()
        if packet is None:
            self.busy = False
            return
        self.busy = True
        self.queued_bytes -= packet.size_bytes
        ser = self.ser_fn(packet)
        self.sim.schedule_fast(ser if ser > 0 else 1, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.transmit(packet)
        self._start_next()

    def pause(self) -> None:
        """Stall the dequeue side (the in-service packet still completes)."""
        self.paused = True

    def resume(self) -> None:
        """Resume servicing after a stall."""
        self.paused = False
        if not self.busy:
            self._start_next()


class _ProcessingUnit:
    """State shared by ingress and egress units."""

    def __init__(self, switch: "Switch", port: int, direction: Direction) -> None:
        self.switch = switch
        self.port_index = port
        self.unit_id = UnitId(switch.name, port, direction)
        self.counters = CounterSet()
        self.snapshot_agent: Optional[SnapshotAgent] = None
        self.packets_processed = 0

    @property
    def snapshot_enabled(self) -> bool:
        return self.snapshot_agent is not None

    def _run_snapshot(self, packet: Packet, channel_id: int) -> None:
        """Apply the snapshot agent to the packet's header, if any."""
        agent = self.snapshot_agent
        header = packet.snapshot
        if agent is None or header is None:
            return
        now = self.switch.sim.now
        carried = header.sid
        new_sid = agent.process_packet(packet, channel_id, now)
        header.sid = new_sid
        sink = self.switch.trace_sink
        if sink is not None:
            sink(TraceEvent(
                packet_uid=packet.uid, unit=self.unit_id, time_ns=now,
                carried_sid=carried, unit_sid_after=new_sid,
                channel=channel_id,
                is_data=header.packet_type is _DATA,
                size_bytes=packet.size_bytes))

    def read_counter(self, name: str) -> int:
        return self.counters.read(name)


class IngressUnit(_ProcessingUnit):
    """Per-port ingress processing (Figure 4).

    Pipeline: update counters → (push header if absent) → snapshot logic →
    forwarding lookup → fabric to the chosen egress unit.
    """

    def __init__(self, switch: "Switch", port: int) -> None:
        super().__init__(switch, port, Direction.INGRESS)

    def handle_packet(self, packet: Packet) -> None:
        self.packets_processed += 1
        sw = self.switch
        snapshot = packet.snapshot
        is_initiation = (snapshot is not None and
                         snapshot.packet_type is _INITIATION)
        # Protocol-internal packets (initiations and liveness probes)
        # drive snapshot state but are not measured traffic: they bypass
        # the unit counters, keeping port counters conserved across each
        # link (a probe may enter an ingress straight from the CPU, so
        # counting it would break the receiver ⊆ sender invariant that
        # analysis.invariants.LinkAudit checks).
        is_measured = snapshot is None or snapshot.packet_type is _DATA

        if self.snapshot_agent is not None:
            if snapshot is None:
                # First snapshot-enabled hop on this packet's path: push a
                # header carrying our current epoch.  A fresh header never
                # triggers a snapshot (sid equality) but does refresh the
                # external channel's last-seen entry, which is sound: host
                # channels carry no tagged in-flight packets, so every
                # host packet tagged here belongs to the current epoch.
                packet.push_snapshot_header(sid=self.snapshot_agent.sid)
            # Each CoS lane of the external link is its own FIFO logical
            # channel (§4.1); with one lane this reduces to
            # EXTERNAL_CHANNEL == 0.  A probe injected by our *own* CPU
            # never traversed the external link, so it runs on the CPU
            # channel — updating the external lane's Last Seen would
            # spoof the gate open while genuinely old packets are still
            # in flight from the neighbor (a probe that crossed the wire
            # arrived behind them, so the external lane is correct).
            if is_initiation or (not is_measured
                                 and packet.flow.src == sw._cpu_src):
                channel = CPU_CHANNEL
            else:
                channel = 0 if sw._single_cos else sw.cos_lane(packet)
            self._run_snapshot(packet, channel)
        elif is_initiation:
            # A disabled unit should never see initiations; drop defensively.
            return

        if is_measured:
            counters = self.counters._counters
            if counters:
                now = sw.sim.now
                for counter in counters.values():
                    counter.update(packet, now)

        if is_initiation:
            # Initiation travels CPU → ingress → egress of the *same* port
            # (Figure 6, path 3) and is dropped there after processing.
            sw.sim.schedule_fast(sw._ingress_fabric_ns,
                                 sw.ports[self.port_index].egress.handle_packet,
                                 packet, self.port_index)
            return

        # Hop limit (opt-in: only packets whose sender set a TTL).  The
        # expiry drop sits *after* the counter update so per-link counts
        # stay conserved — the receiver counted exactly what the sender
        # emitted; the packet merely dies here instead of forwarding.
        ttl = packet.ttl
        if ttl is not None:
            if ttl <= 0:
                sw.packets_ttl_expired += 1
                monitor = sw.drop_monitor
                if monitor is not None:
                    monitor(sw.name, "ttl_expired", packet, sw.sim.now)
                return
            packet.ttl = ttl - 1

        # Two-phase edge stamp: tag traffic entering through a stamped
        # (host-facing) port so it matches staged rules downstream.
        if sw.ingress_stamps and packet.route_tag is None:
            stamp = sw.ingress_stamps.get(self.port_index)
            if stamp is not None:
                packet.route_tag = stamp

        if packet.flow.dst == BROADCAST_DST:
            self._flood(packet, sw.config.ingress_latency_ns)
            return

        out_port = sw.forward(packet, self.port_index)
        if out_port is None:
            sw.packets_unroutable += 1
            monitor = sw.drop_monitor
            if monitor is not None:
                monitor(sw.name, "unroutable", packet, sw.sim.now)
            return
        sw.sim.schedule_fast(sw._ingress_fabric_ns,
                             sw.ports[out_port].egress.handle_packet,
                             packet, self.port_index)

    def _flood(self, packet: Packet, delay: int) -> None:
        """Replicate a broadcast probe to every other connected egress.

        The TTL (carried in ``payload``) bounds wire hops; replication
        itself does not consume TTL.  Each copy carries its own header so
        per-egress snapshot processing stays independent.
        """
        sw = self.switch
        ttl = packet.payload if isinstance(packet.payload, int) else 0
        for out_port in sw.connected_ports():
            if out_port == self.port_index:
                continue
            copy = Packet(flow=packet.flow, size_bytes=packet.size_bytes,
                          seq=packet.seq, created_ns=packet.created_ns,
                          cos=packet.cos, payload=ttl)
            if packet.snapshot is not None:
                copy.snapshot = packet.snapshot.copy()
            sw.sim.schedule_fast(delay + sw.config.fabric_latency_ns,
                                 sw.ports[out_port].egress.handle_packet,
                                 copy, self.port_index)


class EgressUnit(_ProcessingUnit):
    """Per-port egress processing (Figure 5).

    Pipeline: update counters → snapshot logic (channel = source ingress
    port) → pop header if the peer is not snapshot-enabled → serialise
    onto the link.
    """

    def __init__(self, switch: "Switch", port: int) -> None:
        super().__init__(switch, port, Direction.EGRESS)
        self.queue = _EgressQueue(
            switch.sim, transmit=self._transmit,
            ser_fn=self._serialization_ns,
            num_cos=switch.config.num_cos,
            capacity_packets=switch.config.queue_capacity_packets)
        #: Set during wiring: True when the link peer cannot parse the
        #: snapshot header (hosts always; disabled switches under partial
        #: deployment).
        self.strip_header_for_peer = True

    def _serialization_ns(self, packet: Packet) -> int:
        link = self.switch.ports[self.port_index].link
        ns = link.serialization_ns(packet.size_bytes)
        return ns if ns > 0 else 1

    def handle_packet(self, packet: Packet, from_ingress_port: int) -> None:
        self.packets_processed += 1
        sw = self.switch
        snapshot = packet.snapshot
        is_initiation = (snapshot is not None and
                         snapshot.packet_type is _INITIATION)

        if self.snapshot_agent is not None:
            if is_initiation:
                channel = CPU_CHANNEL
            elif sw._single_cos:
                channel = from_ingress_port
            else:
                channel = sw.egress_channel_id(from_ingress_port,
                                               sw.cos_lane(packet))
            self._run_snapshot(packet, channel)

        if is_initiation:
            # "...the egress unit ... drops the packet after processing" (§6)
            return

        # Probes are protocol-internal, never measured traffic (see the
        # ingress-side note): skip the unit counters so per-link counts
        # stay conserved even when floods die here (TTL exhausted).
        if snapshot is None or snapshot.packet_type is _DATA:
            counters = self.counters._counters
            if counters:
                now = sw.sim.now
                for counter in counters.values():
                    counter.update(packet, now)

        link = sw.ports[self.port_index].link
        if link is None:
            sw.packets_unroutable += 1
            return
        if packet.flow.dst == BROADCAST_DST:
            # Probe: forward over the wire only while TTL lasts and the
            # peer can parse the header; never bother hosts with probes.
            ttl = packet.payload if isinstance(packet.payload, int) else 0
            if ttl <= 0 or self.strip_header_for_peer:
                return
            packet.payload = ttl - 1
        if self.strip_header_for_peer:
            packet.strip_snapshot_header()
        self.queue.push(packet)

    def _transmit(self, packet: Packet) -> None:
        port = self.switch.ports[self.port_index]
        port.link.transmit(port, packet)

    # Queue depth is a first-class metric (§1, §2.2 examples).
    @property
    def queue_depth_packets(self) -> int:
        return self.queue.depth_packets

    @property
    def queue_depth_bytes(self) -> int:
        return self.queue.depth_bytes


class Port:
    """One front-panel port: an ingress unit, an egress unit, and a link."""

    def __init__(self, switch: "Switch", index: int) -> None:
        self.switch = switch
        self.index = index
        self.ingress = IngressUnit(switch, index)
        self.egress = EgressUnit(switch, index)
        self.link: Optional[Link] = None

    # -- LinkEndpoint protocol -----------------------------------------
    @property
    def endpoint_name(self) -> str:
        return f"{self.switch.name}:{self.index}"

    def receive_from_link(self, packet: Packet, link: Link) -> None:
        # statics: allow[SIM003] the port's link-facing entry point handing off to its own ingress unit
        self.ingress.handle_packet(packet)

    def connect(self, link: Link) -> None:
        if self.link is not None:
            raise RuntimeError(f"port {self.endpoint_name} already connected")
        self.link = link
        link.attach(self)


class LoadBalancer(Protocol):
    """Picks one egress port from an ECMP group (see :mod:`repro.lb`)."""

    def select(self, candidates: list[int], packet: Packet, now_ns: int) -> int:
        ...  # pragma: no cover - protocol definition


class _FirstPortBalancer:
    """Degenerate balancer: always the first candidate (deterministic)."""

    def select(self, candidates: list[int], packet: Packet, now_ns: int) -> int:
        return candidates[0]


class Switch:
    """A snapshot-capable switch.

    Forwarding is destination-based: :attr:`routes` maps a destination
    host name to the list of candidate egress ports (the ECMP group), and
    the attached :class:`LoadBalancer` picks one per packet.  Routes are
    installed by :class:`repro.sim.network.Network` from the topology.
    """

    def __init__(self, sim: Simulator, name: str,
                 config: Optional[SwitchConfig] = None,
                 lb: Optional[LoadBalancer] = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config or SwitchConfig()
        #: Hot-path precomputations from the (static) config: the
        #: combined ingress→fabric hop latency and the single-CoS flag
        #: that collapses lane/channel arithmetic.
        self._ingress_fabric_ns = (self.config.ingress_latency_ns
                                   + self.config.fabric_latency_ns)
        self._single_cos = self.config.num_cos == 1
        #: Flow source of this switch's own CPU-injected liveness probes
        #: (see ``SwitchControlPlane.inject_probes``); used to tell a
        #: locally injected probe from one that crossed the wire.
        self._cpu_src = f"{name}-cpu"
        self.ports: list[Port] = [Port(self, i) for i in range(self.config.num_ports)]
        self.routes: dict[str, list[int]] = {}
        self.lb: LoadBalancer = lb or _FirstPortBalancer()
        self.packets_unroutable = 0
        #: Packets dropped because their hop limit ran out (only packets
        #: whose sender set a TTL participate; see
        #: :attr:`repro.sim.packet.Packet.ttl`).  A spike of these inside
        #: an update window is the in-flight forwarding-loop signature
        #: the update verifier looks for (:mod:`repro.updates.verify`).
        self.packets_ttl_expired = 0
        #: Optional callback ``(device, kind, packet, time_ns)`` invoked
        #: on attributable data-plane drops (``kind`` is "ttl_expired" or
        #: "unroutable").  ``None`` — the default — costs one attribute
        #: load on the drop path and nothing on the forward path.
        self.drop_monitor: Optional[Callable[[str, str, Packet, int], None]] = None
        #: FIB versioning for forwarding-state snapshots (§10): every
        #: route install/update bumps the generation and tags the rule;
        #: the last version matched at each ingress is a data-plane
        #: register the snapshot primitive can capture.  After topology
        #: build, :meth:`seal_fib` re-baselines the install-time bumps to
        #: generation 0 so coordinated updates (:mod:`repro.updates`)
        #: count from a common origin.
        self.fib_generation = 0
        self.route_version: dict[str, int] = {}
        self.last_matched_version: list[int] = [0] * self.config.num_ports
        #: Atomic table flips applied via :meth:`apply_route_swap`.
        self.route_swaps = 0
        #: Two-phase-update staging: rule tag -> dst -> candidate ports.
        #: Staged rules are invisible to untagged traffic; a packet whose
        #: ``route_tag`` names a staged set matches it in preference to
        #: the base FIB (install-then-flip, §10's versioned rules).
        self.staged_routes: dict[str, dict[str, list[int]]] = {}
        #: Per-port edge stamps: packets entering through a stamped port
        #: get the tag written into ``route_tag`` (the "flip" half of a
        #: two-phase update, applied at host-facing ports only).
        self.ingress_stamps: dict[int, str] = {}
        #: Callback used by snapshot agents to ship notifications to the
        #: local control plane; installed by the control plane at attach.
        self.notification_sink: Optional[Callable[[object], None]] = None
        #: Optional sink receiving a :class:`TraceEvent` per snapshot-unit
        #: packet pass (set by the network when tracing is enabled).
        self.trace_sink: Optional[Callable[[TraceEvent], None]] = None

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def install_route(self, dst: str, ports: list[int]) -> None:
        """Install or update the route for ``dst``.

        Every install bumps the FIB generation and tags the rule with it
        ("the control plane can ensure every FIB rule and version tags
        passing packets with a unique ID", §10) so forwarding state is
        snapshottable via the ``fib_version`` metric.
        """
        if not ports:
            raise ValueError(f"route to {dst!r} needs at least one port")
        for p in ports:
            if not 0 <= p < len(self.ports):
                raise ValueError(f"port {p} out of range for {self.name}")
        self.routes[dst] = list(ports)
        self.fib_generation += 1
        self.route_version[dst] = self.fib_generation

    def seal_fib(self) -> None:
        """Re-baseline FIB versioning after topology build.

        :meth:`install_route` bumps the generation per install, so a
        freshly built network encodes its construction order in the
        generation numbers (leaf0 ends at N, spine1 at M…).  Sealing
        declares the current table to be *the* initial forwarding state:
        generation 0, every rule tagged 0, every ``last_matched_version``
        register cleared.  Update experiments then read "device is on
        generation g" uniformly across devices.  Called once by
        :class:`repro.sim.network.Network` right after route
        installation; later installs/swaps count up from the seal.
        """
        self.fib_generation = 0
        for dst in self.route_version:
            self.route_version[dst] = 0
        registers = self.last_matched_version
        for i in range(len(registers)):
            registers[i] = 0

    def apply_route_swap(self, changes: list) -> int:
        """Apply a batch of route changes as one atomic table flip.

        ``changes`` is a list of ``(dst, ports)`` pairs; an empty/None
        ``ports`` removes the route (deliberate black-holing, e.g. a
        drain).  Modeled as a Time4-style double-buffered table swap: the
        shadow table (current routes + changes) becomes active in a
        single write, so the generation bumps **exactly once** no matter
        how many rules changed, every surviving rule is re-tagged with
        the new generation, and the per-ingress ``last_matched_version``
        registers — part of the same table memory — are refreshed to it.
        The refresh is what makes "which generation is this device on?"
        well-defined even for ports idle since the flip; only subsequent
        matches against rules of an *older* generation (impossible
        locally, visible cross-device through snapshot propagation) can
        lower the answer.
        """
        generation = self.fib_generation + 1
        for dst, ports in changes:
            if ports:
                for p in ports:
                    if not 0 <= p < len(self.ports):
                        raise ValueError(
                            f"port {p} out of range for {self.name}")
                self.routes[dst] = list(ports)
            else:
                self.routes.pop(dst, None)
                self.route_version.pop(dst, None)
        self.fib_generation = generation
        for dst in self.routes:
            self.route_version[dst] = generation
        registers = self.last_matched_version
        for i in range(len(registers)):
            registers[i] = generation
        self.route_swaps += 1
        return generation

    def schedule_route_swap(self, at_true_ns: int, changes: list,
                            on_applied: Optional[
                                Callable[[int, int], None]] = None) -> None:
        """Schedule :meth:`apply_route_swap` at a true-time instant.

        The caller (:mod:`repro.updates.driver`) converts the plan's
        scheduled wall instant through this device's *local* clock first,
        so real PTP error skews when the swap actually fires — exactly
        the skew the snapshot verifier measures.  The swap is modeled as
        hardware-timed (Time4's timed ``add``/``delete``): it fires at
        the scheduled instant with no CPU wakeup jitter.
        ``on_applied(generation, true_ns)`` runs right after the flip
        (driver-side logging).
        """
        at = at_true_ns if at_true_ns > self.sim.now else self.sim.now
        self.sim.schedule_at(at, self._apply_scheduled_swap, list(changes),
                             on_applied)

    def _apply_scheduled_swap(self, changes: list,
                              on_applied: Optional[
                                  Callable[[int, int], None]]) -> None:
        generation = self.apply_route_swap(changes)
        if on_applied is not None:
            on_applied(generation, self.sim.now)

    # -- two-phase (install-then-flip) staging --------------------------
    def stage_routes(self, tag: str, changes: list) -> None:
        """Install tagged shadow rules for a two-phase update.

        Staged rules never affect untagged traffic; route removals are
        deferred to the commit swap (a staged "remove" would black-hole
        tagged packets mid-transition).
        """
        staged = self.staged_routes.setdefault(tag, {})
        for dst, ports in changes:
            if not ports:
                continue
            for p in ports:
                if not 0 <= p < len(self.ports):
                    raise ValueError(f"port {p} out of range for {self.name}")
            staged[dst] = list(ports)

    def clear_staged(self, tag: str) -> None:
        """Drop one tag's staged rule set (two-phase cleanup)."""
        self.staged_routes.pop(tag, None)

    def set_ingress_stamp(self, port: int, tag: Optional[str]) -> None:
        """Set or clear the edge stamp on one port (two-phase "flip")."""
        if tag is None:
            self.ingress_stamps.pop(port, None)
        else:
            self.ingress_stamps[port] = tag

    def forward(self, packet: Packet, in_port: int) -> Optional[int]:
        """Forwarding lookup + load-balancer selection.

        Stores the matched rule's version tag into the per-ingress
        ``last_matched_version`` register (the §10 forwarding-state
        snapshot target).  A packet carrying a ``route_tag`` with a
        matching staged rule set uses it in preference to the base FIB;
        staged rules are tagged with the generation they will commit as.
        """
        tag = packet.route_tag
        if tag is not None and self.staged_routes:
            staged = self.staged_routes.get(tag)
            if staged is not None:
                candidates = staged.get(packet.dst)
                if candidates is not None:
                    self.last_matched_version[in_port] = self.fib_generation + 1
                    if len(candidates) == 1:
                        return candidates[0]
                    return self.lb.select(candidates, packet, self.sim.now)
        candidates = self.routes.get(packet.dst)
        if not candidates:
            return None
        self.last_matched_version[in_port] = self.route_version[packet.dst]
        if len(candidates) == 1:
            return candidates[0]
        return self.lb.select(candidates, packet, self.sim.now)

    # ------------------------------------------------------------------
    # CoS channel numbering
    # ------------------------------------------------------------------
    def cos_lane(self, packet: Packet) -> int:
        """The CoS lane a packet travels in (clamped to configured lanes)."""
        return min(max(packet.cos, 0), self.config.num_cos - 1)

    def egress_channel_id(self, ingress_port: int, cos: int) -> int:
        """Logical channel ID at an egress unit for traffic arriving from
        ``ingress_port`` in class ``cos``.  With a single CoS lane this is
        just the ingress port number (the paper's base model); with more,
        every (port, class) pair is a distinct FIFO channel (§4.1)."""
        return ingress_port * self.config.num_cos + cos

    # ------------------------------------------------------------------
    # Unit access helpers
    # ------------------------------------------------------------------
    def unit(self, port: int, direction: Direction) -> _ProcessingUnit:
        p = self.ports[port]
        return p.ingress if direction is Direction.INGRESS else p.egress

    def all_units(self) -> list[_ProcessingUnit]:
        units: list[_ProcessingUnit] = []
        for port in self.ports:
            units.append(port.ingress)
            units.append(port.egress)
        return units

    def snapshot_units(self) -> list[_ProcessingUnit]:
        return [u for u in self.all_units() if u.snapshot_enabled]

    def connected_ports(self) -> list[int]:
        return [p.index for p in self.ports if p.link is not None]

    def send_notification(self, notification: object) -> None:
        """Ship a notification over the ASIC→CPU channel."""
        if self.notification_sink is None:
            return
        self.sim.schedule_fast(self.config.asic_cpu_latency_ns,
                               self.notification_sink, notification)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name}, ports={len(self.ports)})"
