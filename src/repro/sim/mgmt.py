"""Management-plane messaging.

The snapshot observer talks to device control planes over the management
network (out-of-band in the paper's testbed: the observer "broadcasts a
request to every device in the network", §3).  This channel is *not* the
data plane: it has millisecond-free but non-zero latency and jitter, and
its delays do not affect snapshot consistency — only how far in advance
the observer must schedule a snapshot.

The same channel carries the baseline polling framework's per-port read
requests, whose ~1 ms per-counter round trip (§2.1, [41]) is the reason
polling synchronises so poorly in Figure 9.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import Any

from repro.sim.engine import Simulator, US


class ManagementPlane:
    """Delivers messages between management endpoints with jittered latency."""

    def __init__(self, sim: Simulator, rng: random.Random,
                 base_latency_ns: int = 50 * US,
                 jitter_ns: int = 20 * US) -> None:
        if base_latency_ns < 0 or jitter_ns < 0:
            raise ValueError("latencies must be non-negative")
        self.sim = sim
        self.rng = rng
        self.base_latency_ns = base_latency_ns
        self.jitter_ns = jitter_ns
        self.messages_sent = 0
        #: Jitter draws batched ahead of use (this RNG stream has no
        #: other consumer, so batching preserves the exact draw order
        #: and keeps results bit-identical to per-call sampling).
        self._jitter_buf: list = []

    def one_way_latency_ns(self) -> int:
        """Sample a one-way delivery latency."""
        if not self.jitter_ns:
            return self.base_latency_ns
        buf = self._jitter_buf
        if not buf:
            uniform = self.rng.uniform
            jitter_ns = self.jitter_ns
            buf.extend(int(uniform(0, jitter_ns)) for _ in range(256))
            buf.reverse()  # pop() must consume in draw order
        return self.base_latency_ns + buf.pop()

    def send(self, deliver: Callable[..., Any], *args: Any) -> None:
        """Deliver ``deliver(*args)`` after one sampled one-way latency."""
        self.messages_sent += 1
        self.sim.schedule(self.one_way_latency_ns(), deliver, *args)

    def request(self, handler: Callable[..., Any], reply: Callable[..., Any],
                *args: Any) -> None:
        """A request/response exchange.

        ``handler(*args)`` runs at the remote side after one one-way
        latency; its return value is delivered to ``reply`` after another
        one-way latency.  This is the primitive behind counter polling.
        """
        def _at_remote() -> None:
            result = handler(*args)
            self.sim.schedule(self.one_way_latency_ns(), reply, result)

        self.messages_sent += 1
        self.sim.schedule(self.one_way_latency_ns(), _at_remote)
