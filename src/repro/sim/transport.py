"""A reliable, windowed transport over the simulated network.

The paper's workloads run over TCP; the open-loop generators in
:mod:`repro.workloads` reproduce their traffic *texture*, which is all
the measurement study needs.  This module adds the complementary piece
for experiments that must react to loss and congestion: a Go-Back-N
transport with cumulative ACKs, retransmission timers and a fixed
window.  It is intentionally simple (no congestion control beyond the
window; TCP dynamics are out of scope per DESIGN.md) but fully
functional: byte streams arrive completely and in order over lossy,
multipath networks.

Usage::

    flow = ReliableFlow(network, "server0", "server3",
                        total_packets=500, window=32)
    flow.start()
    network.run(until=...)
    assert flow.complete

Protocol framing (over the simulator's packets):

* DATA: ``flow=(src, dst, sport, dport)``, ``seq`` = sequence number,
  ``payload='DATA'``;
* ACK: reversed flow, ``seq`` = cumulative (next expected) sequence,
  ``payload='ACK'``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import MS, Simulator
from repro.sim.network import Network
from repro.sim.packet import FlowKey, Packet

_port_allocator = itertools.count(40_000)


@dataclass
class TransportStats:
    data_sent: int = 0
    retransmissions: int = 0
    acks_received: int = 0
    acks_sent: int = 0
    out_of_order_drops: int = 0


class ReliableFlow:
    """One Go-Back-N transfer between two hosts."""

    def __init__(self, network: Network, src: str, dst: str, *,
                 total_packets: int, size_bytes: int = 1500,
                 window: int = 32, timeout_ns: int = 2 * MS,
                 sport: Optional[int] = None,
                 dport: Optional[int] = None) -> None:
        if total_packets < 1:
            raise ValueError("need at least one packet")
        if window < 1:
            raise ValueError("window must be positive")
        self.network = network
        self.sim: Simulator = network.sim
        self.src_host = network.host(src)
        self.dst_host = network.host(dst)
        self.total_packets = total_packets
        self.size_bytes = size_bytes
        self.window = window
        self.timeout_ns = timeout_ns
        self.sport = sport if sport is not None else next(_port_allocator)
        self.dport = dport if dport is not None else next(_port_allocator)
        self.flow = FlowKey(src, dst, self.sport, self.dport)
        self.stats = TransportStats()

        # Sender state (Go-Back-N).
        self._base = 0          # oldest unacknowledged sequence
        self._next_seq = 0      # next sequence to send
        self._timer = None
        self._started = False
        self.completed_ns: Optional[int] = None

        # Receiver state.
        self._expected = 0
        self.delivered: list[int] = []

        self.dst_host.listen(self.dport, self._on_data)
        self.src_host.listen(self.sport, self._on_ack)

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._fill_window()

    @property
    def complete(self) -> bool:
        return self._base >= self.total_packets

    def _fill_window(self) -> None:
        while (self._next_seq < self._base + self.window
               and self._next_seq < self.total_packets):
            self._send_data(self._next_seq)
            self._next_seq += 1
        self._arm_timer()

    def _send_data(self, seq: int) -> None:
        self.stats.data_sent += 1
        self.src_host.send_packet(Packet(
            flow=self.flow, size_bytes=self.size_bytes, seq=seq,
            payload="DATA"))

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self.complete:
            self._timer = self.sim.schedule(self.timeout_ns, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if self.complete:
            return
        # Go-Back-N: resend the whole outstanding window.
        for seq in range(self._base, self._next_seq):
            self.stats.retransmissions += 1
            self._send_data(seq)
        self._arm_timer()

    def _on_ack(self, packet: Packet) -> None:
        if packet.payload != "ACK":
            return
        self.stats.acks_received += 1
        cumulative = packet.seq
        if cumulative > self._base:
            self._base = cumulative
            if self.complete:
                self.completed_ns = self.sim.now
                if self._timer is not None:
                    self._timer.cancel()
                    self._timer = None
            else:
                self._fill_window()

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        if packet.payload != "DATA":
            return
        if packet.seq == self._expected:
            self._expected += 1
            self.delivered.append(packet.seq)
        elif packet.seq > self._expected:
            # Go-Back-N receivers drop out-of-order segments.
            self.stats.out_of_order_drops += 1
        self._send_ack()

    def _send_ack(self) -> None:
        self.stats.acks_sent += 1
        self.dst_host.send_packet(Packet(
            flow=self.flow.reversed(), size_bytes=64, seq=self._expected,
            payload="ACK"))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_order(self) -> bool:
        return self.delivered == list(range(len(self.delivered)))

    def goodput_bps(self) -> float:
        if self.completed_ns is None or self.completed_ns == 0:
            return 0.0
        return (self.total_packets * self.size_bytes * 8 * 1e9
                / self.completed_ns)

    def close(self) -> None:
        """Release the port listeners (e.g. before reusing ports)."""
        self.dst_host.unlisten(self.dport)
        self.src_host.unlisten(self.sport)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReliableFlow({self.flow.src}->{self.flow.dst}, "
                f"{self._base}/{self.total_packets}, "
                f"retx={self.stats.retransmissions})")
