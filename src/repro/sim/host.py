"""End hosts: traffic sources and sinks.

Hosts are deliberately simple — the paper's workloads exercise the
*network*, and Speedlight explicitly requires no host cooperation (§5.1).
A host can:

* send packets or whole flows (open-loop, paced at its NIC rate),
* receive packets and keep per-flow accounting that workloads and tests
  inspect,
* host the snapshot observer / polling observer processes (those live in
  :mod:`repro.core.observer` and :mod:`repro.polling` and merely use the
  host's name as their vantage point).

Hosts never see snapshot headers: the last snapshot-enabled egress unit
pops the header before the packet reaches the host link.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional

from repro.sim.engine import Simulator, exact_ns
from repro.sim.channel import Link
from repro.sim.packet import FlowKey, Packet
from repro.sim.switch import _EgressQueue


@dataclass
class FlowRecord:
    """Receiver-side accounting for one flow."""

    flow: FlowKey
    packets: int = 0
    bytes: int = 0
    first_arrival_ns: Optional[int] = None
    last_arrival_ns: Optional[int] = None

    def note(self, packet: Packet, now_ns: int) -> None:
        self.packets += 1
        self.bytes += packet.size_bytes
        if self.first_arrival_ns is None:
            self.first_arrival_ns = now_ns
        self.last_arrival_ns = now_ns


class Host:
    """A server attached to the network by a single link."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.link: Optional[Link] = None
        self._nic = _EgressQueue(sim, transmit=self._transmit,
                                 ser_fn=self._serialization_ns)
        self.received: dict[FlowKey, FlowRecord] = {}
        self.packets_received = 0
        self.bytes_received = 0
        self.packets_sent = 0
        #: When set, every packet leaving this host without an explicit
        #: TTL gets this hop limit (IP-style; switches decrement it and
        #: expire packets at zero).  ``None`` — the default — disables
        #: TTL processing entirely, so pre-existing scenarios and the
        #: golden trace are untouched.  Update experiments set a tight
        #: limit to turn transient forwarding loops into countable
        #: ``packets_ttl_expired`` drops (:mod:`repro.updates`).
        self.default_ttl: Optional[int] = None
        #: Optional callback invoked on every received packet (used by
        #: request/response workloads such as the memcache generator).
        self.on_receive: Optional[Callable[[Packet], None]] = None
        #: Destination-port listeners (transport endpoints); a packet
        #: whose dport has a listener is delivered to it after the
        #: generic accounting/callback.
        self._listeners: dict[int, Callable[[Packet], None]] = {}

    # -- LinkEndpoint protocol -----------------------------------------
    @property
    def endpoint_name(self) -> str:
        return self.name

    def connect(self, link: Link) -> None:
        if self.link is not None:
            raise RuntimeError(f"host {self.name} already connected")
        self.link = link
        link.attach(self)

    def receive_from_link(self, packet: Packet, link: Link) -> None:
        if packet.snapshot is not None:
            # Defensive: headers must be stripped before host delivery.
            packet.strip_snapshot_header()
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        record = self.received.get(packet.flow)
        if record is None:
            record = self.received[packet.flow] = FlowRecord(packet.flow)
        record.note(packet, self.sim.now)
        if self.on_receive is not None:
            self.on_receive(packet)
        listener = self._listeners.get(packet.flow.dport)
        if listener is not None:
            listener(packet)

    # ------------------------------------------------------------------
    # Transport support
    # ------------------------------------------------------------------
    def listen(self, dport: int, handler: Callable[[Packet], None]) -> None:
        """Register a handler for packets addressed to ``dport``."""
        if dport in self._listeners:
            raise ValueError(f"{self.name} already listens on {dport}")
        self._listeners[dport] = handler

    def unlisten(self, dport: int) -> None:
        self._listeners.pop(dport, None)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_packet(self, packet: Packet) -> None:
        """Queue one packet on the NIC (serialised at link rate)."""
        if self.link is None:
            raise RuntimeError(f"host {self.name} is not connected")
        self.packets_sent += 1
        packet.created_ns = self.sim.now
        if packet.ttl is None and self.default_ttl is not None:
            packet.ttl = self.default_ttl
        self._nic.push(packet)

    def _serialization_ns(self, packet: Packet) -> int:
        ns = self.link.serialization_ns(packet.size_bytes)
        return ns if ns > 0 else 1

    def _transmit(self, packet: Packet) -> None:
        assert self.link is not None
        self.link.transmit(self, packet)

    def send_flow(self, dst: str, num_packets: int, *, sport: int, dport: int,
                  size_bytes: int = 1500, gap_ns: int = 0,
                  start_delay_ns: int = 0, proto: int = 6) -> FlowKey:
        """Send ``num_packets`` packets of a flow, ``gap_ns`` apart.

        With ``gap_ns=0`` the NIC paces the flow at line rate.  Returns
        the flow key so callers can look up receiver-side records.
        """
        flow = FlowKey(self.name, dst, sport, dport, proto)

        if type(gap_ns) is not int:
            gap_ns = exact_ns(gap_ns, "gap_ns")
        gap = gap_ns if gap_ns > 1 else 1

        def emit(seq: int) -> None:
            self.send_packet(Packet(flow=flow, size_bytes=size_bytes, seq=seq))
            if seq + 1 < num_packets:
                self.sim.schedule_fast(gap, emit, seq + 1)

        if num_packets > 0:
            self.sim.schedule(start_delay_ns, emit, 0)
        return flow

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nic_queue_depth(self) -> int:
        return self._nic.depth_packets

    def flow_throughput_bps(self, flow: FlowKey) -> float:
        """Average receive throughput of a flow over its lifetime."""
        record = self.received.get(flow)
        if record is None or record.first_arrival_ns is None:
            return 0.0
        duration = record.last_arrival_ns - record.first_arrival_ns
        if duration <= 0:
            return 0.0
        return record.bytes * 8 * 1e9 / duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name})"
