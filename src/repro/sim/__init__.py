"""Discrete-event network simulator substrate.

This package replaces the hardware pieces of the original Speedlight
deployment (Tofino ASIC, switch CPUs, PTP-synchronized clocks, cabling)
with a deterministic discrete-event simulation.  Everything the snapshot
protocol relies on is modelled explicitly:

* linearizable per-port, per-direction processing units (:mod:`.switch`),
* FIFO communication channels with propagation delay (:mod:`.channel`),
* per-device clocks with drift and PTP-style resynchronisation
  (:mod:`.clock`),
* a management plane connecting control planes to observers (:mod:`.mgmt`).

Time is measured in integer nanoseconds throughout.  The helper constants
:data:`~repro.sim.engine.US`, :data:`~repro.sim.engine.MS` and
:data:`~repro.sim.engine.S` convert to microseconds, milliseconds and
seconds respectively.
"""

from repro.sim.engine import Event, Simulator, NS, US, MS, S
from repro.sim.clock import Clock, PTPConfig, PTPService
from repro.sim.packet import Packet, SnapshotHeader, PacketType
from repro.sim.channel import Link, LossModel, BernoulliLoss, NoLoss
from repro.sim.switch import (
    Switch,
    SwitchConfig,
    Port,
    IngressUnit,
    EgressUnit,
    UnitId,
    Direction,
)
from repro.sim.host import Host, FlowRecord
from repro.sim.network import Network, NetworkConfig, partition_topology
from repro.sim.mgmt import ManagementPlane
from repro.sim.shard import (
    BoundaryLink,
    InProcessShardRunner,
    ProcessShardRunner,
    ShardPlan,
    ShardScope,
    ShardWorker,
    run_sharded,
)

__all__ = [
    "Event",
    "Simulator",
    "NS",
    "US",
    "MS",
    "S",
    "Clock",
    "PTPConfig",
    "PTPService",
    "Packet",
    "SnapshotHeader",
    "PacketType",
    "Link",
    "LossModel",
    "BernoulliLoss",
    "NoLoss",
    "Switch",
    "SwitchConfig",
    "Port",
    "IngressUnit",
    "EgressUnit",
    "UnitId",
    "Direction",
    "Host",
    "FlowRecord",
    "Network",
    "NetworkConfig",
    "ManagementPlane",
    "partition_topology",
    "BoundaryLink",
    "InProcessShardRunner",
    "ProcessShardRunner",
    "ShardPlan",
    "ShardScope",
    "ShardWorker",
    "run_sharded",
]
