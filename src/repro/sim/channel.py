"""Communication channels: physical links and loss models.

The snapshot algorithm's system model (paper §4.1) is a graph of
processing units connected by unidirectional FIFO channels.  Two channel
flavours exist in the simulator:

* **Physical links** (:class:`Link`) connect an egress unit of one device
  to an ingress unit of another.  They are full duplex (modelled as two
  independent unidirectional directions), have a fixed propagation delay
  and an optional loss model.  Because the delay is constant and senders
  serialise departures, each direction is FIFO.
* **Fabric channels** (inside :mod:`repro.sim.switch`) connect every
  ingress unit to every egress unit of the same device with a constant
  pipeline latency — also FIFO per (ingress, egress, CoS) triple.

Packet loss is the one non-ideality the protocol must tolerate (§6
"Ensuring liveness"); :class:`BernoulliLoss` provides seeded random drops
and :class:`ScriptedLoss` lets tests drop specific packets.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import Optional, Protocol

from repro.sim.engine import Simulator
from repro.sim.packet import Packet


class LossModel:
    """Decides whether a given transmission is dropped."""

    def should_drop(self, packet: Packet) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Reset any internal state (optional)."""


class NoLoss(LossModel):
    """A lossless channel (the default)."""

    def should_drop(self, packet: Packet) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent per-packet drops with fixed probability."""

    def __init__(self, probability: float, rng: random.Random) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability
        self.rng = rng
        self._random = rng.random  # bound once; the per-packet hot path
        self.dropped = 0

    def should_drop(self, packet: Packet) -> bool:
        if self._random() < self.probability:
            self.dropped += 1
            return True
        return False

    def reset(self) -> None:
        self.dropped = 0


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (the Gilbert–Elliott channel model).

    The channel alternates between a GOOD state (loss probability
    ``p_loss_good``, typically ~0) and a BAD state (loss probability
    ``p_loss_bad``, typically high); per-packet transition probabilities
    ``p_good_to_bad`` / ``p_bad_to_good`` control burst frequency and
    mean burst length (``1 / p_bad_to_good`` packets).  Unlike
    :class:`BernoulliLoss`, drops cluster — the pattern that stresses
    the snapshot protocol's liveness machinery hardest, because a burst
    can swallow an initiation *and* its immediate retries.
    """

    def __init__(self, rng: random.Random, *,
                 p_good_to_bad: float = 0.001,
                 p_bad_to_good: float = 0.05,
                 p_loss_good: float = 0.0,
                 p_loss_bad: float = 0.5) -> None:
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good),
                        ("p_loss_good", p_loss_good),
                        ("p_loss_bad", p_loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.rng = rng
        self._random = rng.random
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.p_loss_good = p_loss_good
        self.p_loss_bad = p_loss_bad
        self.in_bad_state = False
        self.dropped = 0
        self.bursts_entered = 0

    def should_drop(self, packet: Packet) -> bool:
        rand = self._random
        if self.in_bad_state:
            if rand() < self.p_bad_to_good:
                self.in_bad_state = False
        elif rand() < self.p_good_to_bad:
            self.in_bad_state = True
            self.bursts_entered += 1
        p_loss = self.p_loss_bad if self.in_bad_state else self.p_loss_good
        if p_loss and rand() < p_loss:
            self.dropped += 1
            return True
        return False

    def reset(self) -> None:
        self.in_bad_state = False
        self.dropped = 0
        self.bursts_entered = 0


class ScriptedLoss(LossModel):
    """Drop exactly the packets whose uid is in ``drop_uids``.

    Used by tests to inject deterministic losses (e.g. "drop the snapshot
    initiation message and verify the control plane re-initiates").
    """

    def __init__(self, drop_uids: Optional[set[int]] = None,
                 predicate: Optional[Callable[[Packet], bool]] = None) -> None:
        self.drop_uids = drop_uids or set()
        self.predicate = predicate
        self.dropped: list[Packet] = []

    def should_drop(self, packet: Packet) -> bool:
        drop = packet.uid in self.drop_uids or (
            self.predicate is not None and self.predicate(packet)
        )
        if drop:
            self.dropped.append(packet)
        return drop

    def reset(self) -> None:
        self.dropped = []


class LinkEndpoint(Protocol):
    """Anything that can sit at the end of a link (switch port or host)."""

    def receive_from_link(self, packet: Packet, link: "Link") -> None:
        ...  # pragma: no cover - protocol definition

    @property
    def endpoint_name(self) -> str:
        ...  # pragma: no cover - protocol definition


class Link:
    """A full-duplex point-to-point link.

    Endpoints are attached with :meth:`attach`; :meth:`transmit` delivers a
    packet from one endpoint to the other after the propagation delay.
    Serialisation delay is the sender's responsibility (the egress queue
    model in :mod:`repro.sim.switch` / :mod:`repro.sim.host`), which keeps
    each direction strictly FIFO.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: int = 25_000_000_000,
                 propagation_ns: int = 500,
                 loss: Optional[LossModel] = None,
                 name: str = "") -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_ns < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.propagation_ns = propagation_ns
        self._loss = loss or NoLoss()
        #: Fast-path flag: a NoLoss link skips the loss-model call per
        #: packet entirely (kept in sync by the ``loss`` setter).
        self._lossless = isinstance(self._loss, NoLoss)
        self.name = name
        #: Administrative / physical link state.  A down link drops every
        #: transmission (counted in ``packets_dropped``); flapped by the
        #: fault injector (:mod:`repro.faults`).
        self.up = True
        #: Extra one-way delay added to ``propagation_ns`` (latency-spike
        #: faults).  While non-zero — and until in-flight spiked packets
        #: have drained — delivery goes through a slow path that clamps
        #: delivery times to stay monotone per direction, preserving the
        #: FIFO channel property the snapshot algorithm requires (§4.1).
        self.extra_delay_ns = 0
        #: id(receiver) -> earliest allowed delivery time for the next
        #: packet in that direction (only populated during/after spikes).
        self._fifo_floor: dict = {}
        self._endpoints: list[Optional[LinkEndpoint]] = [None, None]
        #: id(sender) -> receiver, built once both ends are attached so
        #: ``transmit`` avoids the identity-check chain per packet.
        self._peer_cache: dict = {}
        #: size_bytes -> serialization ns (traffic uses a handful of
        #: fixed sizes, so this is effectively a precomputed multiplier).
        self._ser_cache: dict = {}
        self.packets_delivered = 0
        self.packets_dropped = 0

    @property
    def loss(self) -> LossModel:
        return self._loss

    @loss.setter
    def loss(self, model: LossModel) -> None:
        self._loss = model
        self._lossless = isinstance(model, NoLoss)

    def attach(self, endpoint: LinkEndpoint) -> int:
        """Attach an endpoint; returns its side index (0 or 1)."""
        for side in (0, 1):
            if self._endpoints[side] is None:
                self._endpoints[side] = endpoint
                a, b = self._endpoints
                if a is not None and b is not None:
                    self._peer_cache = {id(a): b, id(b): a}
                return side
        raise RuntimeError(f"link {self.name!r} already has two endpoints")

    def peer_of(self, endpoint: LinkEndpoint) -> LinkEndpoint:
        """The endpoint at the other side of the link."""
        a, b = self._endpoints
        if endpoint is a:
            if b is None:
                raise RuntimeError(f"link {self.name!r} has no second endpoint")
            return b
        if endpoint is b:
            if a is None:
                raise RuntimeError(f"link {self.name!r} has no first endpoint")
            return a
        raise ValueError(f"{endpoint!r} is not attached to link {self.name!r}")

    def serialization_ns(self, size_bytes: int) -> int:
        """Time to clock ``size_bytes`` onto the wire at link rate
        (memoized per size)."""
        ns = self._ser_cache.get(size_bytes)
        if ns is None:
            ns = (size_bytes * 8 * 1_000_000_000) // self.bandwidth_bps
            self._ser_cache[size_bytes] = ns
        return ns

    def transmit(self, sender: LinkEndpoint, packet: Packet) -> bool:
        """Send ``packet`` from ``sender`` to the peer endpoint.

        Returns False if the loss model dropped the packet.  Delivery is
        scheduled ``propagation_ns`` in the future; the caller has already
        accounted for serialisation time.
        """
        receiver = self._peer_cache.get(id(sender))
        if receiver is None:
            receiver = self.peer_of(sender)
        if not self.up:
            self.packets_dropped += 1
            return False
        if not self._lossless and self._loss.should_drop(packet):
            self.packets_dropped += 1
            return False
        if self.extra_delay_ns or self._fifo_floor:
            self._transmit_slow(receiver, packet)
            return True
        self.sim.schedule_fast(self.propagation_ns, self._deliver,
                               receiver, packet)
        return True

    def _transmit_slow(self, receiver: LinkEndpoint, packet: Packet) -> None:
        """Delivery under (or draining from) a latency spike.

        Clamps each delivery to be no earlier than the previous one in
        the same direction: a spike that ends (``extra_delay_ns`` back
        to 0) must not let later packets overtake slower in-flight ones,
        which would break the FIFO-channel assumption.  Equal delivery
        times are fine — the engine's tie-break preserves send order.
        """
        key = id(receiver)
        at = self.sim.now + self.propagation_ns + self.extra_delay_ns
        floor = self._fifo_floor.get(key, 0)
        if self.extra_delay_ns:
            if at < floor:
                at = floor
            self._fifo_floor[key] = at
        elif at >= floor:
            self._fifo_floor.pop(key, None)  # natural timing caught up
        else:
            # Still draining: clamp to the last spiked delivery and keep
            # the floor until un-spiked deliveries naturally pass it.
            at = floor
        self.sim.schedule_at(at, self._deliver, receiver, packet)

    def _deliver(self, receiver: LinkEndpoint, packet: Packet) -> None:
        self.packets_delivered += 1
        # statics: allow[SIM003] this IS the modeled delivery site every other path must route through
        receiver.receive_from_link(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = [e.endpoint_name if e else "?" for e in self._endpoints]
        return f"Link({names[0]} <-> {names[1]}, {self.bandwidth_bps // 10**9}Gbps)"
