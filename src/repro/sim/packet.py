"""Packets and the Speedlight snapshot header.

The snapshot header (paper §5.1) carries three fields:

* **packet type** — ``DATA`` for ordinary traffic, ``INITIATION`` for the
  control-plane initiation messages of §6 (Figure 6, path 3);
* **snapshot ID** — the epoch the *send* of this packet belongs to, set at
  each hop to the sending processing unit's current ID;
* **channel ID** — identifies the upstream neighbor (only needed when
  channel state is collected).

Hosts never see the header: it is pushed by the first snapshot-enabled
ingress unit and popped before delivery to a host (or, under partial
deployment, at the last snapshot-enabled device on the path).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class PacketType(enum.Enum):
    """Snapshot header packet type (§5.1)."""

    DATA = "data"
    INITIATION = "initiation"


@dataclass
class SnapshotHeader:
    """The in-band snapshot header added to every packet.

    ``sid`` is rewritten at every snapshot-enabled processing unit so the
    downstream unit learns the upstream unit's current snapshot epoch.
    """

    sid: int = 0
    packet_type: PacketType = PacketType.DATA
    channel_id: Optional[int] = None

    def copy(self) -> "SnapshotHeader":
        return SnapshotHeader(self.sid, self.packet_type, self.channel_id)


@dataclass(frozen=True)
class FlowKey:
    """A 5-tuple identifying a flow, used by the load balancers."""

    src: str
    dst: str
    sport: int
    dport: int
    proto: int = 6  # TCP by default

    def reversed(self) -> "FlowKey":
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)


_packet_uid = itertools.count()


@dataclass
class Packet:
    """A simulated packet.

    ``payload`` is free-form application data (request ids, probe TTLs);
    the network never interprets it except for broadcast-probe TTLs.
    """

    flow: FlowKey
    size_bytes: int = 1500
    seq: int = 0
    created_ns: int = 0
    snapshot: Optional[SnapshotHeader] = None
    uid: int = field(default_factory=lambda: next(_packet_uid))
    cos: int = 0
    payload: Any = None

    @property
    def src(self) -> str:
        return self.flow.src

    @property
    def dst(self) -> str:
        return self.flow.dst

    def push_snapshot_header(self, sid: int = 0,
                             packet_type: PacketType = PacketType.DATA) -> SnapshotHeader:
        """Attach a snapshot header (first snapshot-enabled hop)."""
        self.snapshot = SnapshotHeader(sid=sid, packet_type=packet_type)
        return self.snapshot

    def pop_snapshot_header(self) -> Optional[SnapshotHeader]:
        """Remove and return the snapshot header (last enabled hop)."""
        header, self.snapshot = self.snapshot, None
        return header

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snap = f", sid={self.snapshot.sid}" if self.snapshot else ""
        return (f"Packet(#{self.uid} {self.flow.src}->{self.flow.dst} "
                f"seq={self.seq} {self.size_bytes}B{snap})")


def make_initiation_packet(sid: int, created_ns: int = 0) -> Packet:
    """Build a control-plane snapshot initiation message (§6).

    Initiation packets travel CPU → ingress → egress of each port and are
    dropped after processing.  They are never counted by metric counters
    and never treated as in-flight channel state.
    """
    flow = FlowKey(src="cpu", dst="cpu", sport=0, dport=0, proto=0)
    pkt = Packet(flow=flow, size_bytes=64, created_ns=created_ns)
    pkt.snapshot = SnapshotHeader(sid=sid, packet_type=PacketType.INITIATION)
    return pkt
