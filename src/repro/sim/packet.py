"""Packets and the Speedlight snapshot header.

The snapshot header (paper §5.1) carries three fields:

* **packet type** — ``DATA`` for ordinary traffic, ``INITIATION`` for the
  control-plane initiation messages of §6 (Figure 6, path 3), ``PROBE``
  for the snapshot-propagation broadcasts that keep idle channels live
  (§6, "Ensuring liveness");
* **snapshot ID** — the epoch the *send* of this packet belongs to, set at
  each hop to the sending processing unit's current ID;
* **channel ID** — identifies the upstream neighbor (only needed when
  channel state is collected).

Hosts never see the header: it is pushed by the first snapshot-enabled
ingress unit and popped before delivery to a host (or, under partial
deployment, at the last snapshot-enabled device on the path).

Performance notes (docs/PERF.md): these are the most-allocated objects
in any trial, so all three types are ``__slots__`` classes with
hand-written constructors.  :class:`FlowKey` instances are interned —
equal keys are usually the *same* object with a precomputed hash, which
makes the per-packet flow-table lookups in hosts and load balancers
cheap.  Stripped snapshot headers are recycled through a small free
list (:func:`release_header`) instead of round-tripping the allocator.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, ClassVar, Optional


class PacketType(enum.IntEnum):
    """Snapshot header packet type (§5.1).

    An ``IntEnum`` so fast-path code can compare the stored member
    against a plain int (or a cached member with ``is``) without
    attribute-chasing the enum class per packet.
    """

    DATA = 0
    INITIATION = 1
    #: Snapshot-propagation probe: advances IDs and Last Seen like DATA,
    #: but is protocol-internal — never measured traffic, so it neither
    #: updates unit counters nor credits in-flight channel state.
    PROBE = 2


#: Members cached at module level for hot-path identity comparisons.
DATA = PacketType.DATA
INITIATION = PacketType.INITIATION
PROBE = PacketType.PROBE


class SnapshotHeader:
    """The in-band snapshot header added to every packet.

    ``sid`` is rewritten at every snapshot-enabled processing unit so the
    downstream unit learns the upstream unit's current snapshot epoch.
    """

    __slots__ = ("sid", "packet_type", "channel_id")

    def __init__(self, sid: int = 0, packet_type: PacketType = DATA,
                 channel_id: Optional[int] = None) -> None:
        self.sid = sid
        self.packet_type = packet_type
        self.channel_id = channel_id

    def copy(self) -> "SnapshotHeader":
        """An independent header with the same fields (recycles the
        free list when possible)."""
        return new_header(self.sid, self.packet_type, self.channel_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SnapshotHeader(sid={self.sid}, "
                f"packet_type={self.packet_type!r}, "
                f"channel_id={self.channel_id})")


#: Free list of stripped headers.  Bounded so a pathological workload
#: cannot pin memory; per-process, so worker processes stay independent.
_HEADER_POOL: list[SnapshotHeader] = []
_HEADER_POOL_MAX = 1024


def new_header(sid: int = 0, packet_type: PacketType = DATA,
               channel_id: Optional[int] = None) -> SnapshotHeader:
    """Allocate a snapshot header, reusing a pooled one when available."""
    if _HEADER_POOL:
        header = _HEADER_POOL.pop()
        header.sid = sid
        header.packet_type = packet_type
        header.channel_id = channel_id
        return header
    return SnapshotHeader(sid, packet_type, channel_id)


def release_header(header: Optional[SnapshotHeader]) -> None:
    """Return a header to the free list.

    Only for internal strip paths where the header is provably dead
    (host delivery, egress stripping for a header-blind peer); callers
    of the public :meth:`Packet.pop_snapshot_header` own the returned
    header and must *not* release it.
    """
    if header is not None and len(_HEADER_POOL) < _HEADER_POOL_MAX:
        _HEADER_POOL.append(header)


class FlowKey:
    """A 5-tuple identifying a flow, used by the load balancers.

    Instances are immutable by convention and interned: constructing the
    same 5-tuple twice usually yields the same object, with the hash
    precomputed once.  (The intern table is bounded; past the bound,
    construction falls back to ordinary allocation and value equality.)
    """

    __slots__ = ("src", "dst", "sport", "dport", "proto", "_hash")

    _intern: ClassVar[dict[tuple[str, str, int, int, int], "FlowKey"]] = {}
    _INTERN_MAX = 65536

    def __new__(cls, src: str, dst: str, sport: int, dport: int,
                proto: int = 6) -> "FlowKey":
        key = (src, dst, sport, dport, proto)
        cache = cls._intern
        self = cache.get(key)
        if self is None:
            self = object.__new__(cls)
            self.src = src
            self.dst = dst
            self.sport = sport
            self.dport = dport
            self.proto = proto
            self._hash = hash(key)
            if len(cache) < cls._INTERN_MAX:
                cache[key] = self
        return self

    def reversed(self) -> "FlowKey":
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, FlowKey):
            return NotImplemented
        return (self.src == other.src and self.dst == other.dst
                and self.sport == other.sport and self.dport == other.dport
                and self.proto == other.proto)

    def __reduce__(self) -> tuple[type, tuple[str, str, int, int, int]]:
        # Re-intern on unpickle (the default __slots__ path would bypass
        # __new__'s required arguments).
        return (FlowKey, (self.src, self.dst, self.sport, self.dport,
                          self.proto))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowKey({self.src!r}, {self.dst!r}, {self.sport}, "
                f"{self.dport}, proto={self.proto})")


_packet_uid = itertools.count()


class Packet:
    """A simulated packet.

    ``payload`` is free-form application data (request ids, probe TTLs);
    the network never interprets it except for broadcast-probe TTLs.

    ``ttl`` is an optional IP-style hop limit: ``None`` (the default)
    means "no TTL processing at all" — switches only decrement and
    expire packets whose sender opted in (see
    :attr:`repro.sim.host.Host.default_ttl`), so pre-existing scenarios
    are untouched.  ``route_tag`` is the two-phase-update rule tag of
    §10-style versioned forwarding (:mod:`repro.updates`): a tagged
    packet matches a switch's staged rule set when one exists for the
    tag, and the base FIB otherwise.
    """

    __slots__ = ("flow", "size_bytes", "seq", "created_ns", "snapshot",
                 "uid", "cos", "payload", "ttl", "route_tag")

    def __init__(self, flow: FlowKey, size_bytes: int = 1500, seq: int = 0,
                 created_ns: int = 0,
                 snapshot: Optional[SnapshotHeader] = None,
                 uid: Optional[int] = None, cos: int = 0,
                 payload: Any = None, ttl: Optional[int] = None,
                 route_tag: Optional[str] = None) -> None:
        self.flow = flow
        self.size_bytes = size_bytes
        self.seq = seq
        self.created_ns = created_ns
        self.snapshot = snapshot
        self.uid = next(_packet_uid) if uid is None else uid
        self.cos = cos
        self.payload = payload
        self.ttl = ttl
        self.route_tag = route_tag

    @property
    def src(self) -> str:
        return self.flow.src

    @property
    def dst(self) -> str:
        return self.flow.dst

    def push_snapshot_header(self, sid: int = 0,
                             packet_type: PacketType = DATA) -> SnapshotHeader:
        """Attach a snapshot header (first snapshot-enabled hop)."""
        self.snapshot = new_header(sid, packet_type)
        return self.snapshot

    def pop_snapshot_header(self) -> Optional[SnapshotHeader]:
        """Remove and return the snapshot header (last enabled hop).
        The caller owns the returned header."""
        header, self.snapshot = self.snapshot, None
        return header

    def strip_snapshot_header(self) -> None:
        """Drop the snapshot header and recycle it (internal strip
        paths only — the header must not be referenced elsewhere)."""
        header, self.snapshot = self.snapshot, None
        if header is not None and len(_HEADER_POOL) < _HEADER_POOL_MAX:
            _HEADER_POOL.append(header)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snap = f", sid={self.snapshot.sid}" if self.snapshot else ""
        return (f"Packet(#{self.uid} {self.flow.src}->{self.flow.dst} "
                f"seq={self.seq} {self.size_bytes}B{snap})")


def make_initiation_packet(sid: int, created_ns: int = 0) -> Packet:
    """Build a control-plane snapshot initiation message (§6).

    Initiation packets travel CPU → ingress → egress of each port and are
    dropped after processing.  They are never counted by metric counters
    and never treated as in-flight channel state.
    """
    flow = FlowKey(src="cpu", dst="cpu", sport=0, dport=0, proto=0)
    pkt = Packet(flow=flow, size_bytes=64, created_ns=created_ns)
    pkt.snapshot = new_header(sid, INITIATION)
    return pkt
