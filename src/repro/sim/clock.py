"""Per-device clocks with drift and PTP-style synchronisation.

Speedlight's synchronized initiation rests on the control planes of all
devices sharing an approximately common notion of time (the paper uses
``ptp4l``/``phc2sys``).  We model:

* **Frequency drift.**  Each clock runs at ``1 + drift_ppb * 1e-9`` times
  true (simulator) time; drift is drawn once per clock from a configurable
  range typical of crystal oscillators (tens of ppm at the extreme, a few
  ppm when disciplined).
* **Offset.**  The difference between local and true time at the moment of
  the last synchronisation.
* **PTP resync.**  A :class:`PTPService` periodically snaps every clock's
  offset to a fresh residual error sampled from a configurable
  distribution.  Good datacenter PTP leaves single-digit microsecond
  residuals; NTP leaves ~1 ms (the paper's §2.1 contrast).

The conversion methods are exact inverses of each other so that a device
scheduling an action "at local time L" lands at a well-defined true time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Simulator, S


class Clock:
    """A local clock with frequency drift and settable offset.

    ``local = true + offset + drift_ppb * (true - sync_point) / 1e9``

    where ``sync_point`` is the true time of the last resynchronisation.
    """

    def __init__(self, drift_ppb: int = 0, offset_ns: int = 0) -> None:
        self.drift_ppb = int(drift_ppb)
        self.offset_ns = int(offset_ns)
        self.sync_point_ns = 0

    def local_time(self, true_ns: int) -> int:
        """Convert true (simulator) time to this clock's local time."""
        drift = self.drift_ppb
        if not drift:  # identity fast path: a disciplined, drift-free clock
            return true_ns + self.offset_ns
        elapsed = true_ns - self.sync_point_ns
        return true_ns + self.offset_ns + (drift * elapsed) // 1_000_000_000

    def true_time(self, local_ns: int) -> int:
        """Convert a local timestamp back to true time.

        Exact inverse of :meth:`local_time` on its image: returns the
        greatest true time ``t`` with ``local_time(t) <= local_ns``, so
        ``local_time(true_time(L)) == L`` whenever ``L`` is a reading
        the clock can actually produce.  (The naive algebraic inverse
        floor-divides with a different denominator than the forward
        map and lands 1 ns off for some negative drifts.)
        """
        drift = self.drift_ppb
        if not drift:
            return local_ns - self.offset_ns
        # local = true + offset + floor(drift*(true - sp)/1e9); start from
        # the real-valued inverse, then correct the floor asymmetry.
        numer = ((local_ns - self.offset_ns) * 1_000_000_000
                 + drift * self.sync_point_ns)
        t = numer // (1_000_000_000 + drift)
        while self.local_time(t) > local_ns:
            t -= 1
        while self.local_time(t + 1) <= local_ns:
            t += 1
        return t

    def resync(self, true_ns: int, residual_error_ns: int) -> None:
        """Discipline the clock at ``true_ns``, leaving ``residual_error_ns``
        of offset (positive means the local clock reads ahead of true time).
        """
        self.sync_point_ns = true_ns
        self.offset_ns = int(residual_error_ns)

    def step(self, delta_ns: int) -> None:
        """Instantaneously step the clock by ``delta_ns`` (fault injection:
        a GPS glitch, a bad servo correction, an operator ``date -s``).
        The next PTP resync removes it; until then every local-time
        conversion — including initiation scheduling — is skewed."""
        self.offset_ns += int(delta_ns)

    def error_at(self, true_ns: int) -> int:
        """Current deviation of local time from true time, in ns."""
        return self.local_time(true_ns) - true_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(drift={self.drift_ppb}ppb, offset={self.offset_ns}ns)"


@dataclass
class PTPConfig:
    """Parameters of the PTP synchronisation model.

    Defaults are shaped to reproduce the paper's testbed numbers: residual
    offsets of a few microseconds with occasional heavier-tailed samples
    ("randomness in PTP, queuing, and scheduling", §8.1).
    """

    #: Interval between synchronisation rounds.
    sync_interval_ns: int = 1 * S
    #: Standard deviation of the Gaussian residual offset after a sync.
    residual_sigma_ns: int = 1_500
    #: Hard clamp on the residual magnitude (PTP servo never lets the
    #: offset run away on a healthy network).
    residual_max_ns: int = 8_000
    #: Probability that a sync round produces a heavy-tail residual
    #: (uniform in [residual_sigma, residual_max]) — models occasional
    #: delayed sync messages.
    tail_probability: float = 0.05
    #: Range of per-clock frequency drift assigned at attach time.
    drift_ppb_min: int = -40_000
    drift_ppb_max: int = 40_000


class PTPService:
    """Periodically disciplines a set of clocks.

    Each clock attached to the service gets a drift drawn from the config
    range and is resynchronised every ``sync_interval_ns`` with a fresh
    residual offset.  ``start()`` performs an initial sync at the current
    simulation time so clocks are disciplined from the outset.
    """

    def __init__(self, sim: Simulator, rng: random.Random,
                 config: Optional[PTPConfig] = None) -> None:
        self.sim = sim
        self.rng = rng
        self.config = config or PTPConfig()
        self.clocks: dict[str, Clock] = {}
        self._started = False
        #: Clocks in holdover (fault injection): sync rounds skip them, so
        #: their drift accumulates undisciplined — the "PTP daemon died /
        #: grandmaster unreachable" failure mode.
        self._holdover: set[str] = set()

    def attach(self, name: str, clock: Optional[Clock] = None) -> Clock:
        """Register a clock under ``name``; creates one if not given."""
        if name in self.clocks:
            raise ValueError(f"clock {name!r} already attached")
        if clock is None:
            drift = self.rng.randint(self.config.drift_ppb_min,
                                     self.config.drift_ppb_max)
            clock = Clock(drift_ppb=drift)
        self.clocks[name] = clock
        if self._started:
            self._discipline(clock)
        return clock

    def start(self) -> None:
        """Perform the initial sync and schedule periodic resyncs."""
        if self._started:
            return
        self._started = True
        self._sync_round()

    def sample_residual(self) -> int:
        """Draw one residual offset error (signed, ns)."""
        cfg = self.config
        if self.rng.random() < cfg.tail_probability:
            magnitude = self.rng.uniform(cfg.residual_sigma_ns, cfg.residual_max_ns)
        else:
            magnitude = abs(self.rng.gauss(0.0, cfg.residual_sigma_ns))
            magnitude = min(magnitude, cfg.residual_max_ns)
        sign = 1 if self.rng.random() < 0.5 else -1
        return sign * int(magnitude)

    def _discipline(self, clock: Clock) -> None:
        clock.resync(self.sim.now, self.sample_residual())

    def _sync_round(self) -> None:
        if self._holdover:
            for name, clock in self.clocks.items():
                if name not in self._holdover:
                    self._discipline(clock)
        else:
            for clock in self.clocks.values():
                self._discipline(clock)
        self.sim.schedule(self.config.sync_interval_ns, self._sync_round)

    # ------------------------------------------------------------------
    # Fault injection (see :mod:`repro.faults`)
    # ------------------------------------------------------------------
    def hold(self, name: str) -> None:
        """Put a clock into holdover: stop disciplining it, letting its
        frequency drift accumulate until :meth:`release`."""
        if name not in self.clocks:
            raise KeyError(f"no clock named {name!r}")
        self._holdover.add(name)

    def release(self, name: str) -> None:
        """End holdover for a clock and immediately re-discipline it."""
        self._holdover.discard(name)
        if self._started:
            self._discipline(self.clocks[name])

    # ------------------------------------------------------------------
    # Introspection used by the experiments
    # ------------------------------------------------------------------
    def pairwise_spread_ns(self) -> int:
        """Max minus min local-clock reading across all clocks, right now.

        This is the instantaneous "synchronisation" of the control planes
        and lower-bounds the snapshot synchronisation achievable.
        """
        if not self.clocks:
            return 0
        readings: list[int] = [c.local_time(self.sim.now) for c in self.clocks.values()]
        return max(readings) - min(readings)
