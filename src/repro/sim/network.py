"""Network assembly: topology → running simulation objects.

:class:`Network` instantiates a :class:`~repro.topology.Topology` into
switches, hosts and links on a shared :class:`~repro.sim.engine.Simulator`;
computes ECMP routes; and owns the shared services (root RNG, PTP clock
sync, management plane).

Port numbering: each device's neighbors are assigned consecutive port
indices in sorted neighbor-name order, so port maps are deterministic and
tests can reference "the uplink ports" by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Optional, Protocol

from repro.sim.engine import Simulator, US
from repro.sim.clock import PTPConfig, PTPService
from repro.sim.channel import Link, LossModel
from repro.sim.host import Host
from repro.sim.mgmt import ManagementPlane
from repro.sim.switch import Switch, SwitchConfig, TraceEvent
from repro.topology.graph import LinkSpec, NodeKind, Topology


def partition_topology(topology: Topology, num_shards: int) -> dict[str, int]:
    """Assign every node of ``topology`` to one of ``num_shards`` shards.

    Greedy graph growing over the switch-induced subgraph (a cheap
    min-cut-ish heuristic): each shard is seeded with the
    highest-degree unassigned switch and grown one switch at a time,
    always taking the candidate with the most links into the region —
    the same objective as KL/FM-style partitioners, without the
    dependency.  Hosts follow their attached switch, so only
    switch-to-switch links are ever cut and every cut link's
    propagation delay can serve as conservative lookahead
    (:mod:`repro.sim.shard`).

    Deterministic given (topology, num_shards): all candidate choices
    tie-break on sorted names, never on hashes or iteration order of
    sets.  Returns a ``{node name -> shard id}`` mapping covering every
    switch and host.
    """
    switches = topology.switches
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > len(switches):
        raise ValueError(
            f"cannot split {len(switches)} switches into {num_shards} shards")
    assignment: dict[str, int] = {}

    def switch_degree(name: str) -> int:
        return sum(1 for n in topology.neighbors(name)
                   if topology.kind(n) is NodeKind.SWITCH)

    remaining = set(switches)
    base, extra = divmod(len(switches), num_shards)
    for shard in range(num_shards):
        target = base + (1 if shard < extra else 0)
        region: list[str] = []
        while len(region) < target:
            if not region:
                # Seed: highest switch-degree, name as tie-break.
                seed = max(sorted(remaining), key=switch_degree)
                region.append(seed)
                remaining.discard(seed)
                continue
            frontier = sorted({n for member in region
                               for n in topology.neighbors(member)
                               if n in remaining})
            if not frontier:
                # Disconnected remainder: start a fresh seed inside the
                # same shard.
                seed = max(sorted(remaining), key=switch_degree)
                region.append(seed)
                remaining.discard(seed)
                continue
            def edges_into_region(name: str) -> int:
                return sum(1 for n in topology.neighbors(name)
                           if n in region)
            pick = max(frontier, key=edges_into_region)
            region.append(pick)
            remaining.discard(pick)
        for name in region:
            assignment[name] = shard
    for host in topology.hosts:
        # Host-to-host links do not exist, so every host neighbor is a
        # switch; a multi-homed host follows its first switch by name.
        attached = topology.neighbors(host)[0]
        assignment[host] = assignment[attached]
    return assignment


def cut_links(topology: Topology,
              assignment: dict[str, int]) -> list[LinkSpec]:
    """The links whose endpoints live in different shards, in the
    topology's deterministic link order."""
    return [spec for spec in topology.links
            if assignment[spec.a] != assignment[spec.b]]


@dataclass
class NetworkConfig:
    """Knobs for network instantiation."""

    seed: int = 0
    switch_config: SwitchConfig = field(default_factory=SwitchConfig)
    ptp_config: PTPConfig = field(default_factory=PTPConfig)
    mgmt_base_latency_ns: int = 50 * US
    mgmt_jitter_ns: int = 20 * US
    #: Optional factory producing a loss model per link, e.g. for fault
    #: injection tests: ``lambda spec, rng: BernoulliLoss(0.001, rng)``.
    loss_factory: Optional[Callable[..., LossModel]] = None
    #: Factory producing each switch's load balancer, called with the
    #: switch index (used as the hash salt).  Defaults to flow-level ECMP.
    lb_factory: Optional[Callable[[int], object]] = None
    #: Record packet traces through snapshot units (consistency checks).
    enable_tracing: bool = False


class NetworkScope(Protocol):
    """What a shard scope must provide to restrict a :class:`Network` to
    one partition (implemented by :class:`repro.sim.shard.ShardScope`)."""

    def owns(self, name: str) -> bool:
        ...  # pragma: no cover - protocol definition

    def boundary_link(self, sim: Simulator, spec: "LinkSpec",
                      loss: Optional[LossModel] = None) -> Link:
        ...  # pragma: no cover - protocol definition

    def remote_snapshot_enabled(self, name: str) -> bool:
        ...  # pragma: no cover - protocol definition


class Network:
    """A fully wired simulated network."""

    def __init__(self, topology: Topology,
                 config: Optional[NetworkConfig] = None,
                 sim: Optional[Simulator] = None,
                 scope: Optional["NetworkScope"] = None) -> None:
        self.topology = topology
        self.config = config or NetworkConfig()
        self.sim = sim or Simulator()
        #: Shard scope (None = the whole topology lives in this process).
        #: When set, only owned switches/hosts are instantiated and each
        #: cut link is replaced by the scope's boundary stub
        #: (:mod:`repro.sim.shard`).
        self.scope = scope
        self.rng = random.Random(self.config.seed)
        self.ptp = PTPService(self.sim, self._child_rng("ptp"),
                              self.config.ptp_config)
        self.mgmt = ManagementPlane(self.sim, self._child_rng("mgmt"),
                                    self.config.mgmt_base_latency_ns,
                                    self.config.mgmt_jitter_ns)
        self.switches: dict[str, Switch] = {}
        self.hosts: dict[str, Host] = {}
        self.links: list[Link] = []
        #: device name -> {neighbor name -> local port index}
        self.port_map: dict[str, dict[str, int]] = {}
        #: All TraceEvents, in time order (populated when
        #: ``config.enable_tracing`` is set; consumed by the
        #: causal-consistency checker).
        self.trace_log: list["TraceEvent"] = []
        self._build()
        self._install_routes()
        if self.config.enable_tracing:
            for switch in self.switches.values():
                switch.trace_sink = self.trace_log.append
        self.ptp.start()

    def _child_rng(self, label: str) -> random.Random:
        """Derive an independent RNG stream from the root seed."""
        return random.Random(f"{self.config.seed}/{label}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        from repro.lb import EcmpBalancer  # late import avoids a cycle

        topo = self.topology
        scope = self.scope
        lb_factory = self.config.lb_factory or (lambda salt: EcmpBalancer(salt))
        # The switch index (the ECMP hash salt) counts *all* switches,
        # so a switch hashes flows identically whether the network is
        # sharded or not.
        for index, name in enumerate(topo.switches):
            if scope is not None and not scope.owns(name):
                continue
            cfg = SwitchConfig(**{**self.config.switch_config.__dict__,
                                  "num_ports": topo.degree(name),
                                  "enable_tracing": self.config.enable_tracing})
            self.switches[name] = Switch(self.sim, name, cfg,
                                         lb=lb_factory(index))
            self.ptp.attach(name)
        for name in topo.hosts:
            if scope is not None and not scope.owns(name):
                continue
            self.hosts[name] = Host(self.sim, name)
        for name in topo.nodes:
            neighbors = topo.neighbors(name)
            self.port_map[name] = {nbr: i for i, nbr in enumerate(neighbors)}
        link_rng = self._child_rng("loss")
        for spec in topo.links:
            loss = None
            if self.config.loss_factory is not None:
                # Draw for every link in topology order — even links this
                # shard does not own — so each shard's loss stream for a
                # given link matches every other shard count.
                loss = self.config.loss_factory(spec, link_rng)
            if scope is None:
                local_ends = [spec.a, spec.b]
            else:
                local_ends = [n for n in (spec.a, spec.b) if scope.owns(n)]
                if not local_ends:
                    continue
            if len(local_ends) == 1:
                # Cut link: the scope supplies a boundary stub that
                # captures transmissions for the cross-shard transport
                # instead of delivering them locally.
                link = self.scope.boundary_link(self.sim, spec, loss=loss)  # type: ignore[union-attr]
            else:
                link = Link(self.sim, spec.bandwidth_bps, spec.propagation_ns,
                            loss=loss, name=f"{spec.a}-{spec.b}")
            self.links.append(link)
            for node in local_ends:
                if topo.kind(node) is NodeKind.SWITCH:
                    port = self.port_map[node][spec.other(node)]
                    self.switches[node].ports[port].connect(link)
                else:
                    self.hosts[node].connect(link)

    def _install_routes(self) -> None:
        topo = self.topology
        for sw_name, switch in self.switches.items():
            ports_of = self.port_map[sw_name]
            for host in topo.hosts:
                next_hops = topo.ecmp_next_hops(sw_name, host)
                if not next_hops:
                    continue
                switch.install_route(host, [ports_of[n] for n in next_hops])
            # Construction-order generations are meaningless; declare the
            # built table to be generation 0 on every device so the §10
            # fib_version metric (and repro.updates verdicts) start from
            # a common baseline.  Pure state reset: no events scheduled.
            switch.seal_fib()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def switch(self, name: str) -> Switch:
        return self.switches[name]

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def port_toward(self, device: str, neighbor: str) -> int:
        """Local port index on ``device`` facing ``neighbor``."""
        return self.port_map[device][neighbor]

    def uplink_ports(self, leaf: str) -> list[int]:
        """Ports of ``leaf`` that face other switches (the "uplinks" whose
        balance Figure 12 studies)."""
        ports = []
        for neighbor, port in self.port_map[leaf].items():
            if self.topology.kind(neighbor) is NodeKind.SWITCH:
                ports.append(port)
        return sorted(ports)

    def peer_of_port(self, switch_name: str, port: int) -> tuple[str, NodeKind]:
        """Name and kind of the device at the far end of a switch port."""
        for neighbor, p in self.port_map[switch_name].items():
            if p == port:
                return neighbor, self.topology.kind(neighbor)
        raise KeyError(f"{switch_name} has no port {port}")

    # ------------------------------------------------------------------
    # Snapshot-deployment support
    # ------------------------------------------------------------------
    def feasible_channels(self, switch_name: str) -> set[tuple[int, int]]:
        """All (ingress port, egress port) pairs that routing can use.

        A packet arriving at switch ``S`` from neighbor ``X`` is headed
        to some host ``h`` for which ``S`` is on a shortest path from
        ``X``; it leaves via one of ``S``'s ECMP ports for ``h``.  Pairs
        outside this set never carry traffic (e.g. valley paths under
        up-down routing), so snapshot completion must not gate on them —
        the paper's "removal of non-utilized upstream neighbors" (§6),
        derived here from the routing function instead of hand-configured.
        """
        import networkx as nx

        topo = self.topology
        graph = topo.to_networkx()
        switch = self.switches[switch_name]
        dist_cache: dict[str, dict[str, int]] = {}

        def dist(a: str, b: str) -> Optional[int]:
            lengths = dist_cache.get(a)
            if lengths is None:
                lengths = dist_cache[a] = nx.single_source_shortest_path_length(graph, a)
            return lengths.get(b)

        pairs: set[tuple[int, int]] = set()
        for neighbor, in_port in self.port_map[switch_name].items():
            from_host = topo.kind(neighbor) is NodeKind.HOST
            for dst, out_ports in switch.routes.items():
                if dst == neighbor:
                    continue
                if not from_host:
                    d_nbr = dist(neighbor, dst)
                    d_here = dist(switch_name, dst)
                    if d_nbr is None or d_here is None or d_nbr != d_here + 1:
                        continue  # S is not on a shortest path from X to dst
                for out_port in out_ports:
                    if out_port != in_port:
                        pairs.add((in_port, out_port))
        return pairs

    def refresh_header_stripping(self) -> None:
        """Recompute which egress units must pop the snapshot header.

        An egress unit strips the header when its link peer cannot parse
        it: always for hosts, and for switches whose facing ingress unit
        is not snapshot-enabled (partial deployment, §10).
        """
        for sw_name, switch in self.switches.items():
            for port in switch.ports:
                if port.link is None:
                    port.egress.strip_header_for_peer = True
                    continue
                peer_name, kind = self.peer_of_port(sw_name, port.index)
                if kind is NodeKind.HOST:
                    port.egress.strip_header_for_peer = True
                    continue
                if self.scope is not None and peer_name not in self.switches:
                    # Cut-link peer living in another shard: the scope
                    # knows whether its facing ingress parses the header.
                    port.egress.strip_header_for_peer = (
                        not self.scope.remote_snapshot_enabled(peer_name))
                    continue
                peer_switch = self.switches[peer_name]
                peer_port = self.port_map[peer_name][sw_name]
                peer_ingress = peer_switch.ports[peer_port].ingress
                port.egress.strip_header_for_peer = not peer_ingress.snapshot_enabled

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Convenience passthrough to the simulator."""
        return self.sim.run(until=until, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Network({self.topology.name!r}, "
                f"switches={len(self.switches)}, hosts={len(self.hosts)})")
