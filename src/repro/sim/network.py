"""Network assembly: topology → running simulation objects.

:class:`Network` instantiates a :class:`~repro.topology.Topology` into
switches, hosts and links on a shared :class:`~repro.sim.engine.Simulator`;
computes ECMP routes; and owns the shared services (root RNG, PTP clock
sync, management plane).

Port numbering: each device's neighbors are assigned consecutive port
indices in sorted neighbor-name order, so port maps are deterministic and
tests can reference "the uplink ports" by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Optional

from repro.sim.engine import Simulator, US
from repro.sim.clock import PTPConfig, PTPService
from repro.sim.channel import Link, LossModel
from repro.sim.host import Host
from repro.sim.mgmt import ManagementPlane
from repro.sim.switch import Switch, SwitchConfig, TraceEvent
from repro.topology.graph import NodeKind, Topology


@dataclass
class NetworkConfig:
    """Knobs for network instantiation."""

    seed: int = 0
    switch_config: SwitchConfig = field(default_factory=SwitchConfig)
    ptp_config: PTPConfig = field(default_factory=PTPConfig)
    mgmt_base_latency_ns: int = 50 * US
    mgmt_jitter_ns: int = 20 * US
    #: Optional factory producing a loss model per link, e.g. for fault
    #: injection tests: ``lambda spec, rng: BernoulliLoss(0.001, rng)``.
    loss_factory: Optional[Callable[..., LossModel]] = None
    #: Factory producing each switch's load balancer, called with the
    #: switch index (used as the hash salt).  Defaults to flow-level ECMP.
    lb_factory: Optional[Callable[[int], object]] = None
    #: Record packet traces through snapshot units (consistency checks).
    enable_tracing: bool = False


class Network:
    """A fully wired simulated network."""

    def __init__(self, topology: Topology,
                 config: Optional[NetworkConfig] = None,
                 sim: Optional[Simulator] = None) -> None:
        self.topology = topology
        self.config = config or NetworkConfig()
        self.sim = sim or Simulator()
        self.rng = random.Random(self.config.seed)
        self.ptp = PTPService(self.sim, self._child_rng("ptp"),
                              self.config.ptp_config)
        self.mgmt = ManagementPlane(self.sim, self._child_rng("mgmt"),
                                    self.config.mgmt_base_latency_ns,
                                    self.config.mgmt_jitter_ns)
        self.switches: dict[str, Switch] = {}
        self.hosts: dict[str, Host] = {}
        self.links: list[Link] = []
        #: device name -> {neighbor name -> local port index}
        self.port_map: dict[str, dict[str, int]] = {}
        #: All TraceEvents, in time order (populated when
        #: ``config.enable_tracing`` is set; consumed by the
        #: causal-consistency checker).
        self.trace_log: list["TraceEvent"] = []
        self._build()
        self._install_routes()
        if self.config.enable_tracing:
            for switch in self.switches.values():
                switch.trace_sink = self.trace_log.append
        self.ptp.start()

    def _child_rng(self, label: str) -> random.Random:
        """Derive an independent RNG stream from the root seed."""
        return random.Random(f"{self.config.seed}/{label}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        from repro.lb import EcmpBalancer  # late import avoids a cycle

        topo = self.topology
        lb_factory = self.config.lb_factory or (lambda salt: EcmpBalancer(salt))
        for index, name in enumerate(topo.switches):
            cfg = SwitchConfig(**{**self.config.switch_config.__dict__,
                                  "num_ports": topo.degree(name),
                                  "enable_tracing": self.config.enable_tracing})
            self.switches[name] = Switch(self.sim, name, cfg,
                                         lb=lb_factory(index))
            self.ptp.attach(name)
        for name in topo.hosts:
            self.hosts[name] = Host(self.sim, name)
        for name in topo.nodes:
            neighbors = topo.neighbors(name)
            self.port_map[name] = {nbr: i for i, nbr in enumerate(neighbors)}
        link_rng = self._child_rng("loss")
        for spec in topo.links:
            loss = None
            if self.config.loss_factory is not None:
                loss = self.config.loss_factory(spec, link_rng)
            link = Link(self.sim, spec.bandwidth_bps, spec.propagation_ns,
                        loss=loss, name=f"{spec.a}-{spec.b}")
            self.links.append(link)
            for node in (spec.a, spec.b):
                if topo.kind(node) is NodeKind.SWITCH:
                    port = self.port_map[node][spec.other(node)]
                    self.switches[node].ports[port].connect(link)
                else:
                    self.hosts[node].connect(link)

    def _install_routes(self) -> None:
        topo = self.topology
        for sw_name, switch in self.switches.items():
            ports_of = self.port_map[sw_name]
            for host in topo.hosts:
                next_hops = topo.ecmp_next_hops(sw_name, host)
                if not next_hops:
                    continue
                switch.install_route(host, [ports_of[n] for n in next_hops])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def switch(self, name: str) -> Switch:
        return self.switches[name]

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def port_toward(self, device: str, neighbor: str) -> int:
        """Local port index on ``device`` facing ``neighbor``."""
        return self.port_map[device][neighbor]

    def uplink_ports(self, leaf: str) -> list[int]:
        """Ports of ``leaf`` that face other switches (the "uplinks" whose
        balance Figure 12 studies)."""
        ports = []
        for neighbor, port in self.port_map[leaf].items():
            if self.topology.kind(neighbor) is NodeKind.SWITCH:
                ports.append(port)
        return sorted(ports)

    def peer_of_port(self, switch_name: str, port: int) -> tuple[str, NodeKind]:
        """Name and kind of the device at the far end of a switch port."""
        for neighbor, p in self.port_map[switch_name].items():
            if p == port:
                return neighbor, self.topology.kind(neighbor)
        raise KeyError(f"{switch_name} has no port {port}")

    # ------------------------------------------------------------------
    # Snapshot-deployment support
    # ------------------------------------------------------------------
    def feasible_channels(self, switch_name: str) -> set[tuple[int, int]]:
        """All (ingress port, egress port) pairs that routing can use.

        A packet arriving at switch ``S`` from neighbor ``X`` is headed
        to some host ``h`` for which ``S`` is on a shortest path from
        ``X``; it leaves via one of ``S``'s ECMP ports for ``h``.  Pairs
        outside this set never carry traffic (e.g. valley paths under
        up-down routing), so snapshot completion must not gate on them —
        the paper's "removal of non-utilized upstream neighbors" (§6),
        derived here from the routing function instead of hand-configured.
        """
        import networkx as nx

        topo = self.topology
        graph = topo.to_networkx()
        switch = self.switches[switch_name]
        dist_cache: dict[str, dict[str, int]] = {}

        def dist(a: str, b: str) -> Optional[int]:
            lengths = dist_cache.get(a)
            if lengths is None:
                lengths = dist_cache[a] = nx.single_source_shortest_path_length(graph, a)
            return lengths.get(b)

        pairs: set[tuple[int, int]] = set()
        for neighbor, in_port in self.port_map[switch_name].items():
            from_host = topo.kind(neighbor) is NodeKind.HOST
            for dst, out_ports in switch.routes.items():
                if dst == neighbor:
                    continue
                if not from_host:
                    d_nbr = dist(neighbor, dst)
                    d_here = dist(switch_name, dst)
                    if d_nbr is None or d_here is None or d_nbr != d_here + 1:
                        continue  # S is not on a shortest path from X to dst
                for out_port in out_ports:
                    if out_port != in_port:
                        pairs.add((in_port, out_port))
        return pairs

    def refresh_header_stripping(self) -> None:
        """Recompute which egress units must pop the snapshot header.

        An egress unit strips the header when its link peer cannot parse
        it: always for hosts, and for switches whose facing ingress unit
        is not snapshot-enabled (partial deployment, §10).
        """
        for sw_name, switch in self.switches.items():
            for port in switch.ports:
                if port.link is None:
                    port.egress.strip_header_for_peer = True
                    continue
                peer_name, kind = self.peer_of_port(sw_name, port.index)
                if kind is NodeKind.HOST:
                    port.egress.strip_header_for_peer = True
                    continue
                peer_switch = self.switches[peer_name]
                peer_port = self.port_map[peer_name][sw_name]
                peer_ingress = peer_switch.ports[peer_port].ingress
                port.egress.strip_header_for_peer = not peer_ingress.snapshot_enabled

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Convenience passthrough to the simulator."""
        return self.sim.run(until=until, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Network({self.topology.name!r}, "
                f"switches={len(self.switches)}, hosts={len(self.hosts)})")
