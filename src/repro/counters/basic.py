"""Packet and byte counters — the simplest snapshot targets.

These are the metrics of the Table 1 "Packet Count" data-plane variant,
and the counters for which channel state is meaningful: a network-wide
packet count is only conserved if in-flight packets are credited to the
channel of the snapshot epoch they were sent in (§4.2).
"""

from __future__ import annotations

from repro.counters.base import Counter, register_counter
from repro.sim.packet import Packet


class PacketCounter(Counter):
    """Counts data packets traversing the owning unit."""

    def __init__(self) -> None:
        self.value = 0

    def update(self, packet: Packet, now_ns: int) -> None:
        self.value += 1

    def read(self) -> int:
        return self.value

    def reset(self) -> None:
        self.value = 0


class ByteCounter(Counter):
    """Counts bytes of data packets traversing the owning unit."""

    def __init__(self) -> None:
        self.value = 0

    def update(self, packet: Packet, now_ns: int) -> None:
        self.value += packet.size_bytes

    def read(self) -> int:
        return self.value

    def reset(self) -> None:
        self.value = 0


register_counter("packet_count", PacketCounter)
register_counter("byte_count", ByteCounter)
