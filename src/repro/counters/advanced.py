"""Additional line-rate metrics demonstrating the primitive's generality.

"The primitive itself is agnostic to the type of local measurement and
supports the collection of any variable accessible from the data plane"
(§1).  Two further examples that real P4 programs implement:

* :class:`QueueHighWatermark` — the maximum queue depth seen since the
  last control-plane read (a clear-on-read register maintained by
  comparing the traffic manager's depth metadata on every packet).
  Snapshotting watermarks network-wide answers "how much of my network
  is concurrently loaded?" with burst peaks instead of point samples.
* :class:`ActiveFlowEstimator` — a linear-counting bitmap sketch of the
  number of distinct 5-tuples seen since the last clear: each packet
  hashes its flow key to one bit of a register array.  Reading applies
  the standard linear-counting estimator ``-m * ln(z / m)`` where ``z``
  is the count of zero bits.  Network-wide snapshots of flow counts
  expose flow-level incast (many flows converging at one instant) that
  byte counters cannot.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.counters.base import Counter, register_counter
from repro.lb.ecmp import flow_hash
from repro.sim.packet import Packet


class QueueHighWatermark(Counter):
    """Max-depth-since-last-read gauge over an egress queue."""

    def __init__(self, depth_fn: Callable[[], int],
                 clear_on_read: bool = True) -> None:
        self._depth_fn = depth_fn
        self.clear_on_read = clear_on_read
        self._watermark = 0

    @classmethod
    def for_egress_unit(cls, egress_unit,
                        clear_on_read: bool = True) -> "QueueHighWatermark":
        return cls(lambda: egress_unit.queue_depth_packets, clear_on_read)

    def update(self, packet: Packet, now_ns: int) -> None:
        depth = self._depth_fn()
        if depth > self._watermark:
            self._watermark = depth

    def read(self) -> int:
        value = self._watermark
        if self.clear_on_read:
            self._watermark = self._depth_fn()
        return value

    def reset(self) -> None:
        self._watermark = 0


class ActiveFlowEstimator(Counter):
    """Linear-counting sketch of distinct flows since the last clear."""

    def __init__(self, bits: int = 1024, salt: int = 0) -> None:
        if bits < 8:
            raise ValueError("sketch needs at least 8 bits")
        self.bits = bits
        self.salt = salt
        self._bitmap = bytearray(bits)
        self._set_bits = 0

    def update(self, packet: Packet, now_ns: int) -> None:
        index = flow_hash(packet.flow, self.salt) % self.bits
        if not self._bitmap[index]:
            self._bitmap[index] = 1
            self._set_bits += 1

    def read(self) -> int:
        """Linear-counting estimate of distinct flows (integer)."""
        zeros = self.bits - self._set_bits
        if zeros == 0:
            # Sketch saturated: the estimator diverges; report the
            # asymptotic ceiling (callers should size the bitmap up).
            return self.bits * 8
        estimate = -self.bits * math.log(zeros / self.bits)
        return int(round(estimate))

    @property
    def saturated(self) -> bool:
        return self._set_bits == self.bits

    def reset(self) -> None:
        self._bitmap = bytearray(self.bits)
        self._set_bits = 0


register_counter("active_flows", ActiveFlowEstimator)
