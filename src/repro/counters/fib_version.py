"""Forwarding-state snapshot support (§10, "Measuring Forwarding State").

ASIC data planes cannot capture FIB table entries directly, but they can
record *version information*: the control plane tags every FIB rule with
a generation number, the matched rule's tag is written back into a
per-ingress register, and a snapshot of those registers "gives hints as
to the entire network's forwarding state".

:class:`FibVersionCounter` is the gauge over that register.  A
consistent snapshot where different switches report generations from
different configuration epochs is direct evidence of a route update
caught mid-propagation — the class of impossible-state confusion (§2.2,
question 4) that asynchronous readings cannot rule out.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.counters.base import Counter
from repro.sim.packet import Packet


class FibVersionCounter(Counter):
    """Reads the last-matched FIB rule version at one ingress unit."""

    def __init__(self, version_fn: Callable[[], int]) -> None:
        self._version_fn = version_fn

    @classmethod
    def for_ingress_unit(cls, ingress_unit) -> "FibVersionCounter":
        switch = ingress_unit.switch
        port = ingress_unit.port_index
        return cls(lambda: switch.last_matched_version[port])

    def update(self, packet: Packet, now_ns: int) -> None:
        # The register is written by the forwarding lookup itself; the
        # counter is a pure gauge over it.
        pass

    def read(self) -> int:
        return self._version_fn()
