"""Snapshottable data-plane counters.

Speedlight is metric-agnostic: "any value accessible at line rate in the
data plane can be snapshotted" (§3).  This package provides the metrics
used by the paper's evaluation:

* :class:`PacketCounter` / :class:`ByteCounter` — per-port counts;
* :class:`QueueDepthCounter` — instantaneous egress queue depth;
* :class:`EwmaInterarrival` — the exponentially-weighted moving average
  of packet interarrival time from §8, implemented register-for-register
  the way the paper's two-phase Tofino program does it (decay 0.5);
* :class:`EwmaPacketRate` — the packet-rate EWMA used in Figure 13;
* :class:`FibVersionCounter` — forwarding-state version tags (§10).

Counters model *stateful registers*: they are updated inline by the
processing unit for every data packet and read either by the snapshot
logic (at snapshot time) or by the control plane (the polling baseline).
"""

from repro.counters.base import Counter, make_counter, register_counter, COUNTER_REGISTRY
from repro.counters.basic import PacketCounter, ByteCounter
from repro.counters.queue_depth import QueueDepthCounter
from repro.counters.ewma import EwmaInterarrival, EwmaPacketRate
from repro.counters.fib_version import FibVersionCounter
from repro.counters.advanced import ActiveFlowEstimator, QueueHighWatermark
from repro.counters.heavy_hitter import CountMinSketch, HeavyHitterCounter

__all__ = [
    "ActiveFlowEstimator",
    "QueueHighWatermark",
    "CountMinSketch",
    "HeavyHitterCounter",
    "Counter",
    "make_counter",
    "register_counter",
    "COUNTER_REGISTRY",
    "PacketCounter",
    "ByteCounter",
    "QueueDepthCounter",
    "EwmaInterarrival",
    "EwmaPacketRate",
    "FibVersionCounter",
]
