"""Instantaneous egress queue depth.

Queue depth is the motivating metric of the paper's §2.2 example
(Figure 1: "balanced" vs "unbalanced" queues).  In hardware, the traffic
manager exposes per-queue occupancy to the egress pipeline as packet
metadata; here the counter reads the owning egress unit's queue directly.

Queue depth is a *gauge*, not an accumulator, so the paper notes that
operators "may not care about channel state at all (e.g., instantaneous
queue depth measurements)" — snapshotting it without channel state is the
normal configuration.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.counters.base import Counter
from repro.sim.packet import Packet


class QueueDepthCounter(Counter):
    """Reads a queue-occupancy gauge.

    ``depth_fn`` returns the current depth; ``in_bytes`` selects bytes
    vs. packets.  Bind it to an egress unit with :meth:`for_egress_unit`.
    """

    def __init__(self, depth_fn: Callable[[], int]) -> None:
        self._depth_fn = depth_fn

    @classmethod
    def for_egress_unit(cls, egress_unit, in_bytes: bool = False) -> "QueueDepthCounter":
        """Create a depth counter watching ``egress_unit``'s output queue."""
        if in_bytes:
            return cls(lambda: egress_unit.queue_depth_bytes)
        return cls(lambda: egress_unit.queue_depth_packets)

    def update(self, packet: Packet, now_ns: int) -> None:
        # A gauge: nothing to accumulate per packet.
        pass

    def read(self) -> int:
        return self._depth_fn()
