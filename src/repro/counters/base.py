"""Counter framework.

A counter is an object with two data-plane-visible operations:

* ``update(packet, now_ns)`` — executed inline for every data packet that
  traverses the owning processing unit (the "Update Counter" stage of
  Figures 4 and 5);
* ``read()`` — return the current register value.  The snapshot agent
  calls this at snapshot time; the control plane calls it when polling.

Counters must hold only *local* state: the paper requires switch-wide
shared state to be re-expressed as per-unit state (§4.2).  The framework
enforces nothing — it is a convention — but all bundled counters follow
it.

``COUNTER_REGISTRY`` maps metric names (as used in snapshot requests,
e.g. ``"packet_count"``) to factories, so deployments can be configured
with a string.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

from repro.sim.packet import Packet


class Counter(abc.ABC):
    """Base class for data-plane counters."""

    @abc.abstractmethod
    def update(self, packet: Packet, now_ns: int) -> None:
        """Process one packet (line-rate register update)."""

    @abc.abstractmethod
    def read(self) -> int:
        """Current register value (integer, as hardware registers are)."""

    def reset(self) -> None:
        """Zero the registers.  Subclasses override as needed."""


#: Metric name -> factory.  Factories take no arguments; per-unit context
#: (e.g. which queue a depth counter watches) is bound by the deployment.
COUNTER_REGISTRY: dict[str, Callable[[], Counter]] = {}


def register_counter(name: str, factory: Callable[[], Counter]) -> None:
    """Register a counter factory under a metric name."""
    if name in COUNTER_REGISTRY:
        raise ValueError(f"counter {name!r} already registered")
    COUNTER_REGISTRY[name] = factory


def make_counter(name: str) -> Counter:
    """Instantiate a registered counter by metric name."""
    try:
        factory = COUNTER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(COUNTER_REGISTRY))
        raise KeyError(f"unknown metric {name!r}; known metrics: {known}") from None
    return factory()
