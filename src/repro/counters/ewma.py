"""EWMA of packet interarrival time — the paper's §8 counter.

The paper implements the EWMA "in two phases due to hardware limitations
on register computation"::

    interarrival = pkt_timestamp - last_ts[port]
    last_ts[port] = pkt_timestamp
    if packet_count[port] is even:
        temp_ewma[port] += interarrival
    else:
        temp_ewma[port] /= 2
    ewma[port] /= temp_ewma[port]

(The last line is a typo in the published listing — dividing an EWMA by a
temporary would not yield a time; the accompanying prose pins down the
intended semantics: "The EWMA updates on every other packet with the
average interarrival of the last two packets ... functionally equivalent
to an EWMA with a decay factor of .5".)

:class:`EwmaInterarrival` implements exactly those semantics with the
same four registers (``last_ts``, ``packet_count``, ``temp_ewma``,
``ewma``) and integer arithmetic, as a Tofino register pair would:

* even-numbered packet (0-based): ``temp_ewma`` accumulates the new
  interarrival;
* odd-numbered packet: ``temp_ewma`` becomes the average of the pair's
  two interarrivals, and ``ewma`` is folded as
  ``ewma = ewma/2 + temp_ewma/2`` (decay 0.5).
"""

from __future__ import annotations

from repro.counters.base import Counter, register_counter
from repro.sim.packet import Packet


class EwmaInterarrival(Counter):
    """Two-phase register implementation of the interarrival EWMA (ns)."""

    def __init__(self) -> None:
        # The four stateful registers of the paper's listing.
        self.last_ts = 0
        self.packet_count = 0
        self.temp_ewma = 0
        self.ewma = 0
        self._seeded = False

    def update(self, packet: Packet, now_ns: int) -> None:
        if self.last_ts == 0:
            # First packet ever: no interarrival defined yet.  Hardware
            # uses a zero-timestamp sentinel the same way.
            self.last_ts = now_ns
            return
        interarrival = now_ns - self.last_ts
        self.last_ts = now_ns
        if self.packet_count % 2 == 0:
            # Phase 1: stash the first interarrival of the pair.
            self.temp_ewma = interarrival
        else:
            # Phase 2: average the pair, then fold into the EWMA.
            self.temp_ewma = (self.temp_ewma + interarrival) // 2
            if not self._seeded:
                # A zero EWMA register means "uninitialized": seed it with
                # the first pair average instead of decaying from zero.
                self.ewma = self.temp_ewma
                self._seeded = True
            else:
                self.ewma = self.ewma // 2 + self.temp_ewma // 2
        self.packet_count += 1

    def read(self) -> int:
        """Current EWMA of interarrival time, in nanoseconds."""
        return self.ewma

    def reset(self) -> None:
        self.last_ts = 0
        self.packet_count = 0
        self.temp_ewma = 0
        self.ewma = 0
        self._seeded = False


class EwmaPacketRate(Counter):
    """EWMA of packet *rate* (packets/second), used in Figure 13.

    Derived from the interarrival EWMA: rate = 1e9 / interarrival_ns.
    Reading an idle port (no pairs completed yet) returns 0.
    """

    def __init__(self) -> None:
        self._interarrival = EwmaInterarrival()

    def update(self, packet: Packet, now_ns: int) -> None:
        self._interarrival.update(packet, now_ns)

    def read(self) -> int:
        ewma_ns = self._interarrival.read()
        if ewma_ns <= 0:
            return 0
        return 1_000_000_000 // ewma_ns

    def reset(self) -> None:
        self._interarrival.reset()


register_counter("ewma_interarrival", EwmaInterarrival)
register_counter("ewma_packet_rate", EwmaPacketRate)
