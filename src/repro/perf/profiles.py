"""cProfile helpers shared by ``TrialRunner(profile_dir=...)``, the CLI
``--profile`` flag, and ``make profile``.

Deliberately dependency-free (stdlib only) so :mod:`repro.runtime` can
import it without cycles.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from collections.abc import Callable
from typing import Any, Optional


def profile_call(fn: Callable[..., Any], *args: Any, out: str,
                 **kwargs: Any) -> Any:
    """Run ``fn(*args, **kwargs)`` under cProfile, dump stats to ``out``
    (a ``.prof`` file readable by ``pstats``/``snakeviz``), and return
    the call's result."""
    profiler = cProfile.Profile()
    try:
        return profiler.runcall(fn, *args, **kwargs)
    finally:
        profiler.dump_stats(out)


def top_functions(path: str, limit: int = 25,
                  sort: str = "cumulative",
                  strip_dirs: bool = True) -> str:
    """Render the top ``limit`` functions of a ``.prof`` dump as text —
    what ``make profile`` prints after the run."""
    stats = pstats.Stats(path, stream=io.StringIO())
    if strip_dirs:
        stats.strip_dirs()
    stream = io.StringIO()
    stats.stream = stream
    stats.sort_stats(sort).print_stats(limit)
    return stream.getvalue()


def print_profile(path: str, limit: int = 25,
                  sort: str = "cumulative",
                  write: Optional[Callable[[str], Any]] = None) -> None:
    (write or print)(top_functions(path, limit=limit, sort=sort))


def main(argv: Optional[list] = None) -> int:
    """``python -m repro.perf.profiles dump.prof [--limit N] [--sort KEY]``"""
    import argparse

    parser = argparse.ArgumentParser(
        description="Pretty-print a cProfile dump produced by --profile "
                    "or make profile")
    parser.add_argument("path", help=".prof file to read")
    parser.add_argument("--limit", type=int, default=25)
    parser.add_argument("--sort", default="cumulative",
                        help="pstats sort key (cumulative, tottime, calls)")
    args = parser.parse_args(argv)
    print_profile(args.path, limit=args.limit, sort=args.sort)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
