"""Performance tooling: the hot-path micro-benchmark suite and
profiling helpers that lock in the discrete-event core's speed.

* :mod:`repro.perf.bench` — the micro-suite behind ``make bench`` and
  the CI ``bench-smoke`` job; writes/checks ``BENCH_core.json``.
* :mod:`repro.perf.profiles` — thin cProfile wrappers used by the CLI
  ``--profile`` flag and ``make profile``.

Submodules are imported lazily (both double as ``python -m`` entry
points; an eager import here would shadow their ``-m`` execution).

See ``docs/PERF.md`` for the methodology and the recorded numbers.
"""

import importlib

__all__ = ["bench", "profiles"]


def __getattr__(name):
    if name in __all__:
        return importlib.import_module(f"repro.perf.{name}")
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
