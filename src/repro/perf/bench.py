"""Hot-path micro-benchmark suite for the discrete-event core.

Times the three layers the optimization targets, from innermost out:

* ``event_loop`` — the engine alone: self-rescheduling tickers through
  ``schedule``/``schedule_fast``, no network model.  Measures raw
  events/second of the heap + dispatch loop.
* ``timer_churn`` — schedule-then-cancel at a 75% cancellation rate:
  the cancellation side table and amortised heap compaction.
* ``snapshot_round`` — a 4-switch leaf-spine carrying Poisson traffic
  through a short synchronized-snapshot campaign: the full packet path
  (queues, links, snapshot headers, notifications).
* ``fig10_knee`` — one Figure 10 max-rate knee search end-to-end
  through the trial runtime: the shape of a real experiment trial.
* ``agg_smoke`` / ``agg_knee`` — the whole-fabric snapshot-rate knee
  with and without the hierarchical aggregation tree
  (:mod:`repro.core.aggregation`): ``agg_smoke`` is the CI-sized k=4
  comparison, ``agg_knee`` the headline k=8 run whose ``speedup`` field
  is the tentpole's acceptance number.
* ``service_smoke`` — the snapshot service (:mod:`repro.service`)
  sustaining >= 10^4 continuous epochs under a memcache incast:
  epochs/second of the full intake -> delta store pipeline, with the
  store's exact byte accounting asserted flat after the retention ring
  fills (the bounded-memory acceptance check — the bench *fails* if
  store memory grows with run length).

Throughput benchmarks are normalized by a fixed pure-Python calibration
loop so the regression gate survives machine changes: ``score =
events_per_sec / calibration_ops_per_sec`` is (to first order)
machine-independent, while raw ``seconds`` are recorded for human eyes.
The knee benchmarks are *model*-normalized instead — their knees are
deterministic simulation outputs, so the score is a saturation duty
cycle that only a code change can move.  ``BENCH_core.json`` keeps a
history of labelled entries; CI re-runs the quick suite and fails when
any ``GATE_BENCHES`` score regresses by more than the configured
fraction against the committed baseline entry.

Usage::

    python -m repro.perf.bench                         # run, print table
    python -m repro.perf.bench --out BENCH_core.json --label mybranch
    python -m repro.perf.bench --quick \
        --check-against BENCH_core.json --max-regression 0.25

See ``docs/PERF.md`` for methodology and recorded numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.engine import MS, Simulator

SCHEMA_VERSION = 1
DEFAULT_BENCH_FILE = "BENCH_core.json"
#: The benchmark whose normalized score gates CI regressions.
GATE_BENCH = "event_loop"
#: Every benchmark the regression gate checks (when the baseline entry
#: has a score for it): the engine hot path, the sharded core, and the
#: two model-normalized knees (Fig. 10 per-switch, aggregation fabric).
GATE_BENCHES = (GATE_BENCH, "shard_smoke", "fig10_knee", "agg_smoke",
                "service_smoke")


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------

def calibrate(loops: int = 2_000_000) -> float:
    """Ops/second of a fixed pure-Python integer loop.

    Everything the suite measures is pure-Python bytecode dispatch, so
    dividing a benchmark's events/second by this rate yields a score
    that tracks *code* changes, not *machine* changes.
    """
    started = time.perf_counter()
    acc = 0
    for i in range(loops):
        acc += i & 7
    seconds = time.perf_counter() - started
    assert acc >= 0  # keep the loop un-eliminable
    return loops / seconds


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------

def bench_event_loop(events: int = 400_000, tickers: int = 32) -> dict[str, Any]:
    """Raw engine throughput: ``tickers`` self-rescheduling callbacks."""
    sim = Simulator()

    def tick(period: int) -> None:
        sim.schedule_fast(period, tick, period)

    def slow_tick(period: int) -> None:
        sim.schedule(period, slow_tick, period)

    # Mixed population: mostly fast-path, a few through the validated
    # public path, with co-prime-ish periods so heap order keeps churning.
    for i in range(tickers):
        fn = slow_tick if i % 4 == 0 else tick
        sim.schedule(i + 1, fn, 97 + 13 * i)

    started = time.perf_counter()
    executed = sim.run(max_events=events)
    seconds = time.perf_counter() - started
    return {"seconds": seconds, "events": executed,
            "events_per_sec": executed / seconds}


def bench_timer_churn(timers: int = 150_000, cancel_mod: int = 4) -> dict[str, Any]:
    """Cancellation-heavy load: 3 of every 4 timers are cancelled."""
    sim = Simulator()

    def expire() -> None:
        pass

    started = time.perf_counter()
    for i in range(timers):
        handle = sim.schedule(1_000 + i % 977, expire)
        if i % cancel_mod:
            handle.cancel()
    executed = sim.run()
    seconds = time.perf_counter() - started
    return {"seconds": seconds, "events": executed,
            "events_per_sec": executed / seconds,
            "timers": timers, "compactions": sim.compactions}


def bench_snapshot_round(snapshots: int = 4, rate_pps: float = 40_000.0) -> dict[str, Any]:
    """A 4-switch leaf-spine snapshot campaign over Poisson traffic."""
    from repro.core import deploy
    from repro.sim.network import Network, NetworkConfig
    from repro.topology import leaf_spine
    from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

    interval = 5 * MS
    horizon = (snapshots + 2) * interval
    network = Network(leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2),
                      NetworkConfig(seed=11))
    PoissonWorkload(network, PoissonConfig(rate_pps=rate_pps,
                                           stop_ns=snapshots * interval,
                                           sport_churn=True)).start()
    deployment = deploy(network, metric="packet_count", channel_state=True)
    deployment.schedule_campaign(count=snapshots, interval_ns=interval)

    started = time.perf_counter()
    network.run(until=horizon)
    seconds = time.perf_counter() - started
    events = network.sim.events_run
    return {"seconds": seconds, "events": events,
            "events_per_sec": events / seconds, "snapshots": snapshots}


def bench_fig10_knee(ports: int = 16, burst: int = 25,
                     search_iterations: int = 7) -> dict[str, Any]:
    """One Figure 10 knee search through the trial runtime.

    The score is *model-normalized*, not calibration-normalized: the
    knee is a deterministic simulation output, so the natural unit is
    the serial-service duty cycle ``rate x 2 x ports x service_ns`` — 1.0
    when the channel is saturated.  A knee regression (a protocol or
    channel change that lowers the sustainable rate) moves the score;
    machine speed cannot.
    """
    from repro.core import ControlPlaneConfig
    from repro.experiments import fig10
    from repro.runtime.runner import execute_spec

    config = fig10.Fig10Config(port_counts=[ports], burst=burst,
                               search_iterations=search_iterations)
    spec = fig10.specs(config)[0]
    started = time.perf_counter()
    result = execute_spec(spec)
    seconds = time.perf_counter() - started
    rate = result.data["max_rate_hz"]
    service_ns = ControlPlaneConfig().notification_service_ns
    return {"seconds": seconds, "ports": ports, "max_rate_hz": rate,
            "score": round(rate * 2 * ports * service_ns / 1e9, 4)}


def _agg_knee_rates(k: int, degree: int, burst: int,
                    search_iterations: int) -> "tuple[float, float, int]":
    """(flat max rate, tree max rate, units) of one whole-fabric
    aggregation knee comparison on a fat-tree of arity ``k``."""
    from repro.experiments import fig10
    from repro.runtime.runner import execute_spec

    config = fig10.AggKneeConfig(arities=[k], degrees=[0, degree],
                                 burst=burst,
                                 search_iterations=search_iterations)
    rates: dict[int, float] = {}
    for spec in fig10.agg_specs(config):
        rates[spec.params["degree"]] = execute_spec(spec).data["max_rate_hz"]
    switches = 5 * k ** 2 // 4
    return rates[0], rates[degree], 2 * k * switches


def _agg_result(k: int, degree: int, burst: int,
                search_iterations: int, seconds: float,
                flat_rate: float, tree_rate: float,
                units: int) -> dict[str, Any]:
    from repro.core import AggregationConfig

    # Model-normalized like fig10_knee: the root relay's per-record duty
    # cycle at the tree's knee rate.  Machine-independent; drops when an
    # aggregation change lowers the sustainable whole-fabric rate.
    per_record_ns = AggregationConfig().relay_per_record_ns
    return {"seconds": seconds, "k": k, "degree": degree, "units": units,
            "max_rate_hz": round(tree_rate, 1),
            "flat_rate_hz": round(flat_rate, 1),
            "speedup": round(tree_rate / flat_rate, 1) if flat_rate else None,
            "score": round(tree_rate * units * per_record_ns / 1e9, 4)}


def bench_agg_knee(k: int = 8, degree: int = 4, burst: int = 10,
                   search_iterations: int = 6) -> dict[str, Any]:
    """The headline aggregation measurement: whole-fabric knee on a
    fat-tree k=8 (80 switches, 1280 units), flat intake vs. the
    degree-4 tree.  ``speedup`` is the tentpole's acceptance number."""
    started = time.perf_counter()
    flat_rate, tree_rate, units = _agg_knee_rates(k, degree, burst,
                                                  search_iterations)
    seconds = time.perf_counter() - started
    return _agg_result(k, degree, burst, search_iterations, seconds,
                       flat_rate, tree_rate, units)


def bench_agg_smoke(k: int = 4, degree: int = 4, burst: int = 6,
                    search_iterations: int = 6) -> dict[str, Any]:
    """The CI-sized aggregation gate: the same knee comparison on a
    fat-tree k=4.  Identical parameters in quick and full runs, so the
    quick CI score is directly comparable to the committed baseline."""
    started = time.perf_counter()
    flat_rate, tree_rate, units = _agg_knee_rates(k, degree, burst,
                                                  search_iterations)
    seconds = time.perf_counter() - started
    return _agg_result(k, degree, burst, search_iterations, seconds,
                       flat_rate, tree_rate, units)


def _shard_bench_setup(worker, rate_pps: float, stop_ns: int,
                       snapshots: int, interval_ns: int):
    """Per-shard setup of the shard-scaling benchmark: Poisson traffic
    from this shard's hosts to *all* hosts (so a constant share crosses
    the cut) under a short snapshot campaign.  Module-level so the
    process runner could pickle it too."""
    from repro.core import deploy
    from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

    topo = worker.network.topology
    local = [h for h in topo.hosts
             if worker.plan.assignment[h] == worker.shard_id]
    pairs = [(src, dst) for src in local for dst in topo.hosts if dst != src]
    PoissonWorkload(worker.network, PoissonConfig(
        seed=worker.shard_id + 1, rate_pps=rate_pps, stop_ns=stop_ns,
        pairs=pairs, sport_churn=True)).start()
    deployment = deploy(worker, metric="packet_count")
    if deployment.is_observer_shard and snapshots:
        deployment.schedule_campaign(snapshots, interval_ns)
    return lambda: worker.sim.events_run


def _run_sharded_once(topo, shards: int, rate_pps: float, duration_ns: int,
                      snapshots: int, interval_ns: int) -> dict[str, float]:
    """One sharded run; returns total events, wall seconds, and the
    critical-path seconds (slowest shard's busy time plus everything the
    coordinator did outside the workers).

    The in-process runner is used deliberately: per-shard busy time
    measured in one process is independent of how many cores the
    benchmark host happens to have, whereas the process runner's wall
    clock on an oversubscribed host measures the host, not the code.
    ``events / critical-path seconds`` is the wall-clock rate a host
    with >= ``shards`` idle cores would sustain, minus pipe transport.
    """
    from repro.sim.network import NetworkConfig
    from repro.sim.shard import InProcessShardRunner

    runner = InProcessShardRunner(
        topo, NetworkConfig(seed=13), shards=shards,
        setup=_shard_bench_setup,
        setup_args=(rate_pps, duration_ns, snapshots, interval_ns),
        busy_clock=time.perf_counter)
    started = time.perf_counter()
    per_shard_events = runner.run(until=duration_ns)
    wall = time.perf_counter() - started
    events = sum(per_shard_events)
    busy = [w.busy_s for w in runner.workers]
    coordinator = max(0.0, wall - sum(busy))
    # shards=1 runs the plain path (busy_s stays 0): critical == wall.
    critical = (max(busy) + coordinator) if any(busy) else wall
    return {"events": events, "wall_s": wall, "critical_s": critical,
            "rounds": runner.rounds}


def bench_shard_scaling(k: int = 8, shard_counts: "tuple[int, ...]" = (1, 2, 4),
                        rate_pps: float = 50.0, duration_ms: int = 25,
                        snapshots: int = 3,
                        fabric_prop_ns: int = 20_000) -> dict[str, Any]:
    """Space-parallel scaling on a fat-tree: aggregate events/s vs shard
    count.  ``events_per_sec`` (the scored quantity) is the aggregate
    critical-path throughput at the highest shard count; ``speedup`` is
    its ratio to the single-shard run."""
    from repro.topology import fat_tree

    topo = fat_tree(k=k, fabric_prop_ns=fabric_prop_ns)
    duration_ns = duration_ms * MS
    interval_ns = 5 * MS
    eps: dict[int, float] = {}
    total_seconds = 0.0
    total_events = 0
    rounds = 0
    for shards in shard_counts:
        run = _run_sharded_once(topo, shards, rate_pps, duration_ns,
                                snapshots, interval_ns)
        eps[shards] = run["events"] / run["critical_s"]
        total_seconds += run["wall_s"]
        total_events += int(run["events"])
        rounds = max(rounds, int(run["rounds"]))
    first, last = shard_counts[0], shard_counts[-1]
    return {"seconds": total_seconds, "events": total_events,
            "events_per_sec": eps[last],
            "k": k, "shards": f"{first}..{last}", "rounds": rounds,
            "speedup": round(eps[last] / eps[first], 2)}


def bench_shard_smoke(k: int = 4, shards: int = 2, rate_pps: float = 400.0,
                      duration_ms: int = 15) -> dict[str, Any]:
    """The CI-sized sharded-core gate: one 2-shard run on a small
    fat-tree; the normalized aggregate (critical-path) events/s score is
    regression-checked like ``event_loop``."""
    from repro.topology import fat_tree

    topo = fat_tree(k=k, fabric_prop_ns=20_000)
    run = _run_sharded_once(topo, shards, rate_pps, duration_ms * MS,
                            snapshots=2, interval_ns=5 * MS)
    return {"seconds": run["wall_s"], "events": int(run["events"]),
            "events_per_sec": run["events"] / run["critical_s"],
            "k": k, "shards": shards, "rounds": int(run["rounds"])}


def bench_service_smoke(epochs: int = 10_000) -> dict[str, Any]:
    """The snapshot-as-a-service sustained-throughput gate.

    Drives :class:`repro.runtime.streaming.ServiceRun` — a leaf-spine
    under memcache incast with a continuous 1 ms snapshot cadence —
    until ``epochs`` epoch documents are stored, then reports wall-clock
    epochs/second and events/second (the latter is the normalized,
    regression-gated score, comparable across epoch counts because the
    run is steady-state).

    Bounded memory is *asserted*, not just reported: the store's exact
    canonical-JSON byte accounting is sampled every simulation chunk
    once the retention ring has filled, and the bench raises if the
    ring overflows or the byte count drifts past a constant band —
    store memory growing with run length is a correctness regression,
    not a slowdown.
    """
    from repro.runtime.streaming import ServiceRun, ServiceSpec
    from repro.service.pipeline import PipelineConfig
    from repro.sim.engine import US

    retention = 512
    run = ServiceRun(ServiceSpec(
        seed=11, interval_ns=1 * MS, mean_request_gap_ns=2000 * US,
        pipeline=PipelineConfig(retention=retention, keyframe_interval=32),
        chunk_ns=200 * MS))
    store = run.pipeline.store
    samples: list[int] = []

    def sample_store(_run: Any) -> None:
        if store.appended >= retention:
            samples.append(store.encoded_bytes)

    report = run.run(epochs=epochs, on_chunk=sample_store)
    samples.append(store.encoded_bytes)

    entries = len(store)
    if entries > retention:
        raise RuntimeError(
            f"service store overflowed its ring: {entries} entries "
            f"held, retention is {retention}")
    flatness = max(samples) / min(samples)
    if flatness > 1.5:
        raise RuntimeError(
            f"service store memory is not flat: encoded bytes ranged "
            f"{min(samples)}..{max(samples)} ({flatness:.2f}x) after "
            f"the retention ring filled")
    return {"seconds": report.wall_seconds, "events": report.events,
            "events_per_sec": report.events_per_sec,
            "epochs": report.epochs_stored,
            "epochs_per_sec": round(report.epochs_per_sec, 1),
            "store_bytes": store.encoded_bytes,
            "flatness": round(flatness, 3)}


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------

@dataclass
class BenchResult:
    """One labelled run of the suite (one entry of ``BENCH_core.json``)."""

    label: str
    quick: bool
    calibration_ops_per_sec: float
    results: dict[str, dict[str, Any]] = field(default_factory=dict)
    timestamp: str = ""
    python: str = ""
    machine: str = ""

    def to_json(self) -> dict[str, Any]:
        return {"label": self.label, "timestamp": self.timestamp,
                "python": self.python, "machine": self.machine,
                "quick": self.quick,
                "calibration_ops_per_sec": round(
                    self.calibration_ops_per_sec, 1),
                "results": self.results}

    def score(self, name: str = GATE_BENCH) -> Optional[float]:
        entry = self.results.get(name)
        return None if entry is None else entry.get("score")

    def table(self) -> str:
        lines = [f"{'benchmark':<16} {'seconds':>9} {'events/s':>12} "
                 f"{'score':>8}  notes"]
        for name, r in self.results.items():
            eps = r.get("events_per_sec")
            score = r.get("score")
            notes = ", ".join(f"{k}={v}" for k, v in r.items()
                              if k not in ("seconds", "events",
                                           "events_per_sec", "score"))
            lines.append(
                f"{name:<16} {r['seconds']:>9.3f} "
                f"{(f'{eps:,.0f}' if eps else '-'):>12} "
                f"{(f'{score:.4f}' if score is not None else '-'):>8}  "
                f"{notes}")
        lines.append(f"calibration: "
                     f"{self.calibration_ops_per_sec / 1e6:.1f} Mops/s")
        return "\n".join(lines)


def _best_of(fn, repeat: int) -> dict[str, Any]:
    """Best (minimum-seconds) of ``repeat`` runs — the standard defence
    against scheduler noise for micro-benchmarks."""
    best: Optional[dict[str, Any]] = None
    for _ in range(repeat):
        run = fn()
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    return best


def run_suite(label: str = "adhoc", quick: bool = False,
              repeat: int = 3,
              progress=None) -> BenchResult:
    """Run every benchmark; returns the labelled :class:`BenchResult`."""
    note = progress or (lambda msg: None)
    repeat = max(1, repeat)

    note("calibrating")
    calibration = max(calibrate() for _ in range(2))

    # Plans are (name, fn) or (name, fn, repeat_cap): sustained runs like
    # service_smoke are self-averaging, so best-of-N only burns time.
    if quick:
        plans = [
            ("event_loop", lambda: bench_event_loop(events=150_000)),
            ("timer_churn", lambda: bench_timer_churn(timers=60_000)),
            ("snapshot_round", lambda: bench_snapshot_round(snapshots=2)),
            ("fig10_knee", lambda: bench_fig10_knee(
                ports=8, burst=15, search_iterations=6)),
            ("shard_smoke", lambda: bench_shard_smoke(duration_ms=10)),
            ("agg_smoke", bench_agg_smoke),
            ("service_smoke", lambda: bench_service_smoke(epochs=2_500), 1),
        ]
    else:
        plans = [
            ("event_loop", bench_event_loop),
            ("timer_churn", bench_timer_churn),
            ("snapshot_round", bench_snapshot_round),
            ("fig10_knee", bench_fig10_knee),
            ("shard_smoke", bench_shard_smoke),
            ("shard_scaling", bench_shard_scaling),
            ("agg_smoke", bench_agg_smoke),
            ("agg_knee", bench_agg_knee),
            ("service_smoke", bench_service_smoke, 1),
        ]

    result = BenchResult(
        label=label, quick=quick, calibration_ops_per_sec=calibration,
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        python=f"{platform.python_implementation()} "
               f"{platform.python_version()}",
        machine=platform.machine())

    for name, fn, *cap in plans:
        note(f"running {name}")
        r = _best_of(fn, min([repeat, *cap]))
        r["seconds"] = round(r["seconds"], 4)
        if "events_per_sec" in r:
            r["events_per_sec"] = round(r["events_per_sec"], 1)
            # Machine-normalized throughput; the regression gate's unit.
            r["score"] = round(r["events_per_sec"] / calibration, 4)
        result.results[name] = r
    return result


# ----------------------------------------------------------------------
# History file + regression gate
# ----------------------------------------------------------------------

def load_history(path: str) -> dict[str, Any]:
    if not os.path.exists(path):
        return {"schema": SCHEMA_VERSION, "suite": "core", "entries": []}
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported schema {data.get('schema')!r}")
    return data


def append_entry(path: str, result: BenchResult) -> None:
    """Append ``result`` to the history, replacing any same-label entry."""
    history = load_history(path)
    history["entries"] = [e for e in history["entries"]
                          if e.get("label") != result.label]
    history["entries"].append(result.to_json())
    with open(path, "w") as fh:
        json.dump(history, fh, indent=2, sort_keys=False)
        fh.write("\n")


def baseline_entry(history: dict[str, Any],
                   label: Optional[str] = None) -> Optional[dict[str, Any]]:
    entries: list[dict[str, Any]] = history.get("entries", [])
    if label is not None:
        for entry in entries:
            if entry.get("label") == label:
                return entry
        return None
    return entries[-1] if entries else None


def check_regression(current: BenchResult, baseline: dict[str, Any],
                     max_regression: float = 0.25,
                     bench: str = GATE_BENCH) -> "tuple[bool, str]":
    """Compare normalized scores; ``(ok, human_message)``.

    ``max_regression`` is the tolerated fractional drop (0.25 == a 25%
    slower normalized event loop fails).  Improvements always pass.
    """
    base_score = (baseline.get("results", {}).get(bench, {}) or {}).get("score")
    cur_score = current.score(bench)
    if base_score is None or cur_score is None:
        return True, (f"{bench}: no normalized score to compare "
                      f"(baseline={base_score}, current={cur_score}) — skipped")
    change = cur_score / base_score - 1.0
    message = (f"{bench}: score {cur_score:.4f} vs baseline "
               f"{base_score:.4f} ({baseline.get('label')!r}) — "
               f"{change:+.1%}")
    if change < -max_regression:
        return False, message + f" exceeds the {max_regression:.0%} budget"
    return True, message


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the discrete-event core micro-benchmark suite")
    parser.add_argument("--quick", action="store_true",
                        help="smaller iteration counts (CI smoke)")
    parser.add_argument("--label", default="adhoc",
                        help="entry label recorded in the history file")
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of-N repetitions per benchmark")
    parser.add_argument("--out", metavar="FILE",
                        help=f"append the entry to FILE "
                             f"(e.g. {DEFAULT_BENCH_FILE})")
    parser.add_argument("--check-against", metavar="FILE",
                        help="compare against a baseline entry in FILE and "
                             "exit 1 on regression")
    parser.add_argument("--baseline-label", default=None,
                        help="baseline entry label (default: last entry)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated fractional score drop (default 0.25)")
    args = parser.parse_args(argv)

    result = run_suite(label=args.label, quick=args.quick,
                       repeat=args.repeat, progress=print)
    print()
    print(result.table())

    if args.out:
        append_entry(args.out, result)
        print(f"\nrecorded entry {result.label!r} in {args.out}")

    if args.check_against:
        history = load_history(args.check_against)
        baseline = baseline_entry(history, args.baseline_label)
        if baseline is None:
            print(f"\nno baseline entry "
                  f"{args.baseline_label or '(last)'} in {args.check_against}")
            return 1
        print()
        failed = False
        for bench in GATE_BENCHES:
            ok, message = check_regression(result, baseline,
                                           max_regression=args.max_regression,
                                           bench=bench)
            print(message)
            failed = failed or not ok
        return 1 if failed else 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via make bench
    raise SystemExit(main())
