"""repro — a reproduction of "Synchronized Network Snapshots" (SIGCOMM 2018).

The package rebuilds Speedlight — the paper's synchronized network
snapshot system — on top of a pure-Python discrete-event network
simulator.  See DESIGN.md for the full system inventory and the mapping
from every table/figure in the paper to the modules that regenerate it.

Quick tour
----------

>>> from repro.topology import leaf_spine
>>> from repro.sim import Network
>>> from repro.core import deploy
>>> net = Network(leaf_spine())
>>> deployment = deploy(net, metric="packet_count")
>>> observer = deployment.observer

Subpackages
-----------

``repro.sim``
    Discrete-event simulator: switches, hosts, links, clocks.
``repro.core``
    The snapshot protocol: data plane, control plane, observer.
``repro.counters``
    Snapshottable data-plane metrics (packet/byte counts, queue depth,
    EWMA interarrival).
``repro.lb``
    ECMP and flowlet load balancing.
``repro.workloads``
    Hadoop/GraphX/memcache-like traffic generators.
``repro.polling``
    The traditional counter-polling baseline.
``repro.analysis``
    Statistics and causal-consistency checking.
``repro.resources``
    The Table 1 Tofino resource model.
``repro.experiments``
    One module per paper table/figure.
"""

__version__ = "1.0.0"
