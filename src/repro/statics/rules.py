"""The statics rule set: this repository's determinism contracts as AST
checks.

Each rule is the *static* complement of a contract the codebase already
relies on dynamically (see docs/DETERMINISM.md for the full rationale):

========  ============================================================
DET001    seeded ``random.Random`` only — no global-RNG calls in the
          simulation layers (``sim``/``core``/``faults``/``workloads``)
DET002    no wall-clock reads outside the ``runtime``/``perf`` layers
DET003    no iteration over bare ``set``s in ``sim``/``core`` (hash-seed
          dependent order can reach scheduling and serialization)
DET004    no builtin ``hash()``/``id()`` in ordering keys
SIM001    no float-producing expressions flowing into
          ``schedule()``/``schedule_at()``/``schedule_fast()``/``Event``
          time arguments (static complement of ``exact_ns``)
SIM002    ``__slots__`` classes must not assign undeclared attributes
SIM003    packets enter units through links — no direct
          ``ingress.handle_packet()``/``receive_from_link()`` calls
          outside the modeled delivery sites
TRIAL001  ``@trial`` functions must not mutate module-level state
========  ============================================================

Rules are deliberately syntactic and local — no cross-module inference.
Where a rule cannot see that a use is safe (an order-insensitive
reduction over a set, say), the fix is a reasoned
``# statics: allow[RULE]`` pragma, which keeps the exception reviewable
at the call site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence
from typing import Optional

from repro.statics.engine import FileContext, Rule
from repro.statics.findings import Finding

# ----------------------------------------------------------------------
# Shared import tracking
# ----------------------------------------------------------------------


class ImportMap:
    """Local names bound by imports, for resolving ``random.x`` et al."""

    def __init__(self, tree: ast.AST) -> None:
        #: local alias -> dotted module path (``import random as rnd``)
        self.modules: dict[str, str] = {}
        #: local name -> (module, original) (``from time import time``)
        self.names: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        node.module, alias.name)

    def module_alias(self, name: str, module: str) -> bool:
        return self.modules.get(name) == module

    def from_import(self, name: str, module: str) -> Optional[str]:
        entry = self.names.get(name)
        if entry is not None and entry[0] == module:
            return entry[1]
        return None


def _root_name(node: ast.AST) -> Optional[str]:
    """Peel attribute/subscript chains down to the base ``Name``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


# ----------------------------------------------------------------------
# DET001 — global RNG
# ----------------------------------------------------------------------

_GLOBAL_RNG_FNS = {
    "random", "uniform", "triangular", "randint", "randrange", "choice",
    "choices", "sample", "shuffle", "seed", "getrandbits", "randbytes",
    "gauss", "normalvariate", "lognormvariate", "expovariate",
    "vonmisesvariate", "gammavariate", "betavariate", "paretovariate",
    "weibullvariate", "binomialvariate", "getstate", "setstate",
}


class GlobalRandomRule(Rule):
    """No calls to the module-level ``random`` functions in the
    simulation layers: they share one hidden global Mersenne state, so
    any import-order or call-order change anywhere in the process
    perturbs every trial.  ``random.Random(seed)`` instances, threaded
    from the spec, are the only approved randomness source."""

    id = "DET001"
    title = "no global-RNG calls in simulation layers"
    hint = ("use a seeded random.Random instance threaded from the "
            "spec/config instead of the shared module-level state")
    scopes = frozenset({"sim", "core", "faults", "workloads"})

    def check(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _GLOBAL_RNG_FNS
                    and isinstance(func.value, ast.Name)
                    and imports.module_alias(func.value.id, "random")):
                out.append(self.finding(
                    ctx, node,
                    f"global-RNG call random.{func.attr}() in scope "
                    f"'{ctx.scope}'"))
            elif isinstance(func, ast.Name):
                orig = imports.from_import(func.id, "random")
                if orig in _GLOBAL_RNG_FNS:
                    out.append(self.finding(
                        ctx, node,
                        f"global-RNG call {func.id}() (random.{orig}) in "
                        f"scope '{ctx.scope}'"))
        return out


# ----------------------------------------------------------------------
# DET002 — wall clock
# ----------------------------------------------------------------------

_WALL_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
}
_WALL_DATETIME_FNS = {"now", "utcnow", "today"}


class WallClockRule(Rule):
    """No wall-clock reads in simulation/analysis code.  Simulated time
    comes from ``Simulator.now``/``Clock``; host time is allowed only in
    the ``runtime`` (trial timing) and ``perf`` (benchmarks) layers."""

    id = "DET002"
    title = "no wall-clock outside runtime/perf"
    hint = ("take time from Simulator.now or sim.clock.Clock; wall-clock "
            "reads belong in the runtime/perf layers only")
    excluded_scopes = frozenset({"runtime", "perf"})

    def check(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                value = func.value
                # time.<fn>()
                if (func.attr in _WALL_TIME_FNS
                        and isinstance(value, ast.Name)
                        and imports.module_alias(value.id, "time")):
                    out.append(self.finding(
                        ctx, node, f"wall-clock read time.{func.attr}() in "
                                   f"scope '{ctx.scope}'"))
                # datetime.datetime.now() / datetime.date.today()
                elif (func.attr in _WALL_DATETIME_FNS
                      and isinstance(value, ast.Attribute)
                      and value.attr in ("datetime", "date")
                      and isinstance(value.value, ast.Name)
                      and imports.module_alias(value.value.id, "datetime")):
                    out.append(self.finding(
                        ctx, node,
                        f"wall-clock read datetime.{value.attr}."
                        f"{func.attr}()"))
                # from datetime import datetime; datetime.now()
                elif (func.attr in _WALL_DATETIME_FNS
                      and isinstance(value, ast.Name)
                      and imports.from_import(value.id, "datetime")
                      in ("datetime", "date")):
                    out.append(self.finding(
                        ctx, node,
                        f"wall-clock read {value.id}.{func.attr}()"))
            elif isinstance(func, ast.Name):
                orig = imports.from_import(func.id, "time")
                if orig in _WALL_TIME_FNS:
                    out.append(self.finding(
                        ctx, node,
                        f"wall-clock read {func.id}() (time.{orig})"))
        return out


# ----------------------------------------------------------------------
# DET003 — unordered set iteration
# ----------------------------------------------------------------------

_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference", "copy"}
#: Consumers that materialize iteration order (flagged); ``min``/``max``/
#: ``sum``/``len``/``any``/``all``/``sorted`` are order-insensitive.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "iter", "enumerate"}


class UnorderedIterationRule(Rule):
    """No iteration over bare ``set``s in ``sim``/``core``.

    Set iteration order depends on PYTHONHASHSEED and insertion history;
    when it reaches a ``schedule()`` loop, a serialized report, or a
    fingerprint, two identical runs diverge.  (``dict``s are
    insertion-ordered on every supported interpreter, so the rule
    tracks sets — the genuinely unordered container.)  Wrap the
    iterable in ``sorted(...)``, or pragma-allow with a reason when the
    consumer is provably order-insensitive.
    """

    id = "DET003"
    title = "no bare-set iteration in sim/core"
    hint = ("wrap the set in sorted(...) (or use an ordered container); "
            "pragma-allow with a reason only for order-insensitive "
            "consumers")
    scopes = frozenset({"sim", "core"})

    def check(self, ctx: FileContext) -> list[Finding]:
        out: list[Finding] = []
        self._scan(ctx.tree, ctx, out)
        return out

    # -- set-expression classification ---------------------------------
    def _is_set_expr(self, node: ast.AST, env: dict[str, bool]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return env.get(node.id, False)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SET_METHODS
                    and self._is_set_expr(func.value, env)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self._is_set_expr(node.left, env)
                    or self._is_set_expr(node.right, env))
        return False

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        return (isinstance(annotation, ast.Name)
                and annotation.id in ("set", "frozenset", "Set",
                                      "FrozenSet", "AbstractSet"))

    def _scan(self, root: ast.AST, ctx: FileContext,
              out: list[Finding]) -> None:
        # First pass: names bound to set expressions or set annotations
        # anywhere in the file.  (One flat namespace is an approximation
        # — good enough for a local, syntactic rule; a false positive is
        # one reasoned pragma away.)
        local_env: dict[str, bool] = {}
        for node in ast.walk(root):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self._is_set_expr(node.value, local_env):
                        local_env[target.id] = True
            elif (isinstance(node, ast.AnnAssign)
                  and isinstance(node.target, ast.Name)
                  and self._is_set_annotation(node.annotation)):
                local_env[node.target.id] = True
            elif isinstance(node, ast.arg):
                if (node.annotation is not None
                        and self._is_set_annotation(node.annotation)):
                    local_env[node.arg] = True
        for node in ast.walk(root):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, local_env):
                    out.append(self.finding(
                        ctx, node.iter,
                        "for-loop iterates a bare set (order is "
                        "hash-seed dependent)"))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter, local_env):
                        out.append(self.finding(
                            ctx, gen.iter,
                            "comprehension iterates a bare set (order is "
                            "hash-seed dependent)"))
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name)
                        and func.id in _ORDER_SENSITIVE_CALLS
                        and node.args
                        and self._is_set_expr(node.args[0], local_env)):
                    out.append(self.finding(
                        ctx, node,
                        f"{func.id}() materializes a bare set's iteration "
                        "order"))
                elif (isinstance(func, ast.Attribute)
                      and func.attr == "join" and node.args
                      and self._is_set_expr(node.args[0], local_env)):
                    out.append(self.finding(
                        ctx, node,
                        "str.join() serializes a bare set's iteration "
                        "order"))


# ----------------------------------------------------------------------
# DET004 — hash()/id() in ordering keys
# ----------------------------------------------------------------------


class HashIdOrderingRule(Rule):
    """No builtin ``hash()``/``id()`` inside ordering keys.  ``hash()``
    of str/bytes varies with PYTHONHASHSEED and ``id()`` with allocation
    history, so both differ across worker processes and re-runs —
    sorting or heap-ordering by them silently reorders ties."""

    id = "DET004"
    title = "no hash()/id() in ordering keys"
    hint = ("order by a stable field (name, sequence number, "
            "fingerprint string) instead of hash()/id()")

    def check(self, ctx: FileContext) -> list[Finding]:
        out: list[Finding] = []
        self._scan(ctx.tree, ctx, out)
        return out

    def _scan(self, root: ast.AST, ctx: FileContext,
              out: list[Finding]) -> None:
        """Scan ``root`` (a file or any subtree — the flow layer reuses
        this per-function) for hash()/id() inside ordering keys."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            sort_like = (
                (isinstance(func, ast.Name)
                 and func.id in ("sorted", "min", "max"))
                or (isinstance(func, ast.Attribute) and func.attr == "sort"))
            if sort_like:
                for keyword in node.keywords:
                    if keyword.arg == "key":
                        out.extend(self._flag_hash_id(ctx, keyword.value,
                                                      "ordering key"))
            heappush = (
                (isinstance(func, ast.Name) and func.id == "heappush")
                or (isinstance(func, ast.Attribute)
                    and func.attr == "heappush"))
            if heappush and len(node.args) >= 2:
                out.extend(self._flag_hash_id(ctx, node.args[1],
                                              "heap entry"))

    def _flag_hash_id(self, ctx: FileContext, subtree: ast.AST,
                      where: str) -> list[Finding]:
        out = []
        for node in ast.walk(subtree):
            if isinstance(node, ast.Name) and node.id in ("hash", "id"):
                out.append(self.finding(
                    ctx, node,
                    f"builtin {node.id}() used in a {where} "
                    "(PYTHONHASHSEED / allocation-order hazard)"))
        return out


# ----------------------------------------------------------------------
# SIM001 — float time arguments
# ----------------------------------------------------------------------

_SCHEDULE_FNS = {"schedule", "schedule_at", "schedule_fast"}


class FloatTimeRule(Rule):
    """No float-producing expressions flowing into simulation time
    arguments.  The engine's ``exact_ns`` rejects fractional times at
    runtime (and ``schedule_fast`` skips even that); this rule moves the
    check to before execution: true division, float literals, ``time.*``
    reads and ``float()`` casts may not appear in the time argument of
    ``schedule()``/``schedule_at()``/``schedule_fast()``/``Event()``."""

    id = "SIM001"
    title = "no float expressions in simulation time arguments"
    hint = ("use integer ns arithmetic (//, and the US/MS/S constants) "
            "or coerce explicitly with exact_ns() at the boundary")

    def check(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            time_arg: Optional[ast.expr] = None
            if name in _SCHEDULE_FNS or name == "Event":
                if node.args:
                    time_arg = node.args[0]
                else:
                    for keyword in node.keywords:
                        if keyword.arg in ("delay", "time"):
                            time_arg = keyword.value
                            break
            if time_arg is None:
                continue
            for sub in ast.walk(time_arg):
                reason = self._float_reason(sub, imports)
                if reason is not None:
                    out.append(self.finding(
                        ctx, sub,
                        f"{reason} flows into the time argument of "
                        f"{name}()"))
        return out

    def _float_reason(self, node: ast.AST,
                      imports: ImportMap) -> Optional[str]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "true division (/)"
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"float literal {node.value!r}"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                return "float() cast"
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and imports.module_alias(func.value.id, "time")):
                return f"wall-clock time.{func.attr}()"
        return None


# ----------------------------------------------------------------------
# SIM002 — __slots__ integrity
# ----------------------------------------------------------------------


def _walk_pruning_classes(root: ast.AST) -> Iterator[ast.AST]:
    """Like ``ast.walk`` but does not descend into nested ClassDefs
    (their methods answer to their *own* __slots__, not the outer
    class's)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.ClassDef):
                stack.append(child)


class SlotsIntegrityRule(Rule):
    """``__slots__`` classes must not assign attributes they do not
    declare.  On a slotted class such an assignment raises
    ``AttributeError`` only when the code path finally runs — in a
    simulation, possibly hours in; this rule finds it at review time.
    Only classes whose full base chain is resolvable in the same module
    (or ``object``) are enforced — an imported base may contribute a
    ``__dict__``, which makes the assignment legal."""

    id = "SIM002"
    title = "__slots__ classes assign only declared attributes"
    hint = "declare the attribute in __slots__ (or drop the assignment)"

    def check(self, ctx: FileContext) -> list[Finding]:
        classes: dict[str, ast.ClassDef] = {
            node.name: node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)}
        out: list[Finding] = []
        for cls in classes.values():
            slots = self._literal_slots(cls)
            if slots is None:
                continue
            allowed = self._resolve_chain(cls, classes)
            if allowed is None:     # unresolvable base: may have __dict__
                continue
            self._check_class(ctx, cls, slots, allowed, out)
        return out

    def _literal_slots(self, cls: ast.ClassDef) -> Optional[set[str]]:
        """The class's own literal __slots__ declaration, if any."""
        for stmt in cls.body:
            targets = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    names: set[str] = set()
                    elements: Sequence[ast.expr]
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        elements = value.elts
                    elif (isinstance(value, ast.Constant)
                          and isinstance(value.value, str)):
                        elements = [value]
                    else:
                        return None       # computed __slots__: skip class
                    for element in elements:
                        if (isinstance(element, ast.Constant)
                                and isinstance(element.value, str)):
                            names.add(element.value)
                        else:
                            return None
                    return names
        return None

    def _resolve_chain(self, cls: ast.ClassDef,
                       classes: dict[str, ast.ClassDef]
                       ) -> Optional[set[str]]:
        """Union of slots plus property-setter names over the same-module
        base chain; None when any base is unresolvable."""
        allowed: set[str] = set()
        stack = [cls]
        seen = set()
        while stack:
            node = stack.pop()
            if node.name in seen:
                return None               # inheritance cycle: bail out
            seen.add(node.name)
            slots = self._literal_slots(node)
            if slots is None:
                return None               # un-slotted base contributes __dict__
            allowed |= slots
            allowed |= self._setter_names(node)
            for base in node.bases:
                if isinstance(base, ast.Name) and base.id == "object":
                    continue
                if isinstance(base, ast.Name) and base.id in classes:
                    stack.append(classes[base.id])
                else:
                    return None           # imported / dynamic base
        return allowed

    def _setter_names(self, cls: ast.ClassDef) -> set[str]:
        names = set()
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef):
                for deco in stmt.decorator_list:
                    if (isinstance(deco, ast.Attribute)
                            and deco.attr == "setter"):
                        names.add(stmt.name)
        return names

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     slots: set[str], allowed: set[str],
                     out: list[Finding]) -> None:
        for stmt in cls.body:
            # Class-level name colliding with a slot → ValueError at
            # class creation time.
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (isinstance(target, ast.Name)
                            and target.id in slots):
                        out.append(self.finding(
                            ctx, target,
                            f"class attribute {target.id!r} collides with "
                            f"its own __slots__ entry",
                            hint="a name cannot be both a slot and a "
                                 "class attribute"))
            if not isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if any(isinstance(deco, ast.Name)
                   and deco.id in ("classmethod", "staticmethod")
                   for deco in stmt.decorator_list):
                continue          # no instance receiver to check
            if not stmt.args.args:
                continue
            self_name = stmt.args.args[0].arg
            for node in _walk_pruning_classes(stmt):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Store)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == self_name
                        and node.attr not in allowed):
                    out.append(self.finding(
                        ctx, node,
                        f"assignment to {self_name}.{node.attr} is not "
                        f"declared in __slots__ of {cls.name} (raises "
                        "AttributeError at runtime)"))


# ----------------------------------------------------------------------
# SIM003 — FIFO bypass: direct unit delivery
# ----------------------------------------------------------------------

#: Scheduling entry points whose second positional argument is a
#: callback (``schedule(delay, fn, *args)`` and friends).
_CALLBACK_SCHEDULERS = _SCHEDULE_FNS | {"inject_at"}


class FifoBypassRule(Rule):
    """Packets enter processing units through links, never by direct
    unit calls.

    Everything the snapshot protocol proves (§4.1) — and everything the
    sharded runner's conservative lookahead bound relies on
    (docs/SHARDING.md) — assumes packets reach an
    ``IngressUnit``/``Port`` through a FIFO channel with propagation
    delay.  A direct ``something.ingress.handle_packet(pkt)`` (or
    ``receive_from_link`` call, or scheduling either as a callback)
    injects a packet that no link carried: it skips FIFO ordering,
    loss/up state, and the cut-link capture that sharding depends on.
    The modeled delivery sites (``Link._deliver``,
    ``Port.receive_from_link``, the control plane's initiation/probe
    injectors, which model the switch CPU's internal port) carry
    reasoned pragmas.

    Light interprocedural coverage: a same-module *function* whose
    parameter is called as ``param.handle_packet(...)`` marks that
    parameter position, and call sites passing an ingress expression
    there are flagged too.
    """

    id = "SIM003"
    title = "no FIFO-bypassing unit delivery outside links"
    hint = ("send the packet through a Link (host.send_packet / "
            "link.transmit) so FIFO order, propagation delay, and the "
            "sharded lookahead bound hold; pragma-allow only modeled "
            "delivery sites")
    scopes = frozenset({"sim", "core", "faults", "workloads",
                        "experiments"})

    def check(self, ctx: FileContext) -> list[Finding]:
        tracked = self._ingress_names(ctx.tree)
        handlers = self._handler_params(ctx.tree)
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if (func.attr == "handle_packet"
                        and self._is_ingress_expr(func.value, tracked)):
                    out.append(self.finding(
                        ctx, node,
                        "direct ingress.handle_packet() call bypasses "
                        "the FIFO channel"))
                elif func.attr == "receive_from_link":
                    out.append(self.finding(
                        ctx, node,
                        "direct receive_from_link() call bypasses the "
                        "FIFO channel"))
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None)
            if name in _CALLBACK_SCHEDULERS and len(node.args) >= 2:
                callback = node.args[1]
                if isinstance(callback, ast.Attribute):
                    if (callback.attr == "handle_packet"
                            and self._is_ingress_expr(callback.value,
                                                      tracked)):
                        out.append(self.finding(
                            ctx, node,
                            f"{name}() callback delivers directly to an "
                            "ingress unit, bypassing the FIFO channel"))
                    elif callback.attr == "receive_from_link":
                        out.append(self.finding(
                            ctx, node,
                            f"{name}() callback calls receive_from_link "
                            "directly, bypassing the FIFO channel"))
            if isinstance(func, ast.Name) and func.id in handlers:
                for index in handlers[func.id]:
                    if (index < len(node.args)
                            and self._is_ingress_expr(node.args[index],
                                                      tracked)):
                        out.append(self.finding(
                            ctx, node,
                            f"{func.id}() forwards its argument to "
                            ".handle_packet(), delivering directly to "
                            "this ingress unit"))
        return out

    # -- ingress-expression classification -----------------------------
    def _is_ingress_expr(self, node: ast.AST, tracked: set[str]) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "ingress":
            return True
        return isinstance(node, ast.Name) and node.id in tracked

    def _ingress_names(self, tree: ast.AST) -> set[str]:
        """Local names assigned from ``<...>.ingress`` expressions (one
        flat namespace — the same approximation DET003 makes)."""
        tracked: set[str] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr == "ingress"):
                tracked.add(node.targets[0].id)
        return tracked

    def _handler_params(self, tree: ast.AST) -> dict[str, set[int]]:
        """Module-level functions that call ``param.handle_packet(...)``
        on one of their parameters: name -> positional indices."""
        handlers: dict[str, set[int]] = {}
        for stmt in getattr(tree, "body", []):
            if not isinstance(stmt, ast.FunctionDef):
                continue
            params = [arg.arg for arg in stmt.args.args]
            positions: set[int] = set()
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "handle_packet"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in params):
                    positions.add(params.index(node.func.value.id))
            if positions:
                handlers[stmt.name] = positions
        return handlers


# ----------------------------------------------------------------------
# TRIAL001 — @trial functions must not mutate module globals
# ----------------------------------------------------------------------

_MUTATORS = {"append", "extend", "insert", "add", "update", "remove",
             "discard", "pop", "popitem", "clear", "setdefault", "sort",
             "reverse", "appendleft", "extendleft"}


class TrialGlobalMutationRule(Rule):
    """``@trial``-registered functions must be pure: under ``--jobs N``
    they run in worker processes, so a module-global mutation is
    invisible to the parent (and to cached replays) — results would
    silently depend on the execution mode.  Flags ``global``
    declarations, stores through module-level names, and mutating method
    calls on module-level names inside any ``@trial`` function."""

    id = "TRIAL001"
    title = "@trial functions do not mutate module-level state"
    hint = ("return data via TrialResult and thread inputs through the "
            "spec; module state does not survive worker boundaries")

    def check(self, ctx: FileContext) -> list[Finding]:
        module_names = self._module_level_names(ctx.tree)
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and self._is_trial(node)):
                self._check_fn(ctx, node, module_names, out)
        return out

    def _module_level_names(self, tree: ast.AST) -> set[str]:
        names: set[str] = set()
        for stmt in getattr(tree, "body", []):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)):
                names.add(stmt.target.id)
        return names

    def _is_trial(self, fn: ast.AST) -> bool:
        for deco in getattr(fn, "decorator_list", []):
            target = deco.func if isinstance(deco, ast.Call) else deco
            if isinstance(target, ast.Name) and target.id == "trial":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "trial":
                return True
        return False

    def _check_fn(self, ctx: FileContext, fn: ast.AST,
                  module_names: set[str], out: list[Finding]) -> None:
        local_names = {arg.arg for arg in fn.args.args
                       + fn.args.kwonlyargs + fn.args.posonlyargs}
        if fn.args.vararg:
            local_names.add(fn.args.vararg.arg)
        if fn.args.kwarg:
            local_names.add(fn.args.kwarg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local_names.add(node.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
        shadowed = module_names - local_names
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                out.append(self.finding(
                    ctx, node,
                    f"@trial function declares global "
                    f"{', '.join(node.names)}"))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root in shadowed:
                            out.append(self.finding(
                                ctx, target,
                                f"@trial function stores into "
                                f"module-level {root!r}"))
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATORS):
                    root = _root_name(func.value)
                    if root in shadowed:
                        out.append(self.finding(
                            ctx, node,
                            f"@trial function mutates module-level "
                            f"{root!r} via .{func.attr}()"))


#: The default rule set, in documentation order.
ALL_RULES: tuple[Rule, ...] = (
    GlobalRandomRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    HashIdOrderingRule(),
    FloatTimeRule(),
    SlotsIntegrityRule(),
    FifoBypassRule(),
    TrialGlobalMutationRule(),
)

ALL_RULE_IDS: tuple[str, ...] = tuple(rule.id for rule in ALL_RULES)
