"""Inline suppression pragmas for the statics pass.

Syntax (a regular ``#`` comment, anywhere ruff would accept a ``noqa``)::

    x = sorted(peers)  # statics: allow[DET003] consumer is order-insensitive
    # statics: allow[SIM001,DET004] float literal is validated by exact_ns below
    y = schedule(delay / 1, fn)

A pragma names one or more rule ids and **must** carry a free-text
reason — an allow without a reason is itself reported (``PRAGMA001``),
and an allow that suppresses nothing is reported as unused
(``PRAGMA002``, only when the full default rule set runs, so partial
``--rules`` invocations do not misreport).

Attribution: a trailing pragma suppresses findings on its own physical
line; a standalone comment-line pragma suppresses findings on the next
line.  This mirrors how ``noqa``/``type: ignore`` are written and keeps
suppression reviewable right next to the code it excuses.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Optional

from repro.statics.findings import Finding

PRAGMA_RE = re.compile(
    r"#\s*statics:\s*allow\[([A-Za-z0-9_,\s]*)\]\s*(.*)$")

#: Engine-level rule ids (not suppressible themselves).
PARSE_RULE = "PARSE001"
PRAGMA_NO_REASON = "PRAGMA001"
PRAGMA_UNUSED = "PRAGMA002"


@dataclass
class Pragma:
    """One parsed ``# statics: allow[...]`` comment."""

    line: int            #: physical line the comment sits on (1-based)
    target: int          #: line whose findings it suppresses
    rules: set[str] = field(default_factory=set)
    reason: str = ""
    #: rule ids that actually suppressed at least one finding
    used: set[str] = field(default_factory=set)


def _iter_comments(source: str) -> Iterator[tuple[int, int, str, bool]]:
    """Yield ``(line, col, text, standalone)`` for every real comment
    token.  Tokenizing (rather than regexing raw lines) keeps pragma
    examples inside docstrings and string literals inert."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                lineno, col = tok.start
                standalone = tok.line[:col].strip() == ""
                yield lineno, col, tok.string, standalone
    except (tokenize.TokenError, IndentationError):
        # Unparseable file: the engine reports PARSE001 separately.
        return


def parse_pragmas(source: str, path: str,
                  known_rules: set[str]) -> "PragmaTable":
    """Scan a file's comment tokens for allow pragmas.

    Malformed pragmas (empty rule list, unknown rule id, missing reason)
    become findings instead of silently suppressing; they never suppress.
    """
    table = PragmaTable()
    for lineno, tok_col, comment, standalone in _iter_comments(source):
        match = PRAGMA_RE.search(comment)
        if match is None:
            continue
        names = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        reason = match.group(2).strip()
        target = lineno + 1 if standalone else lineno
        col = tok_col + match.start() + 1
        if not names:
            table.problems.append(Finding(
                rule=PRAGMA_NO_REASON, path=path, line=lineno, col=col,
                message="allow pragma names no rules",
                hint="write `# statics: allow[RULEID] reason`"))
            continue
        unknown = sorted(names - known_rules)
        if unknown:
            table.problems.append(Finding(
                rule=PRAGMA_NO_REASON, path=path, line=lineno, col=col,
                message=f"allow pragma names unknown rule(s): "
                        f"{', '.join(unknown)}",
                hint="run `repro statics --list-rules` for valid ids"))
            names -= set(unknown)
            if not names:
                continue
        if not reason:
            table.problems.append(Finding(
                rule=PRAGMA_NO_REASON, path=path, line=lineno, col=col,
                message="allow pragma carries no reason",
                hint="every suppression must say why it is safe, e.g. "
                     "`# statics: allow[DET003] order-insensitive sum`"))
            continue
        table.add(Pragma(line=lineno, target=target, rules=names,
                         reason=reason))
    return table


class PragmaTable:
    """All pragmas of one file, indexed by the line they suppress."""

    def __init__(self) -> None:
        self.pragmas: list[Pragma] = []
        self.by_target: dict[int, list[Pragma]] = {}
        self.problems: list[Finding] = []

    def add(self, pragma: Pragma) -> None:
        self.pragmas.append(pragma)
        self.by_target.setdefault(pragma.target, []).append(pragma)

    def suppresses(self, finding: Finding) -> bool:
        """True (and mark the pragma used) if ``finding`` is allowed."""
        for pragma in self.by_target.get(finding.line, ()):
            if finding.rule in pragma.rules:
                pragma.used.add(finding.rule)
                return True
        return False

    def unused_findings(self, path: str,
                        active_rules: Optional[set[str]] = None
                        ) -> list[Finding]:
        """PRAGMA002 findings for allows that suppressed nothing.

        Audited **per rule id**: a multi-rule pragma
        (``allow[DET003,DET004]``) where only DET003 fired is reported
        unused for DET004 alone, not wholesale.  ``active_rules``
        restricts the audit to the rules that actually ran — ids
        outside it *cannot* have fired this run, so reporting them
        would be noise (this is what lets ``--rules`` subsets and the
        ``--flow`` pass audit pragmas without misreporting each
        other's)."""
        out = []
        for pragma in self.pragmas:
            candidates = pragma.rules - pragma.used
            if active_rules is not None:
                candidates &= active_rules
            for rule in sorted(candidates):
                out.append(Finding(
                    rule=PRAGMA_UNUSED, path=path, line=pragma.line, col=1,
                    message=f"unused suppression: allow[{rule}] matched "
                            "no finding on its target line",
                    hint="remove the pragma (or move it onto the "
                         "offending line)"))
        return out
