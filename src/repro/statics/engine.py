"""The statics rule engine: file walking, scoping, suppression.

The engine owns everything rule-independent: parsing files, deriving the
*scope* a file belongs to (which packages a rule guards), applying
``# statics: allow[...]`` pragmas, and aggregating findings into a
deterministic, sorted report.  Rules themselves live in
:mod:`repro.statics.rules` and are small AST visitors.

Scopes
------
Rules guard contracts that hold in specific layers: the simulation core
must be seeded-RNG-only, but the trial runner is *supposed* to read the
wall clock.  A file's scope is derived from its path — the first package
segment under ``repro/`` (``sim``, ``core``, ``faults`` …), or the
top-level directory name for non-package trees (``tests``,
``benchmarks``, ``examples``).  Each rule declares the scopes it applies
to (``scopes=None`` means everywhere) and the scopes it exempts.

Skipping
--------
A directory containing a ``.statics-skip`` marker file is not descended
into — this is how the intentionally-violating fixture corpus under
``tests/statics/fixtures/`` stays out of the CI gate.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from repro.statics.findings import Finding
from repro.statics.pragmas import PARSE_RULE, PragmaTable, parse_pragmas

#: Marker file: a directory containing one is skipped entirely.
SKIP_MARKER = ".statics-skip"


def scope_of(path: str) -> str:
    """Derive the rule scope of ``path``.

    ``src/repro/sim/engine.py`` → ``sim``; ``src/repro/cli.py`` →
    ``cli``; ``tests/core/test_ids.py`` → ``tests``; anything else
    falls back to its top-level directory (or file stem).
    """
    parts = os.path.normpath(path).split(os.sep)
    if "repro" in parts:
        idx = parts.index("repro")
        if idx + 1 < len(parts):
            nxt = parts[idx + 1]
            return nxt[:-3] if nxt.endswith(".py") else nxt
    for top in ("tests", "benchmarks", "examples"):
        if top in parts:
            return top
    head = parts[0] if len(parts) > 1 else parts[-1]
    return head[:-3] if head.endswith(".py") else head


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str
    source: str
    tree: ast.AST
    scope: str
    lines: Sequence[str] = field(default_factory=list)


class Rule:
    """Base class for statics rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scopes=None`` applies everywhere; otherwise only to files whose
    derived scope is in the set.  ``excluded_scopes`` always wins.
    """

    id: str = ""
    title: str = ""
    hint: str = ""
    scopes: Optional[frozenset[str]] = None
    excluded_scopes: frozenset[str] = frozenset()

    def applies(self, ctx: FileContext) -> bool:
        if ctx.scope in self.excluded_scopes:
            return False
        return self.scopes is None or ctx.scope in self.scopes

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: Optional[str] = None) -> Finding:
        return Finding(rule=self.id, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message,
                       hint=self.hint if hint is None else hint)


@dataclass
class Report:
    """Aggregated result of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }


def check_source(source: str, path: str, rules: Sequence[Rule], *,
                 scope: Optional[str] = None,
                 report_unused_pragmas: bool = True,
                 known_rules: Optional[set[str]] = None,
                 active_rules: Optional[set[str]] = None) -> Report:
    """Run ``rules`` over one source blob.

    ``scope`` overrides path-derived scoping (the unit tests use this to
    exercise scoped rules on in-memory snippets).  ``known_rules`` is
    the id set pragmas may legitimately name — pass the full registry
    when running a ``--rules`` subset, so a pragma for an inactive rule
    is not misreported as unknown.  ``active_rules`` scopes the
    unused-pragma audit to rules that actually ran (default: the ids
    of ``rules``) — a pragma for a rule outside this run is neither
    used nor unused.  Returns a :class:`Report` for this file alone.
    """
    report = Report(files_checked=1)
    lines = source.splitlines()
    known = ({rule.id for rule in rules} if known_rules is None
             else known_rules)
    table: PragmaTable = parse_pragmas(source, path, known)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(Finding(
            rule=PARSE_RULE, path=path, line=exc.lineno or 1,
            col=(exc.offset or 0) + 1 or 1,
            message=f"file does not parse: {exc.msg}",
            hint="statics needs a syntactically valid tree"))
        return report
    ctx = FileContext(path=path, source=source, tree=tree,
                      scope=scope_of(path) if scope is None else scope,
                      lines=lines)
    raw: list[Finding] = []
    for rule in rules:
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))
    for finding in raw:
        if table.suppresses(finding):
            report.suppressed += 1
        else:
            report.findings.append(finding)
    report.findings.extend(table.problems)
    if report_unused_pragmas:
        active = ({rule.id for rule in rules} if active_rules is None
                  else active_rules)
        report.findings.extend(
            table.unused_findings(path, active_rules=active))
    report.findings.sort(key=Finding.sort_key)
    return report


def check_file(path: str, rules: Sequence[Rule], *,
               scope: Optional[str] = None,
               report_unused_pragmas: bool = True,
               known_rules: Optional[set[str]] = None,
               active_rules: Optional[set[str]] = None) -> Report:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return check_source(source, path, rules, scope=scope,
                        report_unused_pragmas=report_unused_pragmas,
                        known_rules=known_rules,
                        active_rules=active_rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic
    order, skipping hidden directories, ``__pycache__``, and any
    directory carrying a ``.statics-skip`` marker."""
    for root_path in paths:
        if os.path.isfile(root_path):
            if root_path.endswith(".py"):
                yield root_path
            continue
        for dirpath, dirnames, filenames in os.walk(root_path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
                and not os.path.exists(os.path.join(dirpath, d, SKIP_MARKER)))
            if SKIP_MARKER in filenames:
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def _check_file_task(task: tuple[str, tuple[str, ...], Optional[str],
                                 bool, Optional[frozenset[str]],
                                 Optional[frozenset[str]]]) -> Report:
    """Worker-side unit for the parallel parse phase: rules travel as
    ids (instances reconstructed from the registry) so the task tuple
    pickles under both fork and spawn start methods."""
    path, rule_ids, scope, report_unused, known, active = task
    from repro.statics.rules import ALL_RULES
    by_id = {rule.id: rule for rule in ALL_RULES}
    rules = [by_id[rule_id] for rule_id in rule_ids]
    return check_file(
        path, rules, scope=scope, report_unused_pragmas=report_unused,
        known_rules=set(known) if known is not None else None,
        active_rules=set(active) if active is not None else None)


def run_paths(paths: Iterable[str], rules: Sequence[Rule], *,
              scope: Optional[str] = None,
              report_unused_pragmas: bool = True,
              known_rules: Optional[set[str]] = None,
              active_rules: Optional[set[str]] = None,
              jobs: int = 1) -> Report:
    """Check every python file under ``paths``; aggregate one Report.

    ``scope`` forces every file into one scope instead of deriving it
    per-path — the ``--profile external`` front end uses this to treat
    an out-of-tree model as simulation-core code.

    ``jobs > 1`` fans the per-file parse+check phase out over a process
    pool.  Files are independent and the aggregate is re-sorted, so the
    parallel report is byte-identical to the serial one (asserted in
    the test suite).  Custom rule instances outside the registry can't
    be shipped to workers; such runs fall back to serial silently.
    """
    total = Report()
    files = list(iter_python_files(paths))
    reports: Iterable[Report]
    registry_ids: set[str] = set()
    if jobs > 1:
        from repro.statics.rules import ALL_RULES
        registry_ids = {rule.id for rule in ALL_RULES}
    if jobs > 1 and len(files) > 1 and \
            all(rule.id in registry_ids for rule in rules):
        import multiprocessing as mp
        try:
            context = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            context = mp.get_context("spawn")
        known = frozenset(known_rules) if known_rules is not None else None
        active = (frozenset(active_rules)
                  if active_rules is not None else None)
        rule_ids = tuple(rule.id for rule in rules)
        tasks = [(path, rule_ids, scope, report_unused_pragmas, known,
                  active) for path in files]
        with context.Pool(processes=min(jobs, len(files))) as pool:
            reports = pool.map(_check_file_task, tasks)
    else:
        reports = (check_file(path, rules, scope=scope,
                              report_unused_pragmas=report_unused_pragmas,
                              known_rules=known_rules,
                              active_rules=active_rules)
                   for path in files)
    for one in reports:
        total.findings.extend(one.findings)
        total.suppressed += one.suppressed
        total.files_checked += 1
    total.findings.sort(key=Finding.sort_key)
    return total
