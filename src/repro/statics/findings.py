"""Finding records produced by the statics rule engine.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately plain data — JSON-able via :meth:`Finding.to_dict`, ordered
by location via :meth:`Finding.sort_key` — so the engine, the CLI, and
the test suite all consume the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line:col``.

    ``rule`` is the rule id (``DET001`` … ``TRIAL001``, or the engine's
    own ``PARSE001`` / ``PRAGMA001`` / ``PRAGMA002``); ``message`` states
    the specific violation; ``hint`` states the repo-approved fix.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def sort_key(self) -> Any:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """Human-readable one-or-two-line rendering."""
        text = f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
