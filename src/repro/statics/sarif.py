"""Machine-readable statics output: SARIF 2.1.0 and enriched JSON.

GitHub's code-scanning UI ingests SARIF, so the CI static-checks job
uploads the ``--sarif`` artifact and findings render as PR annotations.
Both formats carry a **stable finding id**: the sha256 of
``rule:path:message`` plus an occurrence ordinal for repeats — line
numbers are deliberately *not* hashed, so an unrelated edit above a
finding shifts its location but not its identity (dashboards and
baselines track it across commits).
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from repro.statics.engine import Report
from repro.statics.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Engine bookkeeping rules are advisory; everything else is a broken
#: invariant.
_WARNING_RULES = frozenset({"PRAGMA001", "PRAGMA002"})


def severity_of(rule: str) -> str:
    return "warning" if rule in _WARNING_RULES else "error"


def stable_id(finding: Finding, occurrence: int) -> str:
    """Content-stable identity: independent of line/col so findings
    survive unrelated edits; the occurrence ordinal disambiguates
    repeats of the same message in one file."""
    basis = f"{finding.rule}:{finding.path}:{finding.message}:{occurrence}"
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


def _with_ids(findings: list[Finding]) -> list[tuple[Finding, str]]:
    seen: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Finding, str]] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.message)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append((finding, stable_id(finding, occurrence)))
    return out


def enriched_dict(report: Report) -> dict[str, Any]:
    """``report.to_dict()`` plus per-finding ``id`` and ``severity`` —
    the ``--json`` payload."""
    data = report.to_dict()
    enriched = []
    for finding, fid in _with_ids(report.findings):
        row = finding.to_dict()
        row["id"] = fid
        row["severity"] = severity_of(finding.rule)
        enriched.append(row)
    data["findings"] = enriched
    return data


def _rule_index(findings: list[Finding]) -> list[dict[str, Any]]:
    """SARIF rule metadata for every rule that appears in the report,
    drawn from the per-file and flow registries."""
    from repro.statics.flow import FLOW_RULES
    from repro.statics.rules import ALL_RULES
    titles: dict[str, str] = {}
    hints: dict[str, str] = {}
    for rule in ALL_RULES:
        titles[rule.id], hints[rule.id] = rule.title, rule.hint
    for info in FLOW_RULES:
        titles[info.id], hints[info.id] = info.title, info.hint
    titles.setdefault("PARSE001", "file does not parse")
    titles.setdefault("PRAGMA001", "malformed allow pragma")
    titles.setdefault("PRAGMA002", "unused allow pragma")
    out = []
    for rule_id in sorted({f.rule for f in findings}):
        entry: dict[str, Any] = {
            "id": rule_id,
            "shortDescription": {
                "text": titles.get(rule_id, rule_id)},
            "defaultConfiguration": {
                "level": severity_of(rule_id)},
        }
        hint = hints.get(rule_id)
        if hint:
            entry["help"] = {"text": hint}
        out.append(entry)
    return out


def to_sarif(report: Report,
             tool_version: Optional[str] = None) -> dict[str, Any]:
    """Render a report as a single-run SARIF 2.1.0 log."""
    results = []
    for finding, fid in _with_ids(report.findings):
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": severity_of(finding.rule),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
            "partialFingerprints": {"reproStaticsId/v1": fid},
        }
        if finding.hint:
            result["message"]["text"] += f" (hint: {finding.hint})"
        results.append(result)
    driver: dict[str, Any] = {
        "name": "repro-statics",
        "informationUri":
            "https://example.invalid/repro/docs/DETERMINISM.md",
        "rules": _rule_index(report.findings),
    }
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": driver},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
