"""Command-line front end for the statics pass.

``python -m repro.statics [paths]`` and ``repro statics [paths]`` both
land here.  Exit status: 0 clean, 1 findings, 2 usage error.

Two analysis modes share this front end: the default per-file rule
pass, and ``--flow``, which links every file under the given paths into
one program and runs the whole-program families
(:mod:`repro.statics.flow`).  Both speak the same pragma dialect and
the same output formats (``--json`` enriched JSON, ``--sarif`` for
GitHub code scanning).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from typing import Optional

from repro.statics.engine import Report, Rule, run_paths
from repro.statics.rules import ALL_RULE_IDS, ALL_RULES

DEFAULT_PATHS = ("src", "tests")

#: Where ``--flow`` caches per-file summaries between runs (content
#: keyed: stale entries are misses, not staleness bugs).
DEFAULT_CACHE_DIR = os.path.join(".repro-cache", "statics-flow")

#: Rules that encode repo-local conventions rather than portable
#: determinism contracts.  ``--profile external`` drops them: DET002
#: polices *this* repo's layering (wall-clock reads allowed only in
#: runtime/perf scopes, which don't exist out-of-tree), and TRIAL001
#: keys off our ``@trial`` decorator.
EXTERNAL_EXCLUDED = frozenset({"DET002", "TRIAL001"})

#: Scope external files are checked under: out-of-tree paths carry no
#: meaningful package structure, so treat everything as simulation-core
#: code — the strictest scope the portable rules guard.
EXTERNAL_SCOPE = "sim"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro statics",
        description="determinism & simulation-invariant static analysis "
                    "(docs/DETERMINISM.md)")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help=f"files/directories to check "
                             f"(default: {' '.join(DEFAULT_PATHS)}; "
                             f"--flow defaults to src)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output (stable finding "
                             "ids + severities)")
    parser.add_argument("--sarif", metavar="FILE", default=None,
                        help="also write a SARIF 2.1.0 log to FILE "
                             "(GitHub code-scanning format)")
    parser.add_argument("--rules", metavar="A,B", default=None,
                        help="comma-separated subset of rule ids to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the rules and exit")
    parser.add_argument("--flow", action="store_true",
                        help="whole-program mode: link the given paths "
                             "into one program and run the flow "
                             "families (FLOW001/MSG001/MSG002/DET005)")
    parser.add_argument("--graph-dump", action="store_true",
                        help="with --flow: print the linked symbol "
                             "table / call graph / message-flow graph "
                             "instead of findings")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallelize the per-file parse phase "
                             "across N processes (report is identical "
                             "to the serial run)")
    parser.add_argument("--forbid-pragmas", action="store_true",
                        help="fail (exit 1) if any finding was "
                             "suppressed by a pragma — the CI "
                             "statics-clean-no-pragmas gate")
    parser.add_argument("--no-cache", action="store_true",
                        help="with --flow: disable the per-file "
                             "summary cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="with --flow: summary cache location "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--profile", choices=("default", "external"),
                        default="default",
                        help="'external' audits out-of-tree simulation "
                             "models: repo-convention rules "
                             f"({', '.join(sorted(EXTERNAL_EXCLUDED))}) "
                             "are dropped, every file is checked under "
                             f"the '{EXTERNAL_SCOPE}' scope, and "
                             "explicit paths are required")
    return parser


def select_rules(spec: Optional[str]) -> list[Rule]:
    if spec is None:
        return list(ALL_RULES)
    wanted = _parse_rule_spec(spec)
    by_id = {rule.id: rule for rule in ALL_RULES}
    unknown = sorted(wanted - set(by_id))
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(unknown)}; valid ids: "
            f"{', '.join(by_id)}")
    return [by_id[rule_id] for rule_id in by_id if rule_id in wanted]


def _parse_rule_spec(spec: str) -> set[str]:
    return {part.strip().upper() for part in spec.split(",")
            if part.strip()}


def render_human(report: Report) -> str:
    parts = [finding.render() for finding in report.findings]
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    parts.append(f"statics: {status} across {report.files_checked} "
                 f"file(s), {report.suppressed} suppressed by pragmas")
    return "\n".join(parts)


def _emit(report: Report, as_json: bool,
          sarif_path: Optional[str]) -> None:
    from repro.statics.sarif import enriched_dict, to_sarif
    if sarif_path is not None:
        with open(sarif_path, "w", encoding="utf-8") as handle:
            json.dump(to_sarif(report), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if as_json:
        print(json.dumps(enriched_dict(report), indent=2, sort_keys=True))
    else:
        print(render_human(report))


def _exit_code(report: Report, forbid_pragmas: bool) -> int:
    if not report.ok:
        return 1
    if forbid_pragmas and report.suppressed:
        print(f"repro statics: clean only via {report.suppressed} "
              f"pragma suppression(s), --forbid-pragmas given",
              file=sys.stderr)
        return 1
    return 0


def _main_flow(args: argparse.Namespace) -> int:
    from repro.statics.flow import (FLOW_DEFAULT_PATHS, FLOW_RULE_IDS,
                                    run_flow)
    if args.profile == "external":
        print("repro statics: --flow and --profile external are "
              "mutually exclusive", file=sys.stderr)
        return 2
    rule_ids: Optional[set[str]] = None
    if args.rules is not None:
        wanted = _parse_rule_spec(args.rules)
        unknown = sorted(wanted - set(FLOW_RULE_IDS))
        if unknown:
            print(f"repro statics: not flow rule id(s): "
                  f"{', '.join(unknown)}; valid: "
                  f"{', '.join(FLOW_RULE_IDS)}", file=sys.stderr)
            return 2
        rule_ids = wanted
    paths = tuple(args.paths) if args.paths else FLOW_DEFAULT_PATHS
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"repro statics: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else args.cache_dir
    known = set(ALL_RULE_IDS) | set(FLOW_RULE_IDS)
    report, program = run_flow(paths, cache_dir=cache_dir,
                               rule_ids=rule_ids, known_rules=known)
    if args.graph_dump:
        print(program.dump())
        return 0
    _emit(report, args.as_json, args.sarif)
    return _exit_code(report, args.forbid_pragmas)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        from repro.statics.flow import FLOW_RULES
        for rule in ALL_RULES:
            scope = ("everywhere" if rule.scopes is None
                     else "/".join(sorted(rule.scopes)))
            if rule.excluded_scopes:
                scope += f" except {'/'.join(sorted(rule.excluded_scopes))}"
            print(f"  {rule.id:<9} {rule.title}  [{scope}]")
        for info in FLOW_RULES:
            print(f"  {info.id:<9} {info.title}  [--flow, whole-program]")
        return 0
    if args.graph_dump and not args.flow:
        print("repro statics: --graph-dump requires --flow",
              file=sys.stderr)
        return 2
    if args.flow:
        return _main_flow(args)
    rules = select_rules(args.rules)
    scope: Optional[str] = None
    report_unused = True
    if args.profile == "external":
        if args.rules is not None:
            print("repro statics: --profile external and --rules are "
                  "mutually exclusive", file=sys.stderr)
            return 2
        if not args.paths:
            # The default src/tests paths are this repo; an external
            # audit without a target would silently re-check ourselves.
            print("repro statics: --profile external requires explicit "
                  "paths", file=sys.stderr)
            return 2
        rules = [rule for rule in rules
                 if rule.id not in EXTERNAL_EXCLUDED]
        scope = EXTERNAL_SCOPE
        # External code has no reason to know our pragma dialect, so an
        # unused allow[] there is noise, not a stale suppression.
        report_unused = False
    paths = args.paths or list(DEFAULT_PATHS)
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        # A typo'd path must not let the CI gate pass vacuously.
        print(f"repro statics: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    # The unused-pragma audit is per *active* rule id: under a --rules
    # subset, pragmas for rules that didn't run are neither used nor
    # unused, so auditing stays on instead of being disabled wholesale.
    # Flow-family ids are *known* (pragmas may name them) but never
    # active here — the --flow pass audits those.
    from repro.statics.flow import FLOW_RULE_IDS
    report = run_paths(paths, rules, scope=scope,
                       report_unused_pragmas=report_unused,
                       known_rules=set(ALL_RULE_IDS) | set(FLOW_RULE_IDS),
                       active_rules={rule.id for rule in rules},
                       jobs=max(1, args.jobs))
    _emit(report, args.as_json, args.sarif)
    return _exit_code(report, args.forbid_pragmas)


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
